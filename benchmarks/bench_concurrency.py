"""Many-session serving benchmark: the acceptance gates of the serving core.

Drives N ∈ {1, 16, 64, 256} simulated users over **one** shared graph
through a :class:`~repro.serving.manager.SessionManager` on one
:class:`~repro.serving.workspace.GraphWorkspace`, and asserts the three
acceptance criteria of the serving PR:

* **Throughput** — with 64 concurrent sessions over one workspace, the
  per-session throughput is at least ``0.7×`` the single-session
  baseline (in practice it is *higher*: the N sessions share one
  language index, one neighbourhood index and one answer cache, so the
  cold-build cost is paid once instead of N times).  Goals are cycled
  from a pool so cross-session dedup is not what is being measured
  (dedup is off for the throughput runs).
* **Memory** — the marginal tracemalloc footprint per extra session
  (N=64 vs N=16, fresh workspace each) stays bounded: sessions keep only
  their example set, hypothesis and records; everything heavy lives in
  the shared workspace.
* **Fidelity** — per-session traces under the manager are bit-identical
  to sequential :meth:`InteractiveSession.run` baselines, with dedup on
  and off.

Timings land in ``BENCH_concurrency.json`` (pytest-benchmark) and the
scaling table in ``benchmarks/results/concurrency_scaling.json``.
"""

import json
import tracemalloc

from repro.graph.generators import random_graph
from repro.interactive.oracle import SimulatedUser
from repro.interactive.session import InteractiveSession
from repro.serving import GraphWorkspace, SessionManager

from conftest import write_artifact

import time

NODES = 200
EDGES = 600
ALPHABET = ("a", "b", "c")
SEED = 11
MAX_PATH_LENGTH = 3
MAX_INTERACTIONS = 8
USER_COUNTS = (1, 16, 64, 256)

#: acceptance floor: per-session throughput at N=64 vs the N=1 baseline
THROUGHPUT_FLOOR = 0.7
#: acceptance ceiling on marginal memory per extra session (bytes)
MEMORY_PER_SESSION_CEILING = 512 * 1024

GOALS = (
    "a . b",
    "b . c",
    "a* . b",
    "(a + b) . c",
    "c . a",
    "b* . a",
    "a . c",
    "(b + c) . a",
)


def make_graph():
    return random_graph(NODES, EDGES, ALPHABET, seed=SEED, name="serving-bench")


def admit_users(manager, graph, count, *, goal_offset=0):
    for index in range(count):
        goal = GOALS[(goal_offset + index) % len(GOALS)]
        manager.admit(
            graph,
            SimulatedUser(graph, goal, workspace=manager.workspace),
            max_interactions=MAX_INTERACTIONS,
            max_path_length=MAX_PATH_LENGTH,
        )


def run_fleet(count, *, dedup=False, goal_offset=0):
    """Admit and drive ``count`` users on a fresh workspace; return seconds."""
    graph = make_graph()
    manager = SessionManager(GraphWorkspace(), dedup=dedup)
    admit_users(manager, graph, count, goal_offset=goal_offset)
    started = time.perf_counter()
    results = manager.run_all()
    elapsed = time.perf_counter() - started
    assert len(results) == count
    return elapsed, manager


def single_session_baseline_seconds():
    """Mean single-session time over the same goal mix the fleets run.

    One fresh workspace per session, exactly like a server admitting one
    user at a time with nothing shared — the N=1 throughput reference.
    """
    total = 0.0
    for offset in range(len(GOALS)):
        elapsed, _manager = run_fleet(1, goal_offset=offset)
        total += elapsed
    return total / len(GOALS)


def trace(result):
    return (
        result.interaction_trace(),
        [record.validated_word for record in result.records],
        str(result.learned_query),
        result.halted_by,
    )


# ----------------------------------------------------------------------
# gate 1: throughput scaling
# ----------------------------------------------------------------------
def test_throughput_scaling(results_dir):
    baseline = single_session_baseline_seconds()
    rows = []
    per_session = {}
    for count in USER_COUNTS:
        elapsed, manager = run_fleet(count)
        per_session[count] = elapsed / count
        rows.append(
            {
                "sessions": count,
                "total_seconds": round(elapsed, 4),
                "seconds_per_session": round(elapsed / count, 5),
                "throughput_sessions_per_s": round(count / elapsed, 2),
                "language_index_builds": manager.workspace.stats()[
                    "language_index_builds"
                ],
            }
        )
    ratio = baseline / per_session[64]
    write_artifact(
        results_dir,
        "concurrency_scaling.json",
        json.dumps(
            {
                "single_session_baseline_seconds": round(baseline, 5),
                "rows": rows,
                "n64_vs_n1_throughput_ratio": round(ratio, 3),
            },
            indent=2,
        ),
    )
    assert ratio >= THROUGHPUT_FLOOR, (
        f"per-session throughput at N=64 is {ratio:.2f}x the N=1 baseline "
        f"(floor {THROUGHPUT_FLOOR}x)"
    )


# ----------------------------------------------------------------------
# gate 2: bounded marginal memory per session
# ----------------------------------------------------------------------
def measure_fleet_memory(count):
    graph = make_graph()
    tracemalloc.start()
    manager = SessionManager(GraphWorkspace(), dedup=False)
    admit_users(manager, graph, count)
    manager.run_all()
    current, _peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return current


def test_marginal_memory_per_session_bounded(results_dir):
    small = measure_fleet_memory(16)
    large = measure_fleet_memory(64)
    per_session = max(0, large - small) / (64 - 16)
    write_artifact(
        results_dir,
        "concurrency_memory.json",
        json.dumps(
            {
                "retained_bytes_n16": small,
                "retained_bytes_n64": large,
                "marginal_bytes_per_session": round(per_session),
                "ceiling_bytes": MEMORY_PER_SESSION_CEILING,
            },
            indent=2,
        ),
    )
    assert per_session <= MEMORY_PER_SESSION_CEILING, (
        f"each extra session retains {per_session / 1024:.0f} KiB "
        f"(ceiling {MEMORY_PER_SESSION_CEILING / 1024:.0f} KiB)"
    )


# ----------------------------------------------------------------------
# gate 3: bit-identical traces vs sequential baselines (dedup on and off)
# ----------------------------------------------------------------------
def sequential_traces(graph, count):
    traces = []
    for index in range(count):
        # repro-lint: disable=REP201 -- the point of this baseline is one isolated workspace per session
        workspace = GraphWorkspace()
        goal = GOALS[index % len(GOALS)]
        session = InteractiveSession(
            graph,
            SimulatedUser(graph, goal, workspace=workspace),
            max_interactions=MAX_INTERACTIONS,
            max_path_length=MAX_PATH_LENGTH,
            workspace=workspace,
        )
        traces.append(trace(session.run()))
    return traces


def test_traces_bit_identical_to_sequential():
    count = 16
    graph = make_graph()
    baseline = sequential_traces(graph, count)
    for dedup in (False, True):
        # repro-lint: disable=REP201 -- each dedup configuration needs a cold workspace
        manager = SessionManager(GraphWorkspace(), dedup=dedup)
        admit_users(manager, graph, count)
        results = manager.run_all()
        managed = [results[sid] for sid in sorted(results, key=lambda s: int(s[1:]))]
        assert [trace(result) for result in managed] == baseline, (
            f"managed traces diverge from sequential baselines (dedup={dedup})"
        )


def test_dedup_collapses_identical_sessions():
    graph = make_graph()
    manager = SessionManager(GraphWorkspace(), dedup=True)
    # 16 users, only len(GOALS)=8 distinct behaviours
    admit_users(manager, graph, 16)
    results = manager.run_all()
    assert sum(result.deduped for result in results.values()) == 16 - len(GOALS)
    assert manager.stats()["deduped"] == 16 - len(GOALS)


# ----------------------------------------------------------------------
# pytest-benchmark timings (recorded in BENCH_concurrency.json)
# ----------------------------------------------------------------------
def test_fleet_16_shared_workspace(benchmark):
    def run():
        return run_fleet(16)[0]

    benchmark.pedantic(run, rounds=3)


def test_fleet_16_deduped(benchmark):
    def run():
        return run_fleet(16, dedup=True)[0]

    benchmark.pedantic(run, rounds=3)
