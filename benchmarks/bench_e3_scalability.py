"""E3 — per-interaction latency as the graph grows.

Measures the time one interaction costs (strategy ranking + neighbourhood
extraction + propagation + learning) on random graphs of increasing size.
Expected shape: sub-second per interaction at laptop scale, growing
roughly linearly with the number of nodes for the bounded-path strategies.
"""

from repro.experiments.harness import run_e3_scalability
from repro.graph.generators import random_graph
from repro.interactive.oracle import SimulatedUser
from repro.interactive.session import InteractiveSession

from conftest import write_artifact


def test_e3_full_table(benchmark, results_dir):
    table = benchmark.pedantic(
        run_e3_scalability,
        kwargs={"node_counts": (100, 200, 400, 800), "interactions": 4},
        rounds=1,
        iterations=1,
    )
    write_artifact(results_dir, "e3.txt", table.render())
    rows = list(table)
    assert [row["nodes"] for row in rows] == [100, 200, 400, 800]
    # per-interaction latency stays interactive (well under a second here)
    assert all(row["mean_seconds"] < 2.0 for row in rows)


def _one_interaction(graph, goal):
    user = SimulatedUser(graph, goal)
    session = InteractiveSession(graph, user, max_path_length=3, max_interactions=1)
    return session.step()


def test_e3_single_interaction_small_graph(benchmark):
    graph = random_graph(100, 300, ("a", "b", "c", "d"), seed=23)
    record = benchmark(_one_interaction, graph, "(a + b)* . c")
    assert record.index == 1


def test_e3_single_interaction_medium_graph(benchmark):
    graph = random_graph(400, 1200, ("a", "b", "c", "d"), seed=23)
    record = benchmark.pedantic(
        _one_interaction, args=(graph, "(a + b)* . c"), rounds=3, iterations=1
    )
    assert record.index == 1
