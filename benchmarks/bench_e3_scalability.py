"""E3 — per-interaction latency as the graph grows.

Measures the time one interaction costs (strategy ranking + neighbourhood
extraction + propagation + learning) on random graphs of increasing size.
Expected shape: sub-second per interaction at laptop scale, growing
roughly linearly with the number of nodes for the bounded-path strategies.

Since the bulk-construction + zoom-index PR the axis extends to 6400
nodes — 8x beyond the seed table, where per-edge generator loops and
per-zoom BFS re-runs used to dominate the wall clock.
"""

from repro.experiments.harness import run_e3_scalability
from repro.graph.generators import random_graph
from repro.interactive.oracle import SimulatedUser
from repro.interactive.session import InteractiveSession

from conftest import write_artifact

#: the scaling axis: the seed table stopped at 800
E3_NODE_COUNTS = (100, 200, 400, 800, 1600, 3200, 6400)


def test_e3_full_table(benchmark, results_dir):
    table = benchmark.pedantic(
        run_e3_scalability,
        kwargs={"node_counts": E3_NODE_COUNTS, "interactions": 4},
        rounds=1,
        iterations=1,
    )
    write_artifact(results_dir, "e3.txt", table.render())
    rows = list(table)
    assert [row["nodes"] for row in rows] == list(E3_NODE_COUNTS)
    # every graph meets the generator's exact edge-count contract
    assert all(row["edges"] == 3 * row["nodes"] for row in rows)
    # per-interaction latency stays interactive (well under a second here)
    assert all(row["mean_seconds"] < 2.0 for row in rows)


def _one_interaction(graph, goal):
    user = SimulatedUser(graph, goal)
    session = InteractiveSession(graph, user, max_path_length=3, max_interactions=1)
    return session.step()


def test_e3_single_interaction_small_graph(benchmark):
    graph = random_graph(100, 300, ("a", "b", "c", "d"), seed=23)
    record = benchmark(_one_interaction, graph, "(a + b)* . c")
    assert record.index == 1


def test_e3_single_interaction_medium_graph(benchmark):
    graph = random_graph(400, 1200, ("a", "b", "c", "d"), seed=23)
    record = benchmark.pedantic(
        _one_interaction, args=(graph, "(a + b)* . c"), rounds=3, iterations=1
    )
    assert record.index == 1


def test_e3_single_interaction_large_graph(benchmark):
    # a size the seed per-edge generator path made impractical to bench
    graph = random_graph(6400, 19200, ("a", "b", "c", "d"), seed=23)
    record = benchmark.pedantic(
        _one_interaction, args=(graph, "(a + b)* . c"), rounds=2, iterations=1
    )
    assert record.index == 1
