"""Benchmark + acceptance gates for the graph-construction / zoom subsystem.

Compares the bulk-construction generators and the incremental
:class:`~repro.graph.neighborhood.NeighborhoodIndex` against the **seed
implementations reproduced verbatim below**:

* ``random_graph`` — per-edge rejection sampling through ``add_edge``
  (one version bump per edge), with the near-saturation fallback that
  walks the full O(n²·|Σ|) triple space;
* ``scale_free_graph`` — ``random.choices`` preferential attachment that
  rebuilds its cumulative-weight table per draw and silently drops
  duplicate draws (under-delivering edges);
* ``biological_network`` — the ``source == target: continue`` /
  duplicate-skip protein-interaction loop with the same under-delivery;
* neighbourhood zooming — a fresh full BFS + eager subgraph per radius,
  with the delta computed by diffing full fragment snapshots.

Acceptance targets of the construction/zoom PR, asserted here:

* the generator suite at E3 scale (sparse + saturated random,
  scale-free, biological) builds **>= 5x** faster than the seed path;
* a zoom ladder is **>= 5x** faster than scratch re-extraction, with
  **identical** deltas at every step;
* every generator meets its **exact edge-count contract** (and the seed
  reproductions demonstrably under-deliver, pinning the bug family);
* seeded graphs are **stable across processes** (PYTHONHASHSEED-proof);
* a **saturated 1k-node** random graph builds without materialising the
  triple space (construction allocations stay output-bound).
"""

import hashlib
import os
import random
import subprocess
import sys
import time
import tracemalloc

from repro.graph.datasets import biological_network, transit_city
from repro.graph.generators import (
    grid_graph,
    random_graph,
    scale_free_edge_count,
    scale_free_graph,
)
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.neighborhood import NeighborhoodIndex

from conftest import write_artifact

#: acceptance floors
CONSTRUCTION_SPEEDUP_FLOOR = 5.0
ZOOM_SPEEDUP_FLOOR = 5.0

TRIALS = 2


# ----------------------------------------------------------------------
# The seed (pre-bulk) implementations, reproduced verbatim
# ----------------------------------------------------------------------
def _seed_random_graph(node_count, edge_count, alphabet=("a", "b", "c", "d"), seed=None):
    rng = random.Random(seed)
    graph = LabeledGraph("random")
    nodes = [f"n{index}" for index in range(node_count)]
    graph.add_nodes(nodes)
    possible = node_count * node_count * len(alphabet)
    target_edges = min(edge_count, possible)
    attempts = 0
    max_attempts = max(20 * target_edges, 1000)
    while graph.edge_count < target_edges and attempts < max_attempts:
        source = rng.choice(nodes)
        target = rng.choice(nodes)
        label = rng.choice(list(alphabet))
        graph.add_edge(source, label, target)
        attempts += 1
    if graph.edge_count < target_edges:
        taken = set(graph.edges())
        remaining = [
            (source, label, target)
            for source in nodes
            for label in alphabet
            for target in nodes
            if (source, label, target) not in taken
        ]
        for source, label, target in rng.sample(remaining, target_edges - graph.edge_count):
            graph.add_edge(source, label, target)
    return graph


def _seed_scale_free_graph(node_count, alphabet=("a", "b", "c", "d"), *, edges_per_node=2, seed=None):
    rng = random.Random(seed)
    graph = LabeledGraph("scale-free")
    nodes = [f"n{index}" for index in range(node_count)]
    graph.add_nodes(nodes)
    weights = [1] * node_count
    for index in range(1, node_count):
        source = nodes[index]
        candidates = list(range(index))
        candidate_weights = [weights[target] for target in candidates]
        for _ in range(min(edges_per_node, index)):
            target_index = rng.choices(candidates, weights=candidate_weights, k=1)[0]
            label = rng.choice(list(alphabet))
            graph.add_edge(source, label, nodes[target_index])
            weights[target_index] += 1
    return graph


def _seed_biological_interactions(protein_count, interaction_density, seed):
    """The seed protein-protein loop (the under-delivering part only)."""
    rng = random.Random(seed)
    graph = LabeledGraph("bio")
    proteins = [f"P{index}" for index in range(protein_count)]
    graph.add_nodes(proteins)
    weights = [1] * protein_count
    interaction_edges = int(interaction_density * protein_count)
    for _ in range(interaction_edges):
        source_index = rng.randrange(protein_count)
        target_index = rng.choices(range(protein_count), weights=weights, k=1)[0]
        if source_index == target_index:
            continue
        label = rng.choice(["interacts", "binds"])
        graph.add_edge(proteins[source_index], label, proteins[target_index])
        weights[target_index] += 1
    return graph


def _seed_extract_neighborhood(graph, center, radius, *, directed=False):
    distances = {center: 0}
    frontier = {center}
    for step in range(1, radius + 1):
        next_frontier = set()
        for node in sorted(frontier, key=str):
            neighbors = set(graph.successors(node))
            if not directed:
                neighbors |= graph.predecessors(node)
            for other in sorted(neighbors, key=str):
                if other not in distances:
                    distances[other] = step
                    next_frontier.add(other)
        frontier = next_frontier
        if not frontier:
            break
    fragment = graph.subgraph(distances)
    return frozenset(fragment.nodes()), frozenset(fragment.edges())


def _seed_zoom_ladder(graph, center, radii):
    """Seed zooming: one full re-extraction + full-snapshot diff per radius."""
    deltas = []
    prev_nodes, prev_edges = _seed_extract_neighborhood(graph, center, radii[0])
    for radius in radii[1:]:
        nodes, edges = _seed_extract_neighborhood(graph, center, radius)
        deltas.append((nodes - prev_nodes, edges - prev_edges))
        prev_nodes, prev_edges = nodes, edges
    return deltas


# ----------------------------------------------------------------------
# exact edge-count contracts (and the seed's demonstrated shortfall)
# ----------------------------------------------------------------------
def test_random_graph_contracts():
    sparse = random_graph(2000, 6000, seed=1)
    assert sparse.edge_count == 6000
    saturated = random_graph(200, 200 * 200 * 4, seed=2)
    assert saturated.edge_count == 200 * 200 * 4


def test_scale_free_contract_and_seed_shortfall():
    expected = scale_free_edge_count(60, 4)
    assert expected == sum(min(4, index) for index in range(60))
    new = scale_free_graph(60, ("a",), edges_per_node=4, seed=3)
    assert new.edge_count == scale_free_edge_count(60, 4)
    old = _seed_scale_free_graph(60, ("a",), edges_per_node=4, seed=3)
    assert old.edge_count < expected, "seed path was expected to under-deliver here"


def test_biological_contract_and_seed_shortfall():
    expected = int(3.0 * 50)
    new = biological_network(50, 10, interaction_density=3.0, seed=1)
    counts = new.label_counts()
    assert counts.get("interacts", 0) + counts.get("binds", 0) == expected
    old = _seed_biological_interactions(50, 3.0, seed=1)
    assert old.edge_count < expected, "seed path was expected to under-deliver here"


def test_saturated_1k_node_graph_builds_output_bound():
    """A fully saturated 1000-node graph (10^6 edges on one label).

    The construction must stay output-bound: the tracemalloc peak of the
    whole build may exceed the resident size of the final graph only by
    a constant factor (the seed fallback walked and allocated the full
    triple space on top).
    """
    node_count = 1000
    possible = node_count * node_count  # one label
    tracemalloc.start()
    graph = random_graph(node_count, possible, ("a",), seed=4)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert graph.edge_count == possible
    assert graph.out_degree("n0") == node_count
    # the adjacency alone holds 2 * 10^6 set entries; anything above
    # ~4 bytes-per-entry * 32 slack means an O(population) side allocation
    per_edge_budget = 260
    assert peak < possible * per_edge_budget, f"peak {peak} bytes for {possible} edges"


def test_seed_stability_across_processes(results_dir):
    """Same seed => byte-identical graphs in a fresh interpreter."""

    def fingerprint(graph):
        payload = repr(sorted((str(s), l, str(t)) for s, l, t in graph.edges()))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    local = {
        "random": fingerprint(random_graph(300, 900, seed=7)),
        "scale-free": fingerprint(scale_free_graph(300, edges_per_node=3, seed=7)),
        "biological": fingerprint(biological_network(120, 60, seed=7)),
        "transit": fingerprint(transit_city(60, tram_lines=4, bus_lines=6, seed=7)),
    }
    code = (
        "import hashlib;"
        "from repro.graph.generators import random_graph, scale_free_graph;"
        "from repro.graph.datasets import biological_network, transit_city;"
        "fp = lambda g: hashlib.sha256(repr(sorted((str(s), l, str(t)) for s, l, t in g.edges()))"
        ".encode('utf-8')).hexdigest();"
        "print(fp(random_graph(300, 900, seed=7)));"
        "print(fp(scale_free_graph(300, edges_per_node=3, seed=7)));"
        "print(fp(biological_network(120, 60, seed=7)));"
        "print(fp(transit_city(60, tram_lines=4, bus_lines=6, seed=7)))"
    )
    root = os.path.join(os.path.dirname(__file__), "..")
    env = dict(os.environ, PYTHONHASHSEED="999", PYTHONPATH=os.path.join(root, "src"))
    result = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True, env=env, cwd=root
    )
    assert result.returncode == 0, result.stderr
    remote = result.stdout.split()
    assert remote == [local["random"], local["scale-free"], local["biological"], local["transit"]]
    write_artifact(results_dir, "generator_fingerprints.txt", repr(local))


# ----------------------------------------------------------------------
# the 5x construction gate
# ----------------------------------------------------------------------
#: the E3-scale construction suite: one sparse E3 ladder graph, the
#: saturation regime the seed path ground to a halt on, and the two
#: preferential-attachment generators
_SUITE = [
    (
        "random-e3-sparse",
        lambda: _seed_random_graph(4000, 12000, seed=11),
        lambda: random_graph(4000, 12000, seed=11),
    ),
    (
        "random-saturated",
        lambda: _seed_random_graph(200, 200 * 200 * 4, seed=12),
        lambda: random_graph(200, 200 * 200 * 4, seed=12),
    ),
    (
        "scale-free",
        lambda: _seed_scale_free_graph(2500, edges_per_node=3, seed=13),
        lambda: scale_free_graph(2500, edges_per_node=3, seed=13),
    ),
    (
        "biological",
        lambda: _seed_biological_interactions(2000, 2.5, seed=14),
        lambda: biological_network(2000, 100, interaction_density=2.5, seed=14),
    ),
]


def _best_of(builder, trials=TRIALS):
    best = float("inf")
    for _ in range(trials):
        started = time.perf_counter()
        builder()
        best = min(best, time.perf_counter() - started)
    return best


def test_construction_speedup(results_dir):
    lines = []
    seed_total = new_total = 0.0
    for name, seed_builder, new_builder in _SUITE:
        seed_seconds = _best_of(seed_builder)
        new_seconds = _best_of(new_builder, trials=TRIALS + 1)
        seed_total += seed_seconds
        new_total += new_seconds
        lines.append(
            f"{name}: seed={seed_seconds * 1000:.1f}ms new={new_seconds * 1000:.1f}ms "
            f"speedup={seed_seconds / new_seconds:.1f}x"
        )
    speedup = seed_total / new_total
    lines.append(
        f"TOTAL: seed={seed_total * 1000:.1f}ms new={new_total * 1000:.1f}ms "
        f"speedup={speedup:.1f}x (floor {CONSTRUCTION_SPEEDUP_FLOOR}x)"
    )
    write_artifact(results_dir, "generators_speedup.txt", "\n".join(lines))
    assert speedup >= CONSTRUCTION_SPEEDUP_FLOOR, "\n".join(lines)


# ----------------------------------------------------------------------
# the 5x zoom gate
# ----------------------------------------------------------------------
_ZOOM_RADII = tuple(range(2, 25))


def _zoom_graph():
    # a lattice: fragments grow as r^2 while each new ring is O(r), the
    # regime where re-running BFS from radius 0 per zoom hurts most; a
    # fresh copy per run so no cached index or adjacency snapshot leaks
    # between trials
    return grid_graph(80, 80, name="zoom-bench")


def _index_zoom_ladder(graph, center, radii):
    index = NeighborhoodIndex(graph)
    neighborhood = index.neighborhood(center, radii[0])
    deltas = []
    for _ in radii[1:]:
        delta = index.zoom(neighborhood)
        deltas.append((delta.new_nodes, delta.new_edges))
        neighborhood = delta.current
    return deltas


def test_zoom_deltas_identical_to_scratch():
    graph = _zoom_graph()
    center = "g40_40"
    assert _index_zoom_ladder(graph, center, _ZOOM_RADII) == _seed_zoom_ladder(
        graph, center, _ZOOM_RADII
    )


def test_zoom_speedup(results_dir):
    center = "g40_40"
    seed_seconds = new_seconds = float("inf")
    for _ in range(TRIALS):
        graph = _zoom_graph()
        started = time.perf_counter()
        _seed_zoom_ladder(graph, center, _ZOOM_RADII)
        seed_seconds = min(seed_seconds, time.perf_counter() - started)
    for _ in range(TRIALS + 1):
        graph = _zoom_graph()
        started = time.perf_counter()
        _index_zoom_ladder(graph, center, _ZOOM_RADII)
        new_seconds = min(new_seconds, time.perf_counter() - started)
    speedup = seed_seconds / new_seconds
    write_artifact(
        results_dir,
        "zoom_speedup.txt",
        f"radii={_ZOOM_RADII[0]}..{_ZOOM_RADII[-1]} seed={seed_seconds * 1000:.1f}ms "
        f"new={new_seconds * 1000:.1f}ms speedup={speedup:.1f}x (floor {ZOOM_SPEEDUP_FLOOR}x)",
    )
    assert speedup >= ZOOM_SPEEDUP_FLOOR, f"zoom ladder only {speedup:.1f}x faster than seed"


# ----------------------------------------------------------------------
# pytest-benchmark timings (recorded in BENCH_generators.json)
# ----------------------------------------------------------------------
def test_bench_random_graph_e3_scale(benchmark):
    graph = benchmark(lambda: random_graph(20_000, 60_000, seed=21))
    assert graph.edge_count == 60_000


def test_bench_scale_free_graph(benchmark):
    graph = benchmark(lambda: scale_free_graph(5000, edges_per_node=3, seed=22))
    assert graph.edge_count == scale_free_edge_count(5000, 3)


def test_bench_biological_network(benchmark):
    graph = benchmark(lambda: biological_network(3000, 150, interaction_density=2.0, seed=23))
    counts = graph.label_counts()
    assert counts.get("interacts", 0) + counts.get("binds", 0) == 6000


def test_bench_zoom_ladder(benchmark):
    graph = _zoom_graph()
    center = "g40_40"

    def ladder():
        return _index_zoom_ladder(graph, center, _ZOOM_RADII)

    deltas = benchmark(ladder)
    assert len(deltas) == len(_ZOOM_RADII) - 1
