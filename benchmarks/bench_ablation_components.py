"""Ablation benches for the design choices called out in DESIGN.md.

* generalisation on/off (RPNI merges vs raw PTA disjunction),
* pruning/propagation on/off (what the strategy pool looks like without it),
* label noise (how a noisy user degrades the learned query),
* path-length bound sensitivity for the informativeness computation.

These are not figures of the paper; they document which parts of the
system the headline results depend on.
"""

from repro.graph.datasets import motivating_example, transit_city
from repro.interactive.oracle import NoisyUser, SimulatedUser
from repro.interactive.session import InteractiveSession
from repro.learning.examples import ExampleSet
from repro.learning.informativeness import informative_nodes
from repro.learning.learner import PathQueryLearner, learn_query
from repro.query.evaluation import selection_metrics
from repro.serving.workspace import default_workspace

from conftest import write_artifact

GOAL = "(tram + bus)* . cinema"


def test_ablation_generalization_on_off(benchmark, results_dir):
    """RPNI generalisation vs raw PTA: answer quality on the instance."""
    graph = motivating_example()
    positive = {"N2": ("bus", "tram", "cinema"), "N6": ("cinema",)}
    negative = ["N5"]

    def run_both():
        generalized = learn_query(graph, positive=positive, negative=negative, generalize=True)
        raw = learn_query(graph, positive=positive, negative=negative, generalize=False)
        return generalized, raw

    generalized, raw = benchmark(run_both)
    generalized_metrics = selection_metrics(graph, generalized, GOAL)
    raw_metrics = selection_metrics(graph, raw, GOAL)
    write_artifact(
        results_dir,
        "ablation_generalization.txt",
        f"generalized: {generalized}  f1={generalized_metrics['f1']:.3f}\n"
        f"raw PTA    : {raw}  f1={raw_metrics['f1']:.3f}",
    )
    # generalisation can only help recall on this example
    assert generalized_metrics["recall"] >= raw_metrics["recall"]


def test_ablation_pruning_pool_size(benchmark, results_dir):
    """How many candidates the strategy has to consider with vs without pruning."""
    graph = transit_city(60, tram_lines=4, bus_lines=6, line_length=10, seed=8)
    examples = ExampleSet()
    answer = default_workspace().engine.evaluate(graph, GOAL)
    negatives = sorted(set(graph.nodes()) - answer, key=str)[:5]
    for node in negatives:
        examples.add_negative(node)

    ranked = benchmark(informative_nodes, graph, examples, max_length=4)
    unlabeled = [node for node in graph.nodes() if node not in examples.labeled_nodes]
    write_artifact(
        results_dir,
        "ablation_pruning.txt",
        f"unlabeled nodes      : {len(unlabeled)}\n"
        f"informative candidates: {len(ranked)}\n"
        f"pruned automatically  : {len(unlabeled) - len(ranked)}",
    )
    assert len(ranked) <= len(unlabeled)


def test_ablation_label_noise(benchmark, results_dir):
    """Noisy Yes/No answers: the session must survive and report inconsistency."""
    graph = motivating_example()

    def run_noisy():
        user = NoisyUser(graph, GOAL, noise=0.3, seed=5)
        session = InteractiveSession(graph, user, max_interactions=8)
        return session.run()

    result = benchmark(run_noisy)
    clean = InteractiveSession(motivating_example(), SimulatedUser(motivating_example(), GOAL)).run()
    clean_f1 = selection_metrics(motivating_example(), clean.learned_query, GOAL)["f1"]
    noisy_f1 = (
        selection_metrics(graph, result.learned_query, GOAL)["f1"]
        if result.learned_query is not None
        else 0.0
    )
    write_artifact(
        results_dir,
        "ablation_noise.txt",
        f"clean user f1 : {clean_f1:.3f}\nnoisy user f1 : {noisy_f1:.3f}\n"
        f"inconsistency flagged: {result.inconsistent}",
    )
    assert clean_f1 == 1.0


def test_ablation_path_length_bound(benchmark, results_dir):
    """Sensitivity of the learner to the candidate path-length bound."""
    graph = motivating_example()
    examples = ExampleSet()
    examples.add_positive("N2")
    examples.add_positive("N6")
    examples.add_negative("N5")

    def learn_with_bounds():
        outcomes = {}
        for bound in (1, 2, 3, 4, 6):
            learner = PathQueryLearner(graph, max_path_length=bound)
            try:
                outcomes[bound] = learner.learn(examples).query
            except Exception:  # noqa: BLE001 - bound too small is a legal outcome here
                outcomes[bound] = None
        return outcomes

    outcomes = benchmark(learn_with_bounds)
    lines = [f"bound={bound}: {query}" for bound, query in outcomes.items()]
    write_artifact(results_dir, "ablation_path_bound.txt", "\n".join(lines))
    # with a generous bound the learner always succeeds
    assert outcomes[6] is not None
