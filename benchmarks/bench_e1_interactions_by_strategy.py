"""E1 — number of user interactions to reach the goal answer, per strategy.

Compares static labelling with the interactive loop under every strategy
(random, random-informative, breadth, degree, most-informative) over the
quick workload suite.  The expected shape (paper's central claim): the
interactive, informativeness-driven strategies need far fewer interactions
than static / random labelling.
"""


from repro.experiments.harness import run_e1_interactions_by_strategy
from repro.graph.datasets import motivating_example
from repro.interactive.scenarios import run_interactive_with_validation, run_static_labeling
from repro.workloads.generator import quick_suite

from conftest import write_artifact

GOAL = "(tram + bus)* . cinema"


def test_e1_full_table(benchmark, results_dir):
    """Regenerate the complete E1 table on the quick suite (one pass)."""
    cases = quick_suite(seed=17)

    tables = benchmark.pedantic(
        run_e1_interactions_by_strategy, args=(cases,), kwargs={"seed": 17}, rounds=1, iterations=1
    )
    detail, summary = tables["detail"], tables["summary"]
    write_artifact(results_dir, "e1_detail.txt", detail.render())
    write_artifact(results_dir, "e1_summary.txt", summary.render())

    by_strategy = {row["strategy"]: row for row in summary}
    # the informed interactive strategy must not need more interactions than
    # static labelling, and must reach the goal answer on every case
    assert by_strategy["most-informative"]["interactions"] <= by_strategy["static"]["interactions"]
    assert by_strategy["most-informative"]["reached"] == 1.0


def test_e1_single_interactive_session(benchmark):
    """Benchmark unit: one interactive session on the motivating example."""
    graph = motivating_example()
    report = benchmark(run_interactive_with_validation, graph, GOAL)
    assert report.metrics["f1"] == 1.0


def test_e1_single_static_session(benchmark):
    graph = motivating_example()
    report = benchmark(run_static_labeling, graph, GOAL, seed=17)
    assert report.interactions >= 1
