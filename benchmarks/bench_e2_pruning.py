"""E2 — pruning of uninformative nodes after each interaction.

Tracks the fraction of unlabelled nodes whose label is already implied
(pruned) as the interactive session progresses.  Expected shape: the
fraction grows as negatives accumulate, so the strategy's candidate pool
shrinks much faster than one node per question.
"""

from repro.experiments.harness import run_e2_pruning
from repro.graph.datasets import motivating_example
from repro.learning.examples import ExampleSet
from repro.learning.informativeness import pruning_fraction
from repro.workloads.generator import quick_suite

from conftest import write_artifact


def test_e2_full_table(benchmark, results_dir):
    cases = quick_suite(seed=19)
    tables = benchmark.pedantic(
        run_e2_pruning, args=(cases,), kwargs={"seed": 19}, rounds=1, iterations=1
    )
    write_artifact(results_dir, "e2_detail.txt", tables["detail"].render())
    write_artifact(results_dir, "e2_summary.txt", tables["summary"].render())
    for row in tables["detail"]:
        assert 0.0 <= row["saved_fraction"] <= 1.0


def test_e2_pruning_fraction_unit(benchmark):
    """Benchmark unit: one pruning-fraction computation on Figure 1."""
    graph = motivating_example()
    examples = ExampleSet()
    examples.add_positive("N2")
    examples.add_negative("N5")
    fraction = benchmark(pruning_fraction, graph, examples, max_length=4)
    assert 0.0 <= fraction <= 1.0
