"""Micro-benchmark for the indexed, cached RPQ evaluation engine.

Compares :meth:`QueryEngine.evaluate_many` against the seed
implementation (one independent product fixed point per query, straight
on the dict-of-sets adjacency — reproduced verbatim below) on the
repeated-evaluation workload of the interactive loop: the same candidate
set is evaluated once per interaction on an unchanged graph.

Acceptance target of the engine PR: >= 3x on 8 candidate queries over a
1k-node generated graph, with identical answer sets.
"""

import time
from collections import deque

from repro.graph.generators import random_graph
from repro.query.engine import QueryEngine
from repro.query.rpq import PathQuery

from conftest import write_artifact

#: candidate set mirroring what a session juggles: goal-like queries,
#: sub-queries, and near-duplicates of different shapes
CANDIDATE_EXPRESSIONS = (
    "(a + b)* . c",
    "a . b",
    "c* . d",
    "a . (b + c)* . a",
    "b . d*",
    "(a . a)* . b",
    "c . c . d",
    "(a + b + c) . d",
)

#: interactions simulated — the candidate set is re-evaluated once per
#: interaction, which is exactly what consistency checks + halt tests do
ROUNDS = 3


def _seed_evaluate(graph, dfa):
    """The pre-engine `repro.query.evaluation.evaluate`, kept as reference."""
    if dfa.is_empty():
        return frozenset()
    successful = set()
    queue = deque()
    for node in graph.nodes():
        for state in dfa.accepting_states:
            pair = (node, state)
            successful.add(pair)
            queue.append(pair)
    dfa_reverse = {}
    for source, symbol, target in dfa.transitions():
        dfa_reverse.setdefault(target, []).append((symbol, source))
    while queue:
        node, state = queue.popleft()
        for symbol, dfa_source in dfa_reverse.get(state, ()):
            for graph_source in graph.predecessors(node, symbol):
                pair = (graph_source, dfa_source)
                if pair not in successful:
                    successful.add(pair)
                    queue.append(pair)
    initial = dfa.initial_state
    return frozenset(node for node in graph.nodes() if (node, initial) in successful)


def _workload():
    graph = random_graph(1000, 4000, ("a", "b", "c", "d"), seed=7)
    queries = [PathQuery(expression) for expression in CANDIDATE_EXPRESSIONS]
    for query in queries:
        query.dfa  # pre-compile DFAs so both sides start from the same point
    return graph, queries


def _run_engine_rounds(graph, queries, rounds=ROUNDS):
    engine = QueryEngine()
    answers = None
    for _ in range(rounds):
        answers = engine.evaluate_many(graph, queries)
    return answers


def _run_seed_rounds(graph, queries, rounds=ROUNDS):
    answers = None
    for _ in range(rounds):
        answers = [_seed_evaluate(graph, query.dfa) for query in queries]
    return answers


def test_engine_matches_seed_answers():
    graph, queries = _workload()
    assert _run_engine_rounds(graph, queries, rounds=1) == _run_seed_rounds(
        graph, queries, rounds=1
    )


def test_engine_speedup_on_repeated_evaluation(results_dir):
    graph, queries = _workload()

    # best-of-N on both sides: a single scheduler stall on a shared CI
    # runner inflates one trial, not the minimum, so the gate measures
    # the code and not the neighbourhood
    trials = 5
    seed_seconds = engine_seconds = float("inf")
    seed_answers = engine_answers = None
    for _ in range(trials):
        started = time.perf_counter()
        seed_answers = _run_seed_rounds(graph, queries)
        seed_seconds = min(seed_seconds, time.perf_counter() - started)
    for _ in range(trials):
        started = time.perf_counter()
        engine_answers = _run_engine_rounds(graph, queries)
        engine_seconds = min(engine_seconds, time.perf_counter() - started)

    assert engine_answers == seed_answers
    speedup = seed_seconds / engine_seconds
    write_artifact(
        results_dir,
        "engine_speedup.txt",
        f"rounds={ROUNDS} queries={len(queries)} nodes={graph.node_count} "
        f"seed={seed_seconds * 1000:.1f}ms engine={engine_seconds * 1000:.1f}ms "
        f"speedup={speedup:.1f}x",
    )
    assert speedup >= 3.0, f"engine only {speedup:.1f}x faster than seed"


def test_engine_batch_cold(benchmark):
    graph, _ = _workload()

    def fresh_state():
        # fresh graph copy (no cached label index), fresh PathQuery
        # objects (no cached plans): every round pays the full cold cost
        return (graph.copy(), [PathQuery(e) for e in CANDIDATE_EXPRESSIONS]), {}

    def cold_batch(cold_graph, cold_queries):
        return QueryEngine().evaluate_many(cold_graph, cold_queries)

    answers = benchmark.pedantic(cold_batch, setup=fresh_state, rounds=20)
    assert len(answers) == len(CANDIDATE_EXPRESSIONS)


def test_engine_batch_warm(benchmark):
    graph, queries = _workload()
    engine = QueryEngine()
    engine.evaluate_many(graph, queries)

    answers = benchmark(engine.evaluate_many, graph, queries)
    assert len(answers) == len(queries)
