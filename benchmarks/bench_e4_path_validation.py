"""E4 — learned-query quality with vs without path validation.

The paper's Section 3 argument: without path validation the system learns
*a* consistent query (e.g. ``bus`` on the motivating example), which is
not necessarily the goal query; with validation the generalised paths are
the ones the user actually cares about.  Expected shape: the validation
variant recovers the exact goal at least as often and never has lower
instance F1.
"""

from repro.experiments.harness import run_e4_path_validation
from repro.graph.datasets import motivating_example
from repro.learning.learner import learn_query
from repro.workloads.generator import quick_suite

from conftest import write_artifact


def test_e4_full_table(benchmark, results_dir):
    cases = quick_suite(seed=29)
    tables = benchmark.pedantic(
        run_e4_path_validation, args=(cases,), kwargs={"seed": 29}, rounds=1, iterations=1
    )
    write_artifact(results_dir, "e4_detail.txt", tables["detail"].render())
    write_artifact(results_dir, "e4_summary.txt", tables["summary"].render())
    by_variant = {row["variant"]: row for row in tables["summary"]}
    # both variants end consistent with every label (F1 = 1 under the
    # user-satisfied halt); the benefit of validation shows up as fewer
    # interactions to get there.  Exact-language recovery fluctuates with
    # which compatible path the simulated user happens to validate, so it is
    # reported in the table but not asserted here (the Section 3
    # counter-example below is the robust exactness check).
    assert by_variant["validation"]["f1"] >= by_variant["no-validation"]["f1"] - 1e-9
    assert by_variant["validation"]["interactions"] <= by_variant["no-validation"]["interactions"] + 1e-9


def test_e4_section3_counterexample(benchmark, results_dir):
    """Without validation the learner can return `bus`; with the paper's
    validated words it returns the goal query."""
    graph = motivating_example()

    def run_both():
        without = learn_query(graph, positive={"N2": None, "N6": None}, negative=["N5"])
        with_validation = learn_query(
            graph,
            positive={"N2": ("bus", "tram", "cinema"), "N6": ("cinema",)},
            negative=["N5"],
        )
        return without, with_validation

    without, with_validation = benchmark(run_both)
    assert not without.same_language("(tram + bus)* . cinema")
    assert with_validation.same_language("(tram + bus)* . cinema")
    write_artifact(
        results_dir,
        "e4_counterexample.txt",
        f"without validation : {without}\nwith validation    : {with_validation}",
    )
