"""Figure 2 — the interactive loop on the motivating example.

Regenerates a full session transcript (simulated user whose goal is the
paper's query) and benchmarks one complete interactive session.
"""

from repro.experiments.figures import figure2
from repro.graph.datasets import motivating_example
from repro.interactive.oracle import SimulatedUser
from repro.interactive.session import InteractiveSession
from repro.serving.workspace import default_workspace

from conftest import write_artifact

GOAL = "(tram + bus)* . cinema"


def _run_session():
    graph = motivating_example()
    user = SimulatedUser(graph, GOAL)
    session = InteractiveSession(graph, user)
    return graph, user, session.run()


def test_figure2_transcript_regeneration(benchmark, results_dir):
    result = benchmark(figure2)
    assert result.instance_match
    write_artifact(results_dir, "figure2.txt", result.render())


def test_figure2_full_session(benchmark):
    graph, user, result = benchmark(_run_session)
    assert default_workspace().engine.evaluate(graph, result.learned_query) == user.goal_answer
    assert result.interactions <= 6
