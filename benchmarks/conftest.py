"""Shared helpers for the benchmark suite.

Every benchmark regenerates one figure or experiment of DESIGN.md /
EXPERIMENTS.md.  Besides the pytest-benchmark timing, each bench writes
the regenerated table (or figure rendering) to ``benchmarks/results/`` so
the artefacts can be inspected and diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where regenerated tables / figures are written."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_artifact(results_dir: Path, name: str, content: str) -> Path:
    """Write one regenerated artefact and return its path."""
    path = results_dir / name
    path.write_text(content + "\n")
    return path
