"""Figure 3 — neighbourhoods of N2 (a, b) and the prefix tree of its paths (c).

Regenerates the three artefacts (radius-2 fragment, zoom delta to radius 3,
prefix tree with the ``bus.bus.cinema`` candidate highlighted) and
benchmarks neighbourhood extraction / zooming / prefix-tree construction,
including on a larger graph.
"""

from repro.experiments.figures import figure3
from repro.graph.datasets import motivating_example, transit_city
from repro.graph.neighborhood import extract_neighborhood, zoom_out
from repro.learning.path_selection import candidate_prefix_tree

from conftest import write_artifact


def test_figure3_regeneration(benchmark, results_dir):
    result = benchmark(figure3)
    assert result.highlighted == ("bus", "bus", "cinema")
    assert not result.neighborhood_2.contains("C1")
    assert result.zoom_delta.current.contains("C1")
    write_artifact(results_dir, "figure3.txt", result.render())


def test_figure3a_neighborhood_extraction(benchmark):
    graph = motivating_example()
    neighborhood = benchmark(extract_neighborhood, graph, "N2", 2)
    assert neighborhood.radius == 2


def test_figure3b_zoom_out(benchmark):
    graph = motivating_example()
    base = extract_neighborhood(graph, "N2", 2)
    delta = benchmark(zoom_out, graph, base)
    assert "C1" in delta.new_nodes


def test_figure3c_prefix_tree(benchmark):
    graph = motivating_example()
    tree = benchmark(
        candidate_prefix_tree, graph, "N2", ["N5"], max_length=3, preferred_length=3
    )
    assert tree.highlighted_word() == ("bus", "bus", "cinema")


def test_neighborhood_extraction_on_large_city(benchmark):
    graph = transit_city(400, tram_lines=8, bus_lines=12, line_length=20, seed=5)
    center = sorted(graph.nodes(), key=str)[0]
    neighborhood = benchmark(extract_neighborhood, graph, center, 2)
    assert neighborhood.contains(center)
