"""Benchmark: streaming churn with delta-scoped cache invalidation.

The delta-journal PR claims a warm tick — apply one sliding-window edge
delta, refresh every workspace layer, re-touch the caches — beats the
pre-delta behaviour of nuking every derived structure whole.  Three
gates are asserted here:

* **>= 5x warm-tick latency** against the whole-invalidation baseline.
  The baseline is the same code with the journal disabled
  (``journal_limit=0``): every refresh finds nothing to bridge and
  falls back to drop-and-rebuild, which is exactly what every mutation
  cost before the journal existed.
* **Bit-identical structures** — after every tick, the delta-maintained
  label index, language index, answer cache and neighbourhood balls
  equal scratch rebuilds on the mutated graph.
* **Journal-overflow fallback** — a journal too small to bridge the
  accumulated ticks must degrade to the whole-drop path and still be
  correct, never serve stale state.

The measured speedup is written to ``benchmarks/results/churn_speedup.txt``.
"""

import time

from repro.graph.labeled_graph import GraphLabelIndex
from repro.graph.neighborhood import NeighborhoodIndex
from repro.learning.language_index import LanguageIndex
from repro.query.engine import QueryEngine
from repro.serving.workspace import GraphWorkspace
from repro.workloads.churn import ChurnStream

from conftest import write_artifact

ALPHABET = ("a", "b", "c", "d")
QUERIES = ("a", "(a + b)* . c", "b . d")
BOUND = 3

#: the headline stream: big enough that a whole rebuild dwarfs the cone
NODE_COUNT = 1600
WINDOW = 4000
CHURN = 2
TICKS = 12
TRIALS = 2

#: acceptance floor for warm-tick latency vs the nuke-everything baseline
SPEEDUP_FLOOR = 5.0


def _stream(**overrides) -> ChurnStream:
    params = dict(
        node_count=NODE_COUNT,
        alphabet=ALPHABET,
        window=WINDOW,
        churn=CHURN,
        tick_count=TICKS,
        seed=19,
        name="bench-churn",
    )
    params.update(overrides)
    return ChurnStream(**params)


def _touch_layers(workspace: GraphWorkspace, graph, center) -> None:
    """One warm interaction: every cache layer is consulted once."""
    workspace.language_index(graph, BOUND)
    for query in QUERIES:
        workspace.engine.evaluate(graph, query)
    workspace.neighborhoods(graph).neighborhood(center, 2)


def _run_ticks(stream: ChurnStream, *, journal_limit=None) -> float:
    """Total warm-tick seconds over the stream (one workspace, one graph)."""
    graph = stream.initial_graph(journal_limit=journal_limit)
    workspace = GraphWorkspace()
    center = stream.nodes[0]
    _touch_layers(workspace, graph, center)  # cold builds are not measured
    total = 0.0
    for tick in stream.ticks():
        started = time.perf_counter()
        tick.apply(graph)
        workspace.refresh(graph)
        _touch_layers(workspace, graph, center)
        total += time.perf_counter() - started
    return total


# ----------------------------------------------------------------------
# correctness gates
# ----------------------------------------------------------------------
def _assert_matches_scratch(workspace: GraphWorkspace, graph, centers) -> None:
    """Every delta-maintained structure equals a from-scratch rebuild."""
    maintained = workspace.language_index(graph, BOUND)
    scratch = LanguageIndex(graph, BOUND)
    assert maintained.version == graph.version
    for node in scratch.nodes:
        assert maintained.decode(maintained.language(node)) == scratch.decode(
            scratch.language(node)
        ), f"language of {node!r} diverged from scratch"

    label_index = graph.label_index()
    fresh_label_index = GraphLabelIndex(graph)
    assert label_index._rev == fresh_label_index._rev

    cold = QueryEngine()
    for query in QUERIES:
        assert workspace.engine.evaluate(graph, query) == cold.evaluate(graph, query)

    neighborhoods = workspace.neighborhoods(graph)
    fresh_neighborhoods = NeighborhoodIndex(graph)
    for center in centers:
        kept = neighborhoods.neighborhood(center, 2)
        fresh = fresh_neighborhoods.neighborhood(center, 2)
        assert kept.nodes == fresh.nodes
        assert kept.distances == fresh.distances


def test_delta_refreshed_structures_bit_identical_to_scratch():
    stream = _stream(node_count=60, window=150, churn=3, tick_count=8)
    graph = stream.initial_graph()
    workspace = GraphWorkspace()
    centers = stream.nodes[:4]
    _touch_layers(workspace, graph, centers[0])
    delta_refreshes = 0
    for tick in stream.ticks():
        tick.apply(graph)
        counters = workspace.refresh(graph)
        delta_refreshes += counters["language_indexes_refreshed"]
        _assert_matches_scratch(workspace, graph, centers)
    # the equality must have been exercised on the delta path, not on
    # rebuilds that happen to be trivially equal to themselves
    assert delta_refreshes > 0


def test_journal_overflow_falls_back_whole_drop_and_stays_correct():
    stream = _stream(node_count=60, window=150, churn=3, tick_count=8)
    graph = stream.initial_graph(journal_limit=2)
    workspace = GraphWorkspace()
    centers = stream.nodes[:4]
    _touch_layers(workspace, graph, centers[0])
    # accumulate more ticks than the journal window can bridge ...
    for tick in stream.ticks():
        tick.apply(graph)
    assert graph.deltas_since(graph.version - stream.tick_count) is None
    # ... so the refresh must take the whole-drop path, not serve stale state
    counters = workspace.refresh(graph)
    assert counters["language_indexes_refreshed"] == 0
    assert counters["language_indexes_dropped"] == 1
    assert counters["answers_retained"] == 0
    _assert_matches_scratch(workspace, graph, centers)


# ----------------------------------------------------------------------
# the 5x gate
# ----------------------------------------------------------------------
def test_warm_tick_speedup_over_whole_invalidation(results_dir):
    stream = _stream()
    delta_seconds = baseline_seconds = float("inf")
    # best-of-N on both sides: a scheduler stall on a shared CI runner
    # inflates one trial, not the minimum
    for _ in range(TRIALS):
        delta_seconds = min(delta_seconds, _run_ticks(stream))
    for _ in range(TRIALS):
        baseline_seconds = min(baseline_seconds, _run_ticks(stream, journal_limit=0))

    speedup = baseline_seconds / delta_seconds
    write_artifact(
        results_dir,
        "churn_speedup.txt",
        f"nodes={NODE_COUNT} window={WINDOW} churn={CHURN} ticks={TICKS} "
        f"delta={delta_seconds / TICKS * 1000:.2f}ms/tick "
        f"baseline={baseline_seconds / TICKS * 1000:.2f}ms/tick "
        f"speedup={speedup:.1f}x",
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"warm ticks only {speedup:.1f}x faster than whole invalidation"
    )


# ----------------------------------------------------------------------
# pytest-benchmark timings (recorded in BENCH_churn.json)
# ----------------------------------------------------------------------
def test_churn_delta_ticks(benchmark):
    stream = _stream()
    total = benchmark.pedantic(lambda: _run_ticks(stream), rounds=2)
    assert total > 0.0


def test_churn_whole_invalidation_reference(benchmark):
    stream = _stream()
    total = benchmark.pedantic(lambda: _run_ticks(stream, journal_limit=0), rounds=1)
    assert total > 0.0
