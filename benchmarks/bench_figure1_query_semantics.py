"""Figure 1 — the motivating example and its goal-query answer.

Regenerates the answer of ``(tram + bus)* . cinema`` on the geographical
graph of Figure 1 (must be exactly {N1, N2, N4, N6}) and benchmarks RPQ
evaluation on the motivating example and on a larger transit city.
"""

from repro.experiments.figures import figure1
from repro.graph.datasets import motivating_example, transit_city
from repro.serving.workspace import default_workspace
from repro.query.rpq import PathQuery

from conftest import write_artifact

GOAL = "(tram + bus)* . cinema"


def test_figure1_answer_regeneration(benchmark, results_dir):
    """Recompute the Figure 1 answer and check it matches the paper."""
    result = benchmark(figure1)
    assert result.matches_paper
    write_artifact(results_dir, "figure1.txt", result.render())


def test_figure1_evaluation_on_motivating_example(benchmark):
    graph = motivating_example()
    query = PathQuery(GOAL)
    answer = benchmark(default_workspace().engine.evaluate, graph, query)
    assert answer == {"N1", "N2", "N4", "N6"}


def test_figure1_evaluation_scales_to_transit_city(benchmark):
    graph = transit_city(300, tram_lines=6, bus_lines=10, line_length=15, seed=3)
    query = PathQuery(GOAL)
    answer = benchmark(default_workspace().engine.evaluate, graph, query)
    assert isinstance(answer, frozenset)
