"""Section 3 — the three demonstration scenarios side by side.

Static labelling vs interactive labelling (without path validation) vs the
full GPS loop (with path validation), over the quick workload suite.
Expected shape: interactive+validation needs the fewest interactions and
always matches the user's intended answer on the instance.
"""

from repro.experiments.harness import run_scenario_comparison
from repro.graph.datasets import motivating_example
from repro.interactive.scenarios import run_all_scenarios
from repro.workloads.generator import quick_suite

from conftest import write_artifact

GOAL = "(tram + bus)* . cinema"


def test_scenario_comparison_table(benchmark, results_dir):
    cases = quick_suite(seed=37)
    tables = benchmark.pedantic(
        run_scenario_comparison, args=(cases,), kwargs={"seed": 37}, rounds=1, iterations=1
    )
    write_artifact(results_dir, "scenarios_detail.txt", tables["detail"].render())
    write_artifact(results_dir, "scenarios_summary.txt", tables["summary"].render())
    by_scenario = {row["scenario"]: row for row in tables["summary"]}
    assert (
        by_scenario["interactive+validation"]["interactions"]
        <= by_scenario["static"]["interactions"]
    )
    assert by_scenario["interactive+validation"]["instance_f1"] == 1.0


def test_three_scenarios_on_figure1(benchmark, results_dir):
    graph = motivating_example()
    reports = benchmark(run_all_scenarios, graph, GOAL, seed=37)
    lines = [str(report.summary_row()) for report in reports.values()]
    write_artifact(results_dir, "scenarios_figure1.txt", "\n".join(lines))
    assert reports["interactive+validation"].metrics["f1"] == 1.0
