"""Benchmark: the deterministic, parallel, resumable experiment runner.

Two guarantees of the runner PR are asserted here:

* **Determinism** — a 4-worker run produces row-for-row identical
  results to a serial run (wall-clock columns excluded, everything else
  byte-equal), on the quick suite.
* **Throughput** — on a standard-suite slice of real work (E1 + E4 over
  the transit and scale-free datasets) the 4-worker run beats serial
  wall-clock.  This assertion needs actual cores and is skipped on
  single-core machines; the determinism assertions always run.

The measured speedup is written to ``benchmarks/results/runner_speedup.txt``.
"""

import os
import time

import pytest

from repro.experiments.runner import EXPERIMENTS, ExperimentRunner, strip_timing

from conftest import write_artifact

#: Standard-suite slice used for the wall-clock comparison: enough units
#: (~112) to amortise pool startup, small enough to run twice in a bench.
STANDARD_SLICE = dict(
    suite="standard",
    datasets=("transit-small", "scale-free-medium"),
    experiments=("e1", "e4"),
    per_family=1,
    seed=11,
)

PARALLEL_WORKERS = 4


def _assert_rows_identical(first, second, experiments):
    for experiment in experiments:
        assert strip_timing(first.rows(experiment)) == strip_timing(second.rows(experiment)), experiment


def test_quick_suite_parallel_rows_identical_to_serial():
    """The headline determinism guarantee, on the full quick suite."""
    serial = ExperimentRunner(suite="quick", workers=1).run()
    parallel = ExperimentRunner(suite="quick", workers=PARALLEL_WORKERS).run()
    _assert_rows_identical(serial, parallel, EXPERIMENTS)


def test_parallel_wall_clock_win_on_standard_suite(results_dir):
    serial_runner = ExperimentRunner(workers=1, **STANDARD_SLICE)
    started = time.perf_counter()
    serial = serial_runner.run()
    serial_seconds = time.perf_counter() - started

    parallel_runner = ExperimentRunner(workers=PARALLEL_WORKERS, **STANDARD_SLICE)
    started = time.perf_counter()
    parallel = parallel_runner.run()
    parallel_seconds = time.perf_counter() - started

    _assert_rows_identical(serial, parallel, STANDARD_SLICE["experiments"])

    speedup = serial_seconds / parallel_seconds if parallel_seconds else float("inf")
    write_artifact(
        results_dir,
        "runner_speedup.txt",
        "\n".join(
            [
                "== Runner: serial vs parallel (standard-suite slice) ==",
                f"units            : {len(serial.units)}",
                f"serial seconds   : {serial_seconds:.2f}",
                f"parallel seconds : {parallel_seconds:.2f} ({PARALLEL_WORKERS} workers)",
                f"speedup          : {speedup:.2f}x",
                f"cpu count        : {os.cpu_count()}",
            ]
        ),
    )

    if (os.cpu_count() or 1) < PARALLEL_WORKERS:
        pytest.skip(
            f"parallel wall-clock win needs >= {PARALLEL_WORKERS} cores; "
            "oversubscribed pools can lose to serial (rows already verified identical)"
        )
    assert parallel_seconds < serial_seconds * 0.9, (
        f"expected a parallel wall-clock win: serial {serial_seconds:.2f}s, "
        f"parallel {parallel_seconds:.2f}s"
    )
