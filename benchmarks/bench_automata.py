"""Benchmark of the automata kernel: indexed GNFA synthesis, Hopcroft
minimisation, block-tracking RPNI folds and the canonical-form cache.

The kernel is driven exclusively by **learner data from real sessions**:
interactive sessions run on catalogue graphs, and every automaton timed
here is an RPNI output (step (ii) of the paper's algorithm) over the
positive/negative word samples those sessions produced — at several
ablation levels (``max_merges``) so the corpus spans ungeneralised
PTA-sized hypotheses down to fully merged ones.

The **seed** implementations below are the pre-change code reproduced
verbatim: full-table ``degree()`` rescans inside the elimination sort
key, per-splitter partition rebuilds in ``minimize``, whole-union-find
walks per RPNI fold, and uncached minimise + synthesise per hypothesis.

Acceptance gates, asserted here and in the ``bench-automata-smoke`` CI
job:

* ``dfa_to_regex`` is **>= 10x** faster than the seed on the
  session-derived corpus, with every synthesised expression
  language-equivalent to the seed's (pinned via ``regex -> DFA``
  roundtrips);
* the re-learning step that runs after every user answer (RPNI +
  minimise + synthesise + wrap) improves measurably end to end across a
  full session replay;
* sessions driven by the seed kernel and the current kernel perform
  **bit-identical** interaction sequences, and every per-interaction
  hypothesis is language-equivalent between the two.
"""

import time
from contextlib import contextmanager
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.automata.dfa import DFA, symbol_sort_key, word_sort_key
from repro.automata.determinize import regex_to_dfa
from repro.automata.equivalence import equivalent
from repro.automata.minimize import _drop_dead_states, minimize
from repro.automata.prefix_tree import build_pta
from repro.automata.regex_synthesis import dfa_to_regex
from repro.automata.state_merging import rpni
from repro.graph.datasets import dataset_catalog
from repro.graph.paths import words_from
from repro.interactive.halt import AnyOf, MaxInteractions, UserSatisfied
from repro.interactive.oracle import SimulatedUser
from repro.interactive.session import InteractiveSession
from repro.learning.examples import ExampleSet
from repro.learning.learner import PathQueryLearner
from repro.query.engine import QueryEngine
from repro.regex.ast import EMPTY, EPSILON, Regex, Symbol

from conftest import write_artifact

#: (dataset, goal, max_path_length) session configurations the corpus is
#: harvested from — chosen so hypotheses are non-trivial automata
SESSIONS = [
    ("bio-medium", "(interacts + regulates)* . encodes", 7),
    ("scale-free-medium", "a* . b . c*", 6),
    ("transit-medium", "(tram + bus)* . cinema", 6),
]
MAX_INTERACTIONS = 40
#: ablation levels of step (ii): None = full RPNI, others = capped merges
MERGE_LEVELS = (0, 4, None)
#: bounded enumeration of each hypothesis language (the validated paths a
#: longer session would accumulate) feeding the RPNI corpus
SAMPLE_LENGTH = 7
SAMPLE_LIMIT = 120
TRIALS = 3

#: acceptance floors.  The synthesis floor is the tentpole target; the
#: re-learn floor is deliberately modest: after the PR-3 language-index
#: work the automata kernel is roughly a third of the per-interaction
#: budget (step (i) word selection and the compatibility oracle share the
#: rest), so ~1.2-1.3x measured end-to-end is the kernel's full share —
#: asserted at 1.05x to absorb shared-runner noise (both sides run the
#: same step (i) / oracle code, so most noise cancels in the ratio)
SYNTHESIS_SPEEDUP_FLOOR = 10.0
RELEARN_SPEEDUP_FLOOR = 1.05


# ----------------------------------------------------------------------
# The seed (pre-change) automata kernel, reproduced verbatim
# ----------------------------------------------------------------------
State = Hashable
_INITIAL = "__init__"
_FINAL = "__final__"


def _seed_edge_union(table, source, target, expr):
    key = (source, target)
    existing = table.get(key, EMPTY)
    table[key] = existing.union(expr)


def seed_dfa_to_regex(dfa: DFA, *, simplify_output: bool = True) -> Regex:
    """Pre-change synthesis: full-table degree rescans per elimination round."""
    trimmed = dfa.trim()
    if trimmed.is_empty():
        return EMPTY

    table: Dict[Tuple[State, State], Regex] = {}
    states: List[State] = sorted(trimmed.states, key=str)
    _seed_edge_union(table, _INITIAL, trimmed.initial_state, EPSILON)
    for state in trimmed.accepting_states:
        _seed_edge_union(table, state, _FINAL, EPSILON)
    for source, symbol, target in trimmed.transitions():
        _seed_edge_union(table, source, target, Symbol(symbol))

    def degree(state):
        return sum(1 for (source, target) in table if source == state or target == state)

    remaining = list(states)
    while remaining:
        remaining.sort(key=lambda state: (degree(state), str(state)))
        victim = remaining.pop(0)
        incoming = [
            (source, expr)
            for (source, target), expr in table.items()
            if target == victim and source != victim
        ]
        outgoing = [
            (target, expr)
            for (source, target), expr in table.items()
            if source == victim and target != victim
        ]
        loop = table.get((victim, victim), EMPTY)
        loop_star = loop.star() if not isinstance(loop, type(EMPTY)) or loop != EMPTY else EPSILON
        for source, incoming_expr in incoming:
            for target, outgoing_expr in outgoing:
                bridged = incoming_expr.concat(loop_star).concat(outgoing_expr)
                _seed_edge_union(table, source, target, bridged)
        table = {key: expr for key, expr in table.items() if victim not in key}

    synthesized = table.get((_INITIAL, _FINAL), EMPTY)
    if simplify_output:
        from repro.regex.simplify import simplify

        return simplify(synthesized)
    return synthesized


def seed_minimize(dfa: DFA) -> DFA:
    """Pre-change minimisation: full partition rebuild per splitter."""
    if dfa.is_empty():
        empty = DFA(0)
        empty.declare_alphabet(dfa.alphabet())
        return empty
    total = dfa.trim().completed()
    alphabet = sorted(total.alphabet(), key=symbol_sort_key)
    states = list(total.states)
    accepting = set(total.accepting_states)
    rejecting = set(states) - accepting

    partition = [block for block in (accepting, rejecting) if block]
    worklist = [(frozenset(block), symbol) for block in partition for symbol in alphabet]

    reverse = {symbol: {} for symbol in alphabet}
    for source, symbol, target in total.transitions():
        reverse[symbol].setdefault(target, set()).add(source)

    while worklist:
        splitter, symbol = worklist.pop()
        movers = set()
        for target in splitter:
            movers.update(reverse[symbol].get(target, ()))
        if not movers:
            continue
        next_partition = []
        for block in partition:
            inside = block & movers
            outside = block - movers
            if inside and outside:
                next_partition.append(inside)
                next_partition.append(outside)
                smaller = inside if len(inside) <= len(outside) else outside
                for refinement_symbol in alphabet:
                    worklist.append((frozenset(smaller), refinement_symbol))
            else:
                next_partition.append(block)
        partition = next_partition

    block_of = {}
    for block_index, block in enumerate(partition):
        for state in block:
            block_of[state] = block_index

    quotient = DFA(block_of[total.initial_state])
    quotient.declare_alphabet(alphabet)
    for block_index in range(len(partition)):
        quotient.add_state(block_index)
    quotient.set_initial(block_of[total.initial_state])
    for block_index, block in enumerate(partition):
        representative = next(iter(block))
        if total.is_accepting(representative):
            quotient.set_accepting(block_index)
        for symbol in alphabet:
            target = total.target(representative, symbol)
            if target is not None:
                quotient.add_transition(block_index, symbol, block_of[target])

    return _drop_dead_states(quotient).relabeled()


class _SeedPartition:
    """Pre-change union-find: ``blocks()`` walks every PTA state."""

    def __init__(self, states: Iterable[int]):
        self._parent: Dict[int, int] = {state: state for state in states}

    def find(self, state: int) -> int:
        root = state
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[state] != root:
            self._parent[state], state = root, self._parent[state]
        return root

    def union(self, first: int, second: int) -> int:
        first_root, second_root = self.find(first), self.find(second)
        if first_root == second_root:
            return first_root
        keep, drop = (
            (first_root, second_root) if first_root < second_root else (second_root, first_root)
        )
        self._parent[drop] = keep
        return keep

    def copy(self) -> "_SeedPartition":
        clone = _SeedPartition(())
        clone._parent = dict(self._parent)
        return clone

    def blocks(self) -> Dict[int, List[int]]:
        grouped: Dict[int, List[int]] = {}
        for state in self._parent:
            grouped.setdefault(self.find(state), []).append(state)
        for members in grouped.values():
            members.sort()
        return grouped


def _seed_quotient(pta: DFA, partition: _SeedPartition) -> DFA:
    quotient = DFA(partition.find(pta.initial_state))
    for representative in partition.blocks():
        quotient.add_state(representative)
    quotient.set_initial(partition.find(pta.initial_state))
    quotient.declare_alphabet(pta.alphabet())
    for source, symbol, target in pta.transitions():
        quotient.add_transition(partition.find(source), symbol, partition.find(target))
    for state in pta.accepting_states:
        quotient.set_accepting(partition.find(state))
    return quotient


def _seed_merge_and_fold(pta, partition, red, blue):
    """Pre-change fold: walks the entire union-find per fold step."""
    candidate = partition.copy()
    transitions = pta._transitions
    worklist = [(red, blue)]
    while worklist:
        first, second = worklist.pop()
        first_root, second_root = candidate.find(first), candidate.find(second)
        if first_root == second_root:
            continue
        candidate.union(first_root, second_root)
        merged_root = candidate.find(first_root)
        find = candidate.find
        outgoing = {}
        for member in candidate._parent:
            if find(member) != merged_root:
                continue
            for symbol, target in transitions[member].items():
                target_root = find(target)
                known = outgoing.get(symbol)
                if known is not None and find(known) != target_root:
                    worklist.append((known, target_root))
                else:
                    outgoing[symbol] = target_root
    return candidate


def seed_generalize_pta(positive_words, compatible, *, max_merges=None) -> DFA:
    """Pre-change RPNI driver (all-state frontier scans, n-find signatures)."""
    words = [tuple(word) for word in positive_words]
    pta = build_pta(words)
    partition = _SeedPartition(pta.states)
    red = [pta.initial_state]
    merges_done = 0
    verdicts: Dict[Tuple[int, ...], bool] = {}
    all_states = sorted(pta.states)

    def partition_signature(candidate):
        find = candidate.find
        return tuple(find(state) for state in all_states)

    transitions = pta._transitions

    def blue_states():
        frontier: Set[int] = set()
        find = partition.find
        red_roots = {find(state) for state in red}
        for state in pta.states:
            if find(state) not in red_roots:
                continue
            for target in transitions[state].values():
                target_root = find(target)
                if target_root not in red_roots:
                    frontier.add(target_root)
        return sorted(frontier)

    while True:
        frontier = blue_states()
        if not frontier:
            break
        blue = frontier[0]
        merged = False
        if max_merges is None or merges_done < max_merges:
            for red_state in sorted({partition.find(state) for state in red}):
                candidate = _seed_merge_and_fold(pta, partition, red_state, blue)
                if candidate is None:
                    continue
                signature = partition_signature(candidate)
                verdict = verdicts.get(signature)
                if verdict is None:
                    verdict = compatible(_seed_quotient(pta, candidate))
                    verdicts[signature] = verdict
                if verdict:
                    partition = candidate
                    merges_done += 1
                    merged = True
                    break
        if not merged:
            red.append(blue)
    return _seed_quotient(pta, partition).trim().relabeled()


def seed_canonical_form(dfa: DFA):
    """Pre-change presentation, cost-faithful to the seed call sequence.

    The pre-change learner minimised the generalised DFA, ``from_dfa``
    synthesised the expression from that input, and then minimised
    *again* for the query's compiled automaton — reproduced verbatim so
    the seed side pays exactly what it paid.
    """
    learned = seed_minimize(dfa)
    expression = seed_dfa_to_regex(learned)
    return seed_minimize(learned), expression


@contextmanager
def seed_kernel():
    """Swap the pre-change automata kernel into the learner / query layers."""
    import repro.learning.learner as learner_module
    import repro.query.engine as engine_module
    import repro.query.rpq as rpq_module

    saved = (
        learner_module.generalize_pta,
        rpq_module.canonical_form,
        engine_module.minimize,
    )
    learner_module.generalize_pta = seed_generalize_pta
    rpq_module.canonical_form = seed_canonical_form
    engine_module.minimize = seed_minimize
    try:
        yield
    finally:
        learner_module.generalize_pta = saved[0]
        rpq_module.canonical_form = saved[1]
        engine_module.minimize = saved[2]


# ----------------------------------------------------------------------
# harvesting learner data from real sessions
# ----------------------------------------------------------------------
def _run_session(dataset: str, goal: str, max_path_length: int):
    graph = dataset_catalog()[dataset].copy()
    engine = QueryEngine()
    user = SimulatedUser(graph, goal, engine=engine)
    session = InteractiveSession(
        graph,
        user,
        halt_condition=AnyOf(
            [UserSatisfied(user.goal_answer), MaxInteractions(MAX_INTERACTIONS)]
        ),
        max_path_length=max_path_length,
        engine=engine,
    )
    result = session.run()
    return graph, session, result


#: harvest / corpus memo — the sessions are deterministic, so the four
#: tests that need the corpus share one computation
_HARVEST_CACHE: Dict[str, object] = {}


def _session_samples() -> List[Tuple[List[Tuple[str, ...]], List[Tuple[str, ...]]]]:
    """Per session: (positive words, negative words) for step (ii).

    Positives are the bounded language of every hypothesis the session
    presented (the validated paths a longer session would accumulate);
    negatives are the covered words of the session's negative nodes.
    """
    if "samples" in _HARVEST_CACHE:
        return _HARVEST_CACHE["samples"]
    samples = []
    for dataset, goal, max_path_length in SESSIONS:
        graph, session, result = _run_session(dataset, goal, max_path_length)
        negatives: Set[Tuple[str, ...]] = set()
        for node in sorted(session.examples.negative_nodes, key=str):
            negatives |= words_from(graph, node, max_path_length)
        hypotheses = {
            record.hypothesis.name: record.hypothesis
            for record in result.records
            if record.hypothesis is not None
        }
        for _, hypothesis in sorted(hypotheses.items()):
            positives = [
                word
                for word in hypothesis.dfa.accepted_words(SAMPLE_LENGTH, limit=SAMPLE_LIMIT)
                if word and word not in negatives
            ]
            if len(positives) < 4:
                continue
            positives.sort(key=lambda word: (len(word), word_sort_key(word)))
            samples.append((positives, sorted(negatives, key=word_sort_key)))
    assert len(samples) >= 3, "session harvest produced too few RPNI samples"
    _HARVEST_CACHE["samples"] = samples
    return samples


def _rpni_corpus(samples) -> List[DFA]:
    """RPNI outputs over the harvested samples, across ablation levels."""
    if "corpus" in _HARVEST_CACHE:
        return _HARVEST_CACHE["corpus"]
    corpus: List[DFA] = []
    seen: Set[Tuple] = set()
    for positives, negatives in samples:
        for max_merges in MERGE_LEVELS:
            learned = rpni(positives, negatives, max_merges=max_merges)
            key = (
                learned.state_count(),
                tuple(sorted(learned.transitions())),
                tuple(sorted(learned.accepting_states)),
            )
            if key not in seen:
                seen.add(key)
                corpus.append(learned)
    _HARVEST_CACHE["corpus"] = corpus
    return corpus


def _best_of(callable_, trials: int = TRIALS) -> float:
    best = float("inf")
    for _ in range(trials):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


# ----------------------------------------------------------------------
# gate 1: >= 10x dfa_to_regex on the session-derived RPNI corpus
# ----------------------------------------------------------------------
def test_synthesis_speedup_on_learned_dfas(results_dir):
    corpus = _rpni_corpus(_session_samples())
    sizes = sorted(dfa.state_count() for dfa in corpus)
    assert sizes[-1] >= 40, f"corpus too small to expose the quadratic scan: {sizes}"

    # equivalent output first (pinned per DFA via regex -> DFA roundtrip)
    for dfa in corpus:
        new_expr = dfa_to_regex(dfa)
        seed_expr = seed_dfa_to_regex(dfa)
        rebuilt_new = regex_to_dfa(new_expr)
        assert equivalent(rebuilt_new, dfa), "indexed synthesis changed the language"
        assert equivalent(rebuilt_new, regex_to_dfa(seed_expr)), (
            "indexed synthesis disagrees with the seed"
        )

    def run_seed():
        for dfa in corpus:
            seed_dfa_to_regex(dfa)

    def run_new():
        for dfa in corpus:
            dfa_to_regex(dfa)

    seed_seconds = _best_of(run_seed)
    new_seconds = _best_of(run_new)
    speedup = seed_seconds / new_seconds
    write_artifact(
        results_dir,
        "automata_synthesis_speedup.txt",
        f"corpus={len(corpus)} DFAs, states={sizes[0]}..{sizes[-1]} "
        f"seed={seed_seconds * 1000:.1f}ms new={new_seconds * 1000:.1f}ms "
        f"speedup={speedup:.1f}x",
    )
    assert speedup >= SYNTHESIS_SPEEDUP_FLOOR, (
        f"dfa_to_regex only {speedup:.1f}x faster than the seed "
        f"(floor {SYNTHESIS_SPEEDUP_FLOOR}x)"
    )


# ----------------------------------------------------------------------
# gate 2: minimize agrees with the seed and does not regress
# ----------------------------------------------------------------------
def test_hopcroft_matches_seed_minimize(results_dir):
    corpus = _rpni_corpus(_session_samples())
    for dfa in corpus:
        new_minimal = minimize(dfa)
        seed_minimal = seed_minimize(dfa)
        assert new_minimal.state_count() == seed_minimal.state_count()
        assert equivalent(new_minimal, seed_minimal)
        assert sorted(new_minimal.transitions()) == sorted(seed_minimal.transitions())

    seed_seconds = _best_of(lambda: [seed_minimize(dfa) for dfa in corpus])
    new_seconds = _best_of(lambda: [minimize(dfa) for dfa in corpus])
    write_artifact(
        results_dir,
        "automata_minimize_speedup.txt",
        f"corpus={len(corpus)} DFAs seed={seed_seconds * 1000:.1f}ms "
        f"new={new_seconds * 1000:.1f}ms speedup={seed_seconds / new_seconds:.1f}x",
    )
    # Hopcroft must not be slower; learner DFAs are too small for a
    # blanket 10x here (the partition fits in cache either way)
    assert new_seconds <= seed_seconds * 1.10


# ----------------------------------------------------------------------
# gate 3: bit-identical sessions + language-identical hypotheses
# ----------------------------------------------------------------------
def _session_outcome(dataset, goal, max_path_length):
    _, session, result = _run_session(dataset, goal, max_path_length)
    hypotheses = [record.hypothesis for record in result.records]
    return result.interaction_trace(), result.halted_by, hypotheses


def test_sessions_replay_identically_under_both_kernels():
    for dataset, goal, max_path_length in SESSIONS:
        current_trace, current_halt, current_hyps = _session_outcome(
            dataset, goal, max_path_length
        )
        with seed_kernel():
            seed_trace, seed_halt, seed_hyps = _session_outcome(
                dataset, goal, max_path_length
            )
        assert current_trace == seed_trace, f"trace diverged on {dataset}"
        assert current_halt == seed_halt
        assert len(current_hyps) == len(seed_hyps)
        for current_hyp, seed_hyp in zip(current_hyps, seed_hyps):
            assert (current_hyp is None) == (seed_hyp is None)
            if current_hyp is not None:
                assert equivalent(current_hyp.dfa, seed_hyp.dfa), (
                    f"hypothesis language diverged on {dataset}"
                )
        assert len(current_trace) >= 3, f"workload too small on {dataset}"


# ----------------------------------------------------------------------
# gate 4: measured end-to-end re-learn latency across a session replay
# ----------------------------------------------------------------------
def _interaction_batches(history) -> List[List[object]]:
    """Split an example history into per-interaction batches.

    Each user answer opens a batch (a non-propagated example); the
    propagated labels that follow belong to the same interaction —
    exactly the granularity at which the session re-learns.
    """
    batches: List[List[object]] = []
    for example in history:
        if not example.propagated or not batches:
            batches.append([])
        batches[-1].append(example)
    return batches


def _replay_learning(graph, history, max_path_length, generalize=True) -> Optional[object]:
    """Re-run the learner after every recorded user answer (the paper's
    'time-efficient between interactions' step), returning the last query."""
    replay = ExampleSet()
    learner = PathQueryLearner(graph, max_path_length=max_path_length, engine=QueryEngine())
    learner.generalize = generalize
    query = None
    for batch in _interaction_batches(history):
        for example in batch:
            if example.positive:
                replay.add_positive(
                    example.node,
                    validated_word=example.validated_word,
                    propagated=example.propagated,
                )
            else:
                replay.add_negative(example.node, propagated=example.propagated)
        query = learner.learn(replay).query
    return query


def test_relearn_latency_improvement(results_dir):
    total_seed = total_new = 0.0
    interactions = 0
    for dataset, goal, max_path_length in SESSIONS:
        graph, session, result = _run_session(dataset, goal, max_path_length)
        history = session.examples.history
        interactions += result.interactions

        new_query = [None]
        seed_query = [None]

        def run_new(graph=graph, history=history, bound=max_path_length, out=new_query):
            out[0] = _replay_learning(graph, history, bound)

        def run_seed(graph=graph, history=history, bound=max_path_length, out=seed_query):
            with seed_kernel():
                out[0] = _replay_learning(graph, history, bound)

        total_new += _best_of(run_new)
        total_seed += _best_of(run_seed)
        assert (new_query[0] is None) == (seed_query[0] is None)
        if new_query[0] is not None:
            assert equivalent(new_query[0].dfa, seed_query[0].dfa)

    speedup = total_seed / total_new
    write_artifact(
        results_dir,
        "automata_relearn_speedup.txt",
        f"interactions={interactions} seed={total_seed * 1000:.1f}ms "
        f"new={total_new * 1000:.1f}ms speedup={speedup:.1f}x",
    )
    assert speedup >= RELEARN_SPEEDUP_FLOOR, (
        f"re-learn loop only {speedup:.2f}x faster than the seed kernel "
        f"(floor {RELEARN_SPEEDUP_FLOOR}x)"
    )


# ----------------------------------------------------------------------
# pytest-benchmark timings (recorded in BENCH_automata.json)
# ----------------------------------------------------------------------
def test_bench_synthesis_current(benchmark):
    corpus = _rpni_corpus(_session_samples())

    def run():
        for dfa in corpus:
            dfa_to_regex(dfa)

    benchmark.pedantic(run, rounds=3)


def test_bench_minimize_current(benchmark):
    corpus = _rpni_corpus(_session_samples())

    def run():
        for dfa in corpus:
            minimize(dfa)

    benchmark.pedantic(run, rounds=3)
