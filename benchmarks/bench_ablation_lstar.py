"""Ablation — L* (membership queries on words) vs GPS (labels on nodes).

The paper's interaction protocol is inspired by learning with membership
queries (Angluin).  This bench quantifies the difference between the
idealised framework and the practical system:

* L* with an exact teacher needs word-level membership and equivalence
  queries — precise but unanswerable by a non-expert staring at a graph;
* GPS asks Yes/No questions about *nodes of the actual database* and
  converges on the instance with a handful of them.

Expected shape: L* needs one to two orders of magnitude more (word-level)
queries than GPS needs node labels, which is the paper's motivation for
the node-labelling protocol.
"""

from repro.graph.datasets import motivating_example
from repro.interactive.oracle import SimulatedUser
from repro.interactive.session import InteractiveSession
from repro.learning.angluin import ExactTeacher, SampleTeacher, learn_with_membership_queries, lstar
from repro.serving.workspace import default_workspace

from conftest import write_artifact

GOAL = "(tram + bus)* . cinema"


def test_lstar_exact_learning(benchmark, results_dir):
    result = benchmark(learn_with_membership_queries, GOAL)
    assert result.query.same_language(GOAL)
    graph = motivating_example()
    user = SimulatedUser(graph, GOAL)
    session = InteractiveSession(graph, user)
    gps = session.run()
    comparison = (
        f"L* membership queries : {result.membership_queries}\n"
        f"L* equivalence queries: {result.equivalence_queries}\n"
        f"GPS node labels       : {gps.interactions}\n"
        f"GPS learned           : {gps.learned_query}\n"
        f"L* learned            : {result.query}"
    )
    write_artifact(results_dir, "ablation_lstar.txt", comparison)
    assert result.membership_queries > gps.interactions
    assert default_workspace().engine.evaluate(graph, gps.learned_query) == user.goal_answer


def test_lstar_with_bounded_teacher(benchmark):
    result = benchmark(lstar, SampleTeacher(GOAL, max_length=4))
    # agrees with the goal on every word the bounded teacher could check
    exact = ExactTeacher(GOAL)
    for word in [("cinema",), ("bus", "cinema"), ("tram", "bus", "cinema"), ("bus",)]:
        assert result.dfa.accepts(word) == exact.membership(word)
