"""Reliability benchmark: the acceptance gates of the fault-tolerance PR.

Drives supervised session fleets through deterministic fault injection
and asserts the four acceptance criteria of the reliability PR:

* **Termination** — at N=64 sessions with a 5% fault rate on every
  oracle interaction, every session terminates: retired with a result
  or quarantined with its partial trace; none hang (``run_all``
  returning with one result per admitted session is the proof).
* **Throughput under chaos** — the faulty fleet's per-session
  throughput stays at least ``0.5×`` the fault-free baseline: retries
  and seeded backoff may slow things down, but not catastrophically.
* **Replay fidelity** — with faults disabled the supervised machinery
  is invisible: traces are bit-identical to a plain (pre-reliability)
  ``SessionManager`` fleet, whether supervision is configured or not.
* **Resume safety** — an experiment campaign killed mid-run (rows.jsonl
  cut short, trailing line truncated mid-write) resumes from its store
  losing **zero** completed rows and re-executes only the missing units.

Timings land in ``BENCH_reliability.json`` (pytest-benchmark) and the
chaos summary in ``benchmarks/results/reliability_chaos.json``.
"""

import json
import time

from repro.experiments.runner import ExperimentRunner, ResultStore, strip_timing
from repro.graph.generators import random_graph
from repro.interactive.oracle import SimulatedUser, UnreliableUser
from repro.reliability import FaultInjector, FaultPlan, RetryPolicy, SupervisionPolicy
from repro.serving import GraphWorkspace, SessionManager

from conftest import write_artifact

NODES = 200
EDGES = 600
ALPHABET = ("a", "b", "c")
GRAPH_SEED = 11
FAULT_SEED = 20150323
SESSIONS = 64
FAULT_RATE = 0.05
MAX_INTERACTIONS = 8
MAX_PATH_LENGTH = 3

#: acceptance floor: chaos-fleet per-session throughput vs fault-free
THROUGHPUT_FLOOR = 0.5

GOALS = (
    "a . b",
    "b . c",
    "a* . b",
    "(a + b) . c",
    "c . a",
    "b* . a",
    "a . c",
    "(b + c) . a",
)


def make_graph():
    return random_graph(NODES, EDGES, ALPHABET, seed=GRAPH_SEED, name="reliability-bench")


def supervision_policy():
    return SupervisionPolicy(
        retry=RetryPolicy(max_attempts=6, backoff_base=0.0001),
        breaker_consecutive_limit=10,
        jitter_seed=FAULT_SEED,
    )


def run_fleet(count, *, rate, supervised=None):
    """Drive ``count`` sessions; faults per session at ``rate``.

    ``supervised`` defaults to "whenever faults can fire"; pass ``True``
    to keep supervision on with a zero rate (the invisibility check).
    Each session gets its own injector seeded from ``(FAULT_SEED,
    index)`` so fault schedules are independent of event-loop
    interleaving.  Returns ``(results, manager, users, seconds)``.
    """
    if supervised is None:
        supervised = rate > 0.0
    graph = make_graph()
    manager = SessionManager(
        GraphWorkspace(),
        dedup=False,
        supervision=supervision_policy() if supervised else None,
    )
    users = []
    for index in range(count):
        user = SimulatedUser(graph, GOALS[index % len(GOALS)], workspace=manager.workspace)
        if rate > 0.0:
            plan = FaultPlan(FAULT_SEED + index, default_rate=rate)
            user = UnreliableUser(user, FaultInjector(plan))
        users.append(user)
        manager.admit(
            graph,
            user,
            max_interactions=MAX_INTERACTIONS,
            max_path_length=MAX_PATH_LENGTH,
        )
    started = time.perf_counter()
    results = manager.run_all()
    elapsed = time.perf_counter() - started
    return results, manager, users, elapsed


def trace(result):
    return (
        result.interaction_trace(),
        [record.validated_word for record in result.records],
        str(result.learned_query),
        result.halted_by,
        result.quarantined,
    )


def fleet_traces(results):
    return [trace(results[sid]) for sid in sorted(results, key=lambda s: int(s[1:]))]


# ----------------------------------------------------------------------
# gates 1+2: termination and throughput at N=64, 5% fault rate
# ----------------------------------------------------------------------
def test_chaos_fleet_terminates_and_keeps_throughput(results_dir):
    results, manager, users, base_seconds = run_fleet(SESSIONS, rate=0.0)
    assert len(results) == SESSIONS

    chaos_results, chaos_manager, chaos_users, chaos_seconds = run_fleet(
        SESSIONS, rate=FAULT_RATE
    )
    stats = chaos_manager.stats()
    injected = sum(user.statistics()["injected_failures"] for user in chaos_users)

    # gate 1: every session terminated — retired or quarantined, none hung
    assert len(chaos_results) == SESSIONS
    assert stats["completed"] == SESSIONS
    for result in chaos_results.values():
        assert result.halted_by is not None or result.learned_query is not None

    # the chaos run must actually have exercised the machinery
    assert injected > 0, "5% fault rate fired no faults — injector misconfigured"
    assert stats["step_retries"] > 0

    # gate 2: per-session throughput floor under chaos
    ratio = base_seconds / chaos_seconds if chaos_seconds > 0 else 1.0
    summary = {
        "sessions": SESSIONS,
        "fault_rate": FAULT_RATE,
        "fault_free_seconds": round(base_seconds, 4),
        "chaos_seconds": round(chaos_seconds, 4),
        "throughput_ratio": round(ratio, 4),
        "injected_failures": injected,
        "step_retries": stats["step_retries"],
        "quarantined": stats["quarantined"],
        "deadline_overruns": stats["deadline_overruns"],
    }
    write_artifact(
        results_dir, "reliability_chaos.json", json.dumps(summary, indent=2, sort_keys=True)
    )
    assert ratio >= THROUGHPUT_FLOOR, (
        f"chaos fleet ran at {ratio:.2f}x the fault-free throughput "
        f"(floor {THROUGHPUT_FLOOR}x): {summary}"
    )


# ----------------------------------------------------------------------
# gate 3: with faults disabled the machinery is invisible
# ----------------------------------------------------------------------
def test_disabled_faults_replay_bit_identically():
    plain, _, _, _ = run_fleet(16, rate=0.0)  # the pre-reliability shape
    unsupervised, _, _, _ = run_fleet(16, rate=0.0, supervised=False)
    supervised, manager, _, _ = run_fleet(16, rate=0.0, supervised=True)
    assert fleet_traces(unsupervised) == fleet_traces(plain)
    assert fleet_traces(supervised) == fleet_traces(plain), (
        "supervision with no faults must not perturb session traces"
    )
    assert manager.stats()["quarantined"] == 0
    assert manager.stats()["step_retries"] == 0


def test_chaos_fleet_replays_bit_identically():
    first, _, _, _ = run_fleet(16, rate=FAULT_RATE)
    second, _, _, _ = run_fleet(16, rate=FAULT_RATE)
    assert fleet_traces(first) == fleet_traces(second), (
        "same fault seed, same fleet — chaos runs must replay bit-identically"
    )


# ----------------------------------------------------------------------
# gate 4: campaign resume after a mid-run crash loses zero rows
# ----------------------------------------------------------------------
def _campaign(store):
    return ExperimentRunner(
        suite="quick",
        experiments=["e1"],
        datasets=["figure-1"],
        seed=7,
        store=store,
    )


def test_runner_resumes_after_crash_losing_zero_rows(tmp_path):
    baseline_store = ResultStore(tmp_path / "baseline")
    baseline = _campaign(baseline_store).run()
    total = len(baseline.units)
    assert total >= 2, "need at least two units to simulate a mid-campaign crash"

    # replay the campaign into a second store, then crash it mid-run:
    # keep the first half of rows.jsonl plus a line truncated mid-write
    crashed_store = ResultStore(tmp_path / "crashed")
    _campaign(crashed_store).run()
    rows = crashed_store.rows_path.read_text().splitlines()
    kept = rows[: total // 2]
    crashed_store.rows_path.write_text(
        "\n".join(kept) + "\n" + rows[total // 2][: len(rows[total // 2]) // 2]
    )

    resumed = _campaign(crashed_store).run(resume=True)
    assert len(resumed.resumed_unit_ids) == len(kept), "completed rows were lost"
    assert len(resumed.executed_unit_ids) == total - len(kept)
    assert set(resumed.records) == {unit.unit_id for unit in resumed.units}
    for unit_id, record in baseline.records.items():
        assert strip_timing(record["rows"]) == strip_timing(
            resumed.records[unit_id]["rows"]
        ), f"unit {unit_id} diverged across the crash/resume boundary"


# ----------------------------------------------------------------------
# pytest-benchmark timings (recorded in BENCH_reliability.json)
# ----------------------------------------------------------------------
def test_fleet_16_under_chaos(benchmark):
    def run():
        results, _, _, _ = run_fleet(16, rate=FAULT_RATE)
        assert len(results) == 16

    benchmark.pedantic(run, rounds=3)


def test_fleet_16_fault_free(benchmark):
    def run():
        results, _, _, _ = run_fleet(16, rate=0.0)
        assert len(results) == 16

    benchmark.pedantic(run, rounds=3)
