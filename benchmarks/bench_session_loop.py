"""End-to-end benchmark of the incremental interactive-loop core.

Runs the full Figure 2 loop (strategy proposal, neighbourhood zooms,
path validation, propagation, learning, halt check) on the
``scale-free-medium`` dataset twice:

* the **pre-index path** — the seed implementations reproduced verbatim
  below: per-node ``words_from`` enumeration and tuple-set unions for
  every classification, covered-word computation and path selection, and
  the per-negative ``engine.selects`` compatibility predicate for every
  RPNI merge attempt;
* the **current path** — :class:`InteractiveSession`, whose loop runs on
  the shared :class:`~repro.learning.language_index.LanguageIndex`
  bitsets, the incremental
  :class:`~repro.learning.informativeness.SessionClassifier` and the
  :class:`~repro.learning.language_index.CompatibilityOracle`.

Acceptance targets of the language-index PR, asserted here:

* both paths perform the **identical** interaction sequence and learn
  the same query (the index is an optimisation, not a semantics change);
* end-to-end interaction latency improves by **>= 5x**;
* across a full session replay, the incremental classifier is
  **bit-identical** to the from-scratch classification after every
  single example.
"""

import time

from repro.automata.prefix_tree import build_path_prefix_tree
from repro.exceptions import InconsistentExamplesError, NoConsistentPathError
from repro.graph.datasets import dataset_catalog
from repro.graph.neighborhood import eccentricity_bound, extract_neighborhood
from repro.graph.paths import words_from
from repro.interactive.oracle import SimulatedUser
from repro.interactive.session import InteractiveSession
from repro.interactive.halt import AnyOf, HaltContext, MaxInteractions, UserSatisfied
from repro.learning.examples import ExampleSet
from repro.learning.informativeness import NodeStatus, SessionClassifier
from repro.learning.learner import PathQueryLearner
from repro.learning.path_selection import _endpoints_of
from repro.query.engine import QueryEngine

from conftest import write_artifact

DATASET = "scale-free-medium"
GOAL = "a* . b . c*"
MAX_PATH_LENGTH = 5
MAX_INTERACTIONS = 40
TRIALS = 3

#: acceptance floor for the end-to-end interaction-latency improvement
SPEEDUP_FLOOR = 5.0


# ----------------------------------------------------------------------
# The seed (pre-index) implementations, reproduced verbatim
# ----------------------------------------------------------------------
def _seed_covered_words(graph, negatives, max_length):
    """Pre-index `covered_words`: tuple-set union, silent skip included."""
    covered = set()
    for node in negatives:
        if node in graph:
            covered |= words_from(graph, node, max_length)
    return covered


def _seed_classify_all(graph, examples, max_length):
    """Pre-index `classify_all`: per-node word enumeration per call."""
    banned = _seed_covered_words(graph, examples.negative_nodes, max_length)
    validated = set(examples.validated_words().values())
    labeled_nodes = examples.labeled_nodes
    statuses = {}
    for node in graph.nodes():
        labeled = node in labeled_nodes
        own_words = words_from(graph, node, max_length)
        uncovered = [word for word in own_words if word not in banned]
        implied_positive = not labeled and any(word in validated for word in own_words)
        implied_negative = not labeled and not implied_positive and not uncovered
        shortest = min((len(word) for word in uncovered), default=None)
        statuses[node] = NodeStatus(
            node=node,
            labeled=labeled,
            implied_positive=implied_positive,
            implied_negative=implied_negative,
            uncovered_word_count=len(uncovered),
            shortest_uncovered_length=shortest,
        )
    return statuses


def _seed_informative(graph, examples, max_length):
    statuses = _seed_classify_all(graph, examples, max_length)
    ranked = [status for status in statuses.values() if status.informative]
    ranked.sort(key=lambda status: (status.score, str(status.node)), reverse=False)
    ranked.sort(key=lambda status: status.score, reverse=True)
    return [status.node for status in ranked]


def _seed_propagate_to_fixpoint(graph, examples, max_length, max_rounds=10):
    for _ in range(max_rounds):
        statuses = _seed_classify_all(graph, examples, max_length)
        added = 0
        for node, status in statuses.items():
            if status.labeled:
                continue
            if status.implied_positive:
                examples.add_positive(node, propagated=True)
                added += 1
            elif status.implied_negative:
                examples.add_negative(node, propagated=True)
                added += 1
        if not added:
            break


def _seed_consistent_words_for(graph, node, negatives, max_length):
    negative_nodes = [item for item in negatives if item in graph]
    banned = _seed_covered_words(graph, negative_nodes, max_length)
    own_words = words_from(graph, node, max_length)
    candidates = sorted(
        (word for word in own_words if word not in banned),
        key=lambda word: (len(word), word),
    )
    if not candidates and not negative_nodes:
        candidates = [()]
    return candidates


def _seed_select_path(graph, node, negatives, max_length, preferred_length=None):
    candidates = _seed_consistent_words_for(graph, node, negatives, max_length)
    if not candidates:
        raise NoConsistentPathError(node, max_length)
    if preferred_length is not None:
        preferred = [word for word in candidates if len(word) == preferred_length]
        if preferred:
            return preferred[0]
    return candidates[0]


def _seed_candidate_prefix_tree(graph, node, negatives, max_length, preferred_length=None):
    uncovered = _seed_consistent_words_for(graph, node, negatives, max_length)
    endpoints = {}
    for word in uncovered:
        for cut in range(1, len(word) + 1):
            prefix = word[:cut]
            if prefix not in endpoints:
                endpoints[prefix] = _endpoints_of(graph, node, prefix)
    highlight = None
    if uncovered:
        if preferred_length is not None:
            preferred = [word for word in uncovered if len(word) == preferred_length]
            highlight = preferred[0] if preferred else uncovered[0]
        else:
            highlight = uncovered[0]
    return build_path_prefix_tree(endpoints, node, highlight=highlight)


class _SeedLearner(PathQueryLearner):
    """The learner with the pre-index step (i) and compatibility predicate."""

    def __init__(self, graph, *, max_path_length, engine):
        super().__init__(
            graph, max_path_length=max_path_length, engine=engine, compatibility="engine"
        )

    def select_sample_words(self, examples):
        chosen = {}
        negatives = examples.negative_nodes
        for node in sorted(examples.positive_nodes, key=str):
            validated = examples.validated_word(node)
            if validated is not None:
                chosen[node] = validated
                continue
            try:
                chosen[node] = _seed_select_path(
                    self.graph, node, negatives, self.max_path_length
                )
            except NoConsistentPathError as error:
                raise InconsistentExamplesError(
                    f"positive node {node!r} has no uncovered path", conflicting=[node]
                ) from error
        return chosen


def _run_legacy_session(graph, goal, *, engine=None):
    """The Figure 2 loop wired through the seed implementations only."""
    engine = engine or QueryEngine()
    user = SimulatedUser(graph, goal, engine=engine)
    examples = ExampleSet()
    learner = _SeedLearner(graph, max_path_length=MAX_PATH_LENGTH, engine=engine)
    halt = AnyOf([UserSatisfied(user.goal_answer), MaxInteractions(MAX_INTERACTIONS)])
    hypothesis = None
    trace = []
    halted_by = "exhausted"
    initial_radius, max_radius = 2, 6

    while True:
        ranked = _seed_informative(graph, examples, MAX_PATH_LENGTH)
        if not ranked:
            halted_by = "no-informative-node"
            break
        context = HaltContext(
            graph=graph,
            examples=examples,
            hypothesis=hypothesis,
            interactions=len(trace),
            informative_remaining=len(ranked),
            engine=engine,
        )
        if halt.satisfied(context):
            halted_by = halt.name
            break
        node = ranked[0]

        # neighbourhood presentation (identical on both paths)
        radius_cap = min(max_radius, max(initial_radius, eccentricity_bound(graph, node)))
        radius = min(initial_radius, radius_cap)
        neighborhood = extract_neighborhood(graph, node, radius)
        while radius < radius_cap and user.wants_zoom(node, neighborhood):
            radius += 1
            neighborhood = extract_neighborhood(graph, node, radius)

        positive = user.label(node)
        validated_word = None
        if positive:
            for bound in (neighborhood.radius, MAX_PATH_LENGTH):
                tree = _seed_candidate_prefix_tree(
                    graph,
                    node,
                    examples.negative_nodes,
                    bound,
                    preferred_length=neighborhood.radius,
                )
                choice = user.validate_path(node, tree)
                if choice is not None:
                    validated_word = choice
                    break
                if bound >= MAX_PATH_LENGTH:
                    break
            examples.add_positive(node, validated_word=validated_word)
        else:
            examples.add_negative(node)

        _seed_propagate_to_fixpoint(graph, examples, MAX_PATH_LENGTH)
        try:
            hypothesis = learner.learn(examples).query
        except InconsistentExamplesError:
            pass
        trace.append((node, "+" if positive else "-"))
    return trace, hypothesis, halted_by


def _run_current_session(graph, goal, *, engine=None):
    engine = engine or QueryEngine()
    user = SimulatedUser(graph, goal, engine=engine)
    session = InteractiveSession(
        graph,
        user,
        halt_condition=AnyOf(
            [UserSatisfied(user.goal_answer), MaxInteractions(MAX_INTERACTIONS)]
        ),
        max_path_length=MAX_PATH_LENGTH,
        engine=engine,
    )
    result = session.run()
    return result.interaction_trace(), result.learned_query, result.halted_by


def _fresh_graph():
    # a fresh copy per run: no cached label index, no cached language
    # index, so every run pays its own full build costs
    return dataset_catalog()[DATASET].copy()


# ----------------------------------------------------------------------
# correctness gates
# ----------------------------------------------------------------------
def test_paths_perform_identical_sessions():
    legacy_trace, legacy_query, legacy_halt = _run_legacy_session(_fresh_graph(), GOAL)
    current_trace, current_query, current_halt = _run_current_session(_fresh_graph(), GOAL)
    assert legacy_trace == current_trace
    assert legacy_halt == current_halt
    assert (legacy_query is None) == (current_query is None)
    if legacy_query is not None:
        assert str(legacy_query) == str(current_query)
    assert len(current_trace) >= 5, "workload too small to measure the loop"


def test_incremental_classification_matches_scratch_across_replay():
    """Replay the session's full example history one example at a time.

    After *every* example the incremental classifier must be bit-identical
    (field-for-field, node-for-node) to the from-scratch classification of
    the same example set.
    """
    graph = _fresh_graph()
    user = SimulatedUser(graph, GOAL)
    session = InteractiveSession(
        graph,
        user,
        halt_condition=AnyOf(
            [UserSatisfied(user.goal_answer), MaxInteractions(MAX_INTERACTIONS)]
        ),
        max_path_length=MAX_PATH_LENGTH,
    )
    result = session.run()
    history = session.examples.history
    assert result.interactions >= 5 and len(history) >= result.interactions

    replay = ExampleSet()
    classifier = SessionClassifier(graph, replay, max_length=MAX_PATH_LENGTH)
    for example in history:
        if example.positive:
            replay.add_positive(
                example.node,
                validated_word=example.validated_word,
                propagated=example.propagated,
            )
        else:
            replay.add_negative(example.node, propagated=example.propagated)
        incremental = classifier.statuses()
        scratch = _seed_classify_all(graph, replay, MAX_PATH_LENGTH)
        assert incremental == scratch


# ----------------------------------------------------------------------
# the 5x gate
# ----------------------------------------------------------------------
def test_session_loop_speedup(results_dir):
    legacy_seconds = current_seconds = float("inf")
    legacy_outcome = current_outcome = None

    # best-of-N on both sides: a scheduler stall on a shared CI runner
    # inflates one trial, not the minimum
    for _ in range(TRIALS):
        graph = _fresh_graph()
        started = time.perf_counter()
        legacy_outcome = _run_legacy_session(graph, GOAL)
        legacy_seconds = min(legacy_seconds, time.perf_counter() - started)
    for _ in range(TRIALS):
        graph = _fresh_graph()
        started = time.perf_counter()
        current_outcome = _run_current_session(graph, GOAL)
        current_seconds = min(current_seconds, time.perf_counter() - started)

    assert legacy_outcome[0] == current_outcome[0]
    interactions = len(current_outcome[0])
    speedup = legacy_seconds / current_seconds
    write_artifact(
        results_dir,
        "session_loop_speedup.txt",
        f"dataset={DATASET} goal={GOAL!r} interactions={interactions} "
        f"legacy={legacy_seconds * 1000:.1f}ms current={current_seconds * 1000:.1f}ms "
        f"per_interaction_legacy={legacy_seconds / interactions * 1000:.2f}ms "
        f"per_interaction_current={current_seconds / interactions * 1000:.2f}ms "
        f"speedup={speedup:.1f}x",
    )
    assert speedup >= SPEEDUP_FLOOR, f"session loop only {speedup:.1f}x faster than seed"


# ----------------------------------------------------------------------
# pytest-benchmark timings (recorded in BENCH_session.json)
# ----------------------------------------------------------------------
def test_session_loop_current(benchmark):
    def run():
        return _run_current_session(_fresh_graph(), GOAL)

    trace, _, _ = benchmark.pedantic(run, rounds=3)
    assert len(trace) >= 5


def test_session_loop_legacy_reference(benchmark):
    def run():
        return _run_legacy_session(_fresh_graph(), GOAL)

    trace, _, _ = benchmark.pedantic(run, rounds=1)
    assert len(trace) >= 5
