"""E5 — cost of the learner core (PTA construction + RPNI state merging).

Measures generalisation time and output size as the number of sample
words grows, plus the full two-step learner on the motivating example.
Expected shape: polynomial growth, with the learned automaton far smaller
than the PTA.
"""

from repro.automata.prefix_tree import build_pta
from repro.automata.state_merging import rpni
from repro.experiments.harness import run_e5_learner_cost
from repro.graph.datasets import motivating_example
from repro.learning.examples import ExampleSet
from repro.learning.learner import PathQueryLearner

from conftest import write_artifact

POSITIVES = [
    ("bus", "tram", "cinema"),
    ("cinema",),
    ("bus", "bus", "cinema"),
    ("tram", "cinema"),
    ("tram", "tram", "bus", "cinema"),
]
NEGATIVES = [(), ("bus",), ("tram",), ("bus", "tram"), ("cinema", "cinema"), ("restaurant",)]


def test_e5_full_table(benchmark, results_dir):
    table = benchmark.pedantic(
        run_e5_learner_cost, kwargs={"sample_sizes": (5, 10, 20, 40, 80)}, rounds=1, iterations=1
    )
    write_artifact(results_dir, "e5.txt", table.render())
    rows = list(table)
    assert all(row["all_positives_accepted"] and row["all_negatives_rejected"] for row in rows)
    # generalisation compresses the PTA substantially
    assert all(row["learned_states"] <= row["pta_states"] for row in rows)


def test_e5_pta_construction(benchmark):
    pta = benchmark(build_pta, POSITIVES)
    assert pta.accepts(("cinema",))


def test_e5_rpni_generalization(benchmark):
    learned = benchmark(rpni, POSITIVES, NEGATIVES)
    assert learned.accepts(("bus", "bus", "bus", "cinema"))
    assert not learned.accepts(("bus",))


def test_e5_two_step_learner_on_figure1(benchmark):
    graph = motivating_example()
    learner = PathQueryLearner(graph)
    examples = ExampleSet()
    examples.add_positive("N2", validated_word=("bus", "tram", "cinema"))
    examples.add_positive("N6", validated_word=("cinema",))
    examples.add_negative("N5")
    examples.add_negative("N3")
    outcome = benchmark(learner.learn, examples)
    assert outcome.consistent
