"""Nondeterministic finite automata with epsilon transitions.

The learning pipeline moves between three automaton representations:
regular expressions (user-facing), NFAs (Thompson construction, unions of
sample words) and DFAs (evaluation, minimisation, equivalence).  The NFA
here keeps transitions in a nested dictionary ``state -> symbol -> set of
states`` with ``None`` reserved for epsilon moves.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, Optional, Sequence, Set, Tuple

from repro.exceptions import InvalidStateError

State = Hashable
Symbol = Optional[str]  # None = epsilon
EPSILON: Symbol = None


class NFA:
    """A nondeterministic finite automaton over edge labels.

    States are arbitrary hashable values; fresh states created by library
    code are integers drawn from an internal counter.
    """

    def __init__(self):
        self._states: Set[State] = set()
        self._initial: Set[State] = set()
        self._accepting: Set[State] = set()
        self._transitions: Dict[State, Dict[Symbol, Set[State]]] = {}
        self._counter = itertools.count()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def new_state(self) -> State:
        """Create, register and return a fresh integer state."""
        while True:
            state = next(self._counter)
            if state not in self._states:
                self.add_state(state)
                return state

    def add_state(self, state: State) -> State:
        """Register ``state`` (idempotent) and return it."""
        if state not in self._states:
            self._states.add(state)
            self._transitions[state] = {}
        return state

    def set_initial(self, state: State) -> None:
        """Mark ``state`` as an initial state."""
        self._require(state)
        self._initial.add(state)

    def set_accepting(self, state: State, accepting: bool = True) -> None:
        """Mark or unmark ``state`` as accepting."""
        self._require(state)
        if accepting:
            self._accepting.add(state)
        else:
            self._accepting.discard(state)

    def add_transition(self, source: State, symbol: Symbol, target: State) -> None:
        """Add a transition (``symbol=None`` for an epsilon move)."""
        self._require(source)
        self._require(target)
        self._transitions[source].setdefault(symbol, set()).add(target)

    def _require(self, state: State) -> None:
        if state not in self._states:
            raise InvalidStateError(state)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def states(self) -> FrozenSet[State]:
        """All registered states."""
        return frozenset(self._states)

    @property
    def initial_states(self) -> FrozenSet[State]:
        """The set of initial states."""
        return frozenset(self._initial)

    @property
    def accepting_states(self) -> FrozenSet[State]:
        """The set of accepting states."""
        return frozenset(self._accepting)

    def is_accepting(self, state: State) -> bool:
        """True when ``state`` is accepting."""
        return state in self._accepting

    def alphabet(self) -> FrozenSet[str]:
        """Symbols used on non-epsilon transitions."""
        symbols: Set[str] = set()
        for moves in self._transitions.values():
            for symbol in moves:
                if symbol is not None:
                    symbols.add(symbol)
        return frozenset(symbols)

    def transitions(self) -> Iterator[Tuple[State, Symbol, State]]:
        """Iterate over all transitions as ``(source, symbol, target)``."""
        for source, moves in self._transitions.items():
            for symbol, targets in moves.items():
                for target in targets:
                    yield (source, symbol, target)

    def targets(self, state: State, symbol: Symbol) -> FrozenSet[State]:
        """States reachable from ``state`` via one ``symbol`` transition."""
        self._require(state)
        return frozenset(self._transitions[state].get(symbol, ()))

    def state_count(self) -> int:
        """Number of states."""
        return len(self._states)

    def transition_count(self) -> int:
        """Number of transitions."""
        return sum(len(targets) for moves in self._transitions.values() for targets in moves.values())

    def __repr__(self) -> str:
        return (
            f"<NFA {self.state_count()} states, {self.transition_count()} transitions, "
            f"{len(self._accepting)} accepting>"
        )

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------
    def epsilon_closure(self, states: Iterable[State]) -> FrozenSet[State]:
        """The epsilon closure of ``states``."""
        closure: Set[State] = set(states)
        stack = list(closure)
        while stack:
            state = stack.pop()
            for target in self._transitions.get(state, {}).get(EPSILON, ()):
                if target not in closure:
                    closure.add(target)
                    stack.append(target)
        return frozenset(closure)

    def step(self, states: Iterable[State], symbol: str) -> FrozenSet[State]:
        """One symbol step (epsilon closure applied afterwards)."""
        moved: Set[State] = set()
        for state in states:
            moved.update(self._transitions.get(state, {}).get(symbol, ()))
        return self.epsilon_closure(moved)

    def accepts(self, word: Sequence[str]) -> bool:
        """True when the automaton accepts ``word``."""
        current = self.epsilon_closure(self._initial)
        for symbol in word:
            current = self.step(current, symbol)
            if not current:
                return False
        return any(state in self._accepting for state in current)

    def reachable_states(self) -> FrozenSet[State]:
        """States reachable from the initial states (epsilon moves included)."""
        seen: Set[State] = set(self.epsilon_closure(self._initial))
        stack = list(seen)
        while stack:
            state = stack.pop()
            for targets in self._transitions.get(state, {}).values():
                for target in targets:
                    if target not in seen:
                        seen.add(target)
                        stack.append(target)
        return frozenset(seen)

    def copy(self) -> "NFA":
        """Return an independent copy."""
        clone = NFA()
        for state in self._states:
            clone.add_state(state)
        for state in self._initial:
            clone.set_initial(state)
        for state in self._accepting:
            clone.set_accepting(state)
        for source, symbol, target in self.transitions():
            clone.add_transition(source, symbol, target)
        return clone

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_word(cls, word: Sequence[str]) -> "NFA":
        """Automaton accepting exactly ``word``."""
        nfa = cls()
        previous = nfa.new_state()
        nfa.set_initial(previous)
        for symbol in word:
            state = nfa.new_state()
            nfa.add_transition(previous, symbol, state)
            previous = state
        nfa.set_accepting(previous)
        return nfa

    @classmethod
    def from_words(cls, words: Iterable[Sequence[str]]) -> "NFA":
        """Automaton accepting exactly the given finite set of words."""
        nfa = cls()
        start = nfa.new_state()
        nfa.set_initial(start)
        for word in words:
            previous = start
            for symbol in word:
                state = nfa.new_state()
                nfa.add_transition(previous, symbol, state)
                previous = state
            nfa.set_accepting(previous)
        return nfa
