"""Language equivalence and inclusion tests for DFAs.

Equivalence uses the Hopcroft–Karp union-find algorithm (near-linear);
inclusion is reduced to emptiness of a difference product.  A counter-
example word is available from both, which the experiment harness uses to
report *why* a learned query differs from the goal query.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Tuple

from repro.automata.dfa import DFA, Word, symbol_sort_key
from repro.automata.operations import difference_dfa


class _UnionFind:
    """Minimal union-find over automaton states (keyed by tagged pairs)."""

    def __init__(self):
        self._parent: Dict = {}

    def find(self, item):
        parent = self._parent.setdefault(item, item)
        if parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, first, second) -> bool:
        """Merge the two classes; return True when they were distinct."""
        first_root, second_root = self.find(first), self.find(second)
        if first_root == second_root:
            return False
        self._parent[first_root] = second_root
        return True


def equivalent(first: DFA, second: DFA) -> bool:
    """True when the two DFAs accept the same language."""
    return counterexample(first, second) is None


def counterexample(first: DFA, second: DFA) -> Optional[Word]:
    """A shortest word on which the two DFAs disagree, or ``None`` if equivalent.

    Implemented with the Hopcroft–Karp product exploration over the
    completed automata; the BFS order guarantees the returned word is of
    minimal length.
    """
    alphabet = sorted(first.alphabet() | second.alphabet(), key=symbol_sort_key)
    left = first.completed(alphabet)
    right = second.completed(alphabet)
    classes = _UnionFind()
    start = (("L", left.initial_state), ("R", right.initial_state))
    classes.union(*start)
    queue: deque = deque([(left.initial_state, right.initial_state, ())])
    while queue:
        left_state, right_state, word = queue.popleft()
        if left.is_accepting(left_state) != right.is_accepting(right_state):
            return word
        for symbol in alphabet:
            left_target = left.target(left_state, symbol)
            right_target = right.target(right_state, symbol)
            if left_target is None or right_target is None:
                # completed automata always have targets; guard anyway
                continue
            if classes.union(("L", left_target), ("R", right_target)):
                queue.append((left_target, right_target, word + (symbol,)))
    return None


def included(first: DFA, second: DFA) -> bool:
    """True when ``L(first) ⊆ L(second)``."""
    return difference_dfa(first, second).is_empty()


def inclusion_counterexample(first: DFA, second: DFA) -> Optional[Word]:
    """A word of ``L(first) \\ L(second)``, or ``None`` when included."""
    return difference_dfa(first, second).shortest_accepted_word()


def language_distance_sample(
    first: DFA, second: DFA, max_length: int
) -> Tuple[int, int]:
    """Count disagreement words up to ``max_length``: ``(only_first, only_second)``.

    A crude but interpretable distance used in experiment reports.
    """
    only_first = len(difference_dfa(first, second).accepted_words(max_length))
    only_second = len(difference_dfa(second, first).accepted_words(max_length))
    return only_first, only_second


def same_language_as_word_set(dfa: DFA, words, max_length: int) -> bool:
    """True when ``dfa`` accepts exactly ``words`` among words of length ≤ ``max_length``."""
    accepted = set(dfa.accepted_words(max_length))
    return accepted == {tuple(word) for word in words}
