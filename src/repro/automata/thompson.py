"""Thompson construction: regular expression AST → NFA.

Each AST node contributes a small NFA fragment with a single entry and a
single exit state; fragments are glued with epsilon transitions.  The
resulting automaton has a number of states linear in the size of the
expression.
"""

from __future__ import annotations

from typing import Tuple, Union

from repro.regex.ast import (
    Concat,
    Empty,
    Epsilon,
    Optional_,
    Plus,
    Regex,
    Star,
    Symbol,
    Union as RegexUnion,
)
from repro.regex.parser import parse
from repro.automata.nfa import EPSILON, NFA, State


def _build(nfa: NFA, expr: Regex) -> Tuple[State, State]:
    """Add the fragment for ``expr`` to ``nfa`` and return ``(entry, exit)``."""
    if isinstance(expr, Empty):
        entry, exit_ = nfa.new_state(), nfa.new_state()
        # no transition between entry and exit: the fragment accepts nothing
        return entry, exit_
    if isinstance(expr, Epsilon):
        entry, exit_ = nfa.new_state(), nfa.new_state()
        nfa.add_transition(entry, EPSILON, exit_)
        return entry, exit_
    if isinstance(expr, Symbol):
        entry, exit_ = nfa.new_state(), nfa.new_state()
        nfa.add_transition(entry, expr.label, exit_)
        return entry, exit_
    if isinstance(expr, Concat):
        left_entry, left_exit = _build(nfa, expr.left)
        right_entry, right_exit = _build(nfa, expr.right)
        nfa.add_transition(left_exit, EPSILON, right_entry)
        return left_entry, right_exit
    if isinstance(expr, RegexUnion):
        entry, exit_ = nfa.new_state(), nfa.new_state()
        left_entry, left_exit = _build(nfa, expr.left)
        right_entry, right_exit = _build(nfa, expr.right)
        nfa.add_transition(entry, EPSILON, left_entry)
        nfa.add_transition(entry, EPSILON, right_entry)
        nfa.add_transition(left_exit, EPSILON, exit_)
        nfa.add_transition(right_exit, EPSILON, exit_)
        return entry, exit_
    if isinstance(expr, Star):
        entry, exit_ = nfa.new_state(), nfa.new_state()
        inner_entry, inner_exit = _build(nfa, expr.inner)
        nfa.add_transition(entry, EPSILON, inner_entry)
        nfa.add_transition(entry, EPSILON, exit_)
        nfa.add_transition(inner_exit, EPSILON, inner_entry)
        nfa.add_transition(inner_exit, EPSILON, exit_)
        return entry, exit_
    if isinstance(expr, Plus):
        # e+ == e . e*
        entry, exit_ = nfa.new_state(), nfa.new_state()
        inner_entry, inner_exit = _build(nfa, expr.inner)
        nfa.add_transition(entry, EPSILON, inner_entry)
        nfa.add_transition(inner_exit, EPSILON, inner_entry)
        nfa.add_transition(inner_exit, EPSILON, exit_)
        return entry, exit_
    if isinstance(expr, Optional_):
        entry, exit_ = nfa.new_state(), nfa.new_state()
        inner_entry, inner_exit = _build(nfa, expr.inner)
        nfa.add_transition(entry, EPSILON, inner_entry)
        nfa.add_transition(entry, EPSILON, exit_)
        nfa.add_transition(inner_exit, EPSILON, exit_)
        return entry, exit_
    raise TypeError(f"unknown regex node: {type(expr).__name__}")


def regex_to_nfa(expression: Union[str, Regex]) -> NFA:
    """Build an NFA accepting the language of ``expression``.

    ``expression`` may be a string (parsed with the library's parser) or
    an already-built AST.
    """
    expr = parse(expression)
    nfa = NFA()
    entry, exit_ = _build(nfa, expr)
    nfa.set_initial(entry)
    nfa.set_accepting(exit_)
    return nfa
