"""Canonical-form cache: memoised ``minimize`` + ``dfa_to_regex``.

The interactive loop re-learns after every user answer, and most answers
leave the hypothesis unchanged: the learner re-derives the same DFA and
— before this cache — re-minimised it and re-synthesised the same regular
expression every interaction.  The query engine already fingerprints
compiled plans; this module applies the same idea one layer down, at the
automaton presentation layer.

:func:`canonical_form` maps a DFA to its ``(minimal DFA, expression)``
pair through a bounded LRU cache keyed by :func:`structural_fingerprint`
— a stable digest of the BFS-relabelled automaton, so two structurally
isomorphic DFAs (however their states are named) share one entry.  The
cached minimal DFA and expression are shared between callers and must be
treated as immutable (every current consumer — :class:`PathQuery
<repro.query.rpq.PathQuery>`, the learner, the engine's plan compiler —
already does).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, Tuple

from repro.automata.dfa import DFA, symbol_sort_key
from repro.automata.minimize import minimize
from repro.automata.regex_synthesis import dfa_to_regex
from repro.regex.ast import Regex

__all__ = [
    "structural_fingerprint",
    "canonical_form",
    "CanonicalFormCache",
    "shared_canonical_cache",
]


def structural_fingerprint(dfa: DFA) -> str:
    """Stable digest of ``dfa`` up to state renaming and unreachable junk.

    The automaton is relabelled to canonical BFS integer states (which
    also drops unreachable states — they cannot influence the minimal
    form) and hashed over its transition table, accepting set and
    declared alphabet.  Isomorphic DFAs produce identical fingerprints;
    the converse holds because the BFS relabelling is a canonical form.
    """
    canonical = dfa.relabeled()
    payload = repr(
        (
            canonical.state_count(),
            sorted(
                canonical.transitions(),
                key=lambda arc: (arc[0], symbol_sort_key(arc[1]), arc[2]),
            ),
            sorted(canonical.accepting_states),
            sorted(canonical.alphabet(), key=symbol_sort_key),
        )
    ).encode()
    return hashlib.sha1(payload).hexdigest()


class CanonicalFormCache:
    """Bounded LRU cache of ``fingerprint -> (minimal DFA, expression)``."""

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self._max_entries = max_entries
        self._entries: "OrderedDict[str, Tuple[DFA, Regex]]" = OrderedDict()
        self._hits = 0
        self._misses = 0

    def canonical_form(self, dfa: DFA) -> Tuple[DFA, Regex]:
        """The ``(minimal DFA, synthesised expression)`` pair of ``dfa``.

        The expression is synthesised from the *minimal* automaton (the
        smallest input state elimination can start from), and both parts
        are memoised per structural fingerprint.
        """
        fingerprint = structural_fingerprint(dfa)
        entry = self._entries.get(fingerprint)
        if entry is not None:
            self._hits += 1
            self._entries.move_to_end(fingerprint)
            return entry
        self._misses += 1
        minimal = minimize(dfa)
        expression = dfa_to_regex(minimal)
        if len(self._entries) >= self._max_entries:
            self._entries.popitem(last=False)
        self._entries[fingerprint] = (minimal, expression)
        return minimal, expression

    def stats(self) -> Dict[str, int]:
        """Cache counters (hits, misses, current size)."""
        return {"hits": self._hits, "misses": self._misses, "size": len(self._entries)}

    def clear(self) -> None:
        """Drop every cached entry (counters are kept)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


#: process-wide cache behind :func:`canonical_form`
_SHARED_CACHE: CanonicalFormCache = CanonicalFormCache()


def shared_canonical_cache() -> CanonicalFormCache:
    """The process-wide :class:`CanonicalFormCache`."""
    return _SHARED_CACHE


def canonical_form(dfa: DFA) -> Tuple[DFA, Regex]:
    """Memoised ``(minimize(dfa), dfa_to_regex(minimize(dfa)))``."""
    return _SHARED_CACHE.canonical_form(dfa)
