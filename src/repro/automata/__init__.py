"""Finite automata: NFA/DFA, constructions, minimisation, learning primitives."""

from repro.automata.nfa import EPSILON, NFA
from repro.automata.dfa import DFA, SINK
from repro.automata.thompson import regex_to_nfa
from repro.automata.determinize import nfa_to_dfa, regex_to_dfa
from repro.automata.minimize import is_minimal, minimize
from repro.automata.operations import (
    concat_nfa,
    dfa_to_nfa,
    difference_dfa,
    intersect_dfa,
    intersects,
    symmetric_difference_dfa,
    union_dfa,
    union_nfa,
)
from repro.automata.equivalence import (
    counterexample,
    equivalent,
    included,
    inclusion_counterexample,
)
from repro.automata.prefix_tree import (
    PathPrefixTree,
    PathTreeNode,
    PrefixTreeAcceptor,
    build_path_prefix_tree,
    build_pta,
)
from repro.automata.state_merging import generalize_pta, rpni
from repro.automata.regex_synthesis import dfa_to_regex, dfa_to_regex_string
from repro.automata.canonical import (
    CanonicalFormCache,
    canonical_form,
    shared_canonical_cache,
    structural_fingerprint,
)
from repro.automata import membership
from repro.automata import visualization

__all__ = [
    "EPSILON",
    "NFA",
    "DFA",
    "SINK",
    "regex_to_nfa",
    "nfa_to_dfa",
    "regex_to_dfa",
    "is_minimal",
    "minimize",
    "concat_nfa",
    "dfa_to_nfa",
    "difference_dfa",
    "intersect_dfa",
    "intersects",
    "symmetric_difference_dfa",
    "union_dfa",
    "union_nfa",
    "counterexample",
    "equivalent",
    "included",
    "inclusion_counterexample",
    "PathPrefixTree",
    "PathTreeNode",
    "PrefixTreeAcceptor",
    "build_path_prefix_tree",
    "build_pta",
    "generalize_pta",
    "rpni",
    "dfa_to_regex",
    "dfa_to_regex_string",
    "CanonicalFormCache",
    "canonical_form",
    "shared_canonical_cache",
    "structural_fingerprint",
    "membership",
    "visualization",
]
