"""Deterministic finite automata.

The DFA is the workhorse representation: query evaluation on the graph is
a BFS over the product of the graph with the query DFA, and equivalence /
minimisation are defined on DFAs.  Transitions are kept in a nested
dictionary ``state -> symbol -> state`` and may be *partial* — a missing
transition is a rejecting dead end (completion is available when an
algorithm needs a total function, e.g. complementation or Hopcroft
minimisation).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.exceptions import InvalidStateError

State = Hashable
Word = Tuple[str, ...]

#: Conventional name of the sink state added by :meth:`DFA.completed`.
SINK = "__sink__"


def symbol_sort_key(symbol) -> Tuple[str, str]:
    """Deterministic sort key for transition symbols of mixed types.

    Graph labels (and hence DFA symbols) are usually strings but may be
    any hashable value; comparing e.g. ``1`` with ``"a"`` raises
    ``TypeError``, so every canonical ordering of symbols goes through
    this key.  The type name breaks ties between values with equal
    ``str()`` renderings (``1`` vs ``"1"``).
    """
    return (str(symbol), type(symbol).__name__)


def word_sort_key(word: Sequence) -> Tuple[Tuple[str, str], ...]:
    """Deterministic sort key for words whose symbols may mix types."""
    return tuple(symbol_sort_key(symbol) for symbol in word)


class DFA:
    """A (possibly partial) deterministic finite automaton."""

    def __init__(self, initial: State = 0):
        self._states: Set[State] = {initial}
        self._initial: State = initial
        self._accepting: Set[State] = set()
        self._transitions: Dict[State, Dict[str, State]] = {initial: {}}
        self._alphabet: Set[str] = set()
        self._version = 0

    @property
    def version(self) -> int:
        """Monotone counter bumped by every mutation.

        Lets derived caches (e.g. compiled query plans in
        :mod:`repro.query.engine`) detect that an automaton object has
        changed since they were built.
        """
        return self._version

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_state(self, state: State) -> State:
        """Register ``state`` (idempotent) and return it."""
        if state not in self._states:
            self._states.add(state)
            self._transitions[state] = {}
            self._version += 1
        return state

    def set_initial(self, state: State) -> None:
        """Change the initial state (must already be registered)."""
        self._require(state)
        self._initial = state
        self._version += 1

    def set_accepting(self, state: State, accepting: bool = True) -> None:
        """Mark or unmark ``state`` as accepting."""
        self._require(state)
        if accepting:
            self._accepting.add(state)
        else:
            self._accepting.discard(state)
        self._version += 1

    def add_transition(self, source: State, symbol: str, target: State) -> None:
        """Add the transition ``source -symbol-> target`` (overwrites any previous one)."""
        if symbol is None:
            raise ValueError("DFA transitions cannot be epsilon")
        self._require(source)
        self._require(target)
        self._transitions[source][symbol] = target
        self._alphabet.add(symbol)
        self._version += 1

    def declare_alphabet(self, symbols: Iterable[str]) -> None:
        """Extend the declared alphabet (affects completion and complement)."""
        self._alphabet.update(symbols)
        self._version += 1

    def _require(self, state: State) -> None:
        if state not in self._states:
            raise InvalidStateError(state)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def initial_state(self) -> State:
        """The initial state."""
        return self._initial

    @property
    def states(self) -> FrozenSet[State]:
        """All registered states."""
        return frozenset(self._states)

    @property
    def accepting_states(self) -> FrozenSet[State]:
        """The accepting states."""
        return frozenset(self._accepting)

    def is_accepting(self, state: State) -> bool:
        """True when ``state`` is accepting."""
        return state in self._accepting

    def alphabet(self) -> FrozenSet[str]:
        """The declared alphabet (symbols seen on transitions plus declared extras)."""
        return frozenset(self._alphabet)

    def transitions(self) -> Iterator[Tuple[State, str, State]]:
        """Iterate over transitions as ``(source, symbol, target)``."""
        for source, moves in self._transitions.items():
            for symbol, target in moves.items():
                yield (source, symbol, target)

    def target(self, state: State, symbol: str) -> Optional[State]:
        """The successor of ``state`` on ``symbol`` or ``None`` when undefined."""
        self._require(state)
        return self._transitions[state].get(symbol)

    def outgoing(self, state: State) -> Dict[str, State]:
        """The outgoing transition map of ``state`` (copy)."""
        self._require(state)
        return dict(self._transitions[state])

    def state_count(self) -> int:
        """Number of states."""
        return len(self._states)

    def transition_count(self) -> int:
        """Number of transitions."""
        return sum(len(moves) for moves in self._transitions.values())

    def __repr__(self) -> str:
        return (
            f"<DFA {self.state_count()} states, {self.transition_count()} transitions, "
            f"{len(self._accepting)} accepting>"
        )

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------
    def run(self, word: Sequence[str]) -> Optional[State]:
        """Run the automaton on ``word``; return the final state or ``None`` on a dead end."""
        state = self._initial
        for symbol in word:
            state = self._transitions[state].get(symbol)
            if state is None:
                return None
        return state

    def accepts(self, word: Sequence[str]) -> bool:
        """True when ``word`` is in the language."""
        state = self.run(word)
        return state is not None and state in self._accepting

    def reachable_states(self) -> FrozenSet[State]:
        """States reachable from the initial state."""
        seen: Set[State] = {self._initial}
        stack = [self._initial]
        while stack:
            state = stack.pop()
            for target in self._transitions[state].values():
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        return frozenset(seen)

    def productive_states(self) -> FrozenSet[State]:
        """States from which an accepting state is reachable."""
        # reverse adjacency
        reverse: Dict[State, Set[State]] = {state: set() for state in self._states}
        for source, _, target in self.transitions():
            reverse[target].add(source)
        seen: Set[State] = set(self._accepting)
        stack = list(self._accepting)
        while stack:
            state = stack.pop()
            for source in reverse[state]:
                if source not in seen:
                    seen.add(source)
                    stack.append(source)
        return frozenset(seen)

    def is_empty(self) -> bool:
        """True when the language is empty."""
        return not (self.reachable_states() & self._accepting)

    def accepts_empty_word(self) -> bool:
        """True when the empty word is accepted."""
        return self._initial in self._accepting

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def trim(self) -> "DFA":
        """Return an equivalent DFA keeping only reachable states.

        (Productive-state trimming is not applied because partial DFAs may
        legitimately contain rejecting sinks that algorithms rely on.)
        """
        keep = self.reachable_states()
        trimmed = DFA(self._initial)
        for state in keep:
            trimmed.add_state(state)
        trimmed.set_initial(self._initial)
        for state in keep:
            if state in self._accepting:
                trimmed.set_accepting(state)
            for symbol, target in self._transitions[state].items():
                if target in keep:
                    trimmed.add_transition(state, symbol, target)
        trimmed.declare_alphabet(self._alphabet)
        return trimmed

    def completed(self, alphabet: Optional[Iterable[str]] = None) -> "DFA":
        """Return an equivalent *total* DFA over ``alphabet`` (default: declared alphabet).

        Missing transitions are redirected to a fresh non-accepting sink.
        """
        symbols = set(alphabet) if alphabet is not None else set(self._alphabet)
        symbols.update(self._alphabet)
        total = DFA(self._initial)
        for state in self._states:
            total.add_state(state)
        total.set_initial(self._initial)
        for state in self._accepting:
            total.set_accepting(state)
        needs_sink = False
        for state in self._states:
            for symbol in symbols:
                target = self._transitions[state].get(symbol)
                if target is None:
                    needs_sink = True
        if needs_sink:
            total.add_state(SINK)
        for state in self._states:
            for symbol in symbols:
                target = self._transitions[state].get(symbol, SINK if needs_sink else None)
                if target is not None:
                    total.add_transition(state, symbol, target)
        if needs_sink:
            for symbol in symbols:
                total.add_transition(SINK, symbol, SINK)
        total.declare_alphabet(symbols)
        return total

    def complement(self, alphabet: Optional[Iterable[str]] = None) -> "DFA":
        """Return a DFA for the complement language over ``alphabet``."""
        total = self.completed(alphabet)
        flipped = DFA(total.initial_state)
        for state in total.states:
            flipped.add_state(state)
        flipped.set_initial(total.initial_state)
        for state in total.states:
            if not total.is_accepting(state):
                flipped.set_accepting(state)
        for source, symbol, target in total.transitions():
            flipped.add_transition(source, symbol, target)
        flipped.declare_alphabet(total.alphabet())
        return flipped

    def relabeled(self) -> "DFA":
        """Return an isomorphic DFA whose states are ``0..n-1`` in BFS order.

        Useful to canonicalise minimal DFAs before comparing or hashing.
        """
        order: List[State] = []
        seen: Set[State] = {self._initial}
        queue: deque = deque([self._initial])
        while queue:
            state = queue.popleft()
            order.append(state)
            for symbol in sorted(self._transitions[state], key=symbol_sort_key):
                target = self._transitions[state][symbol]
                if target not in seen:
                    seen.add(target)
                    queue.append(target)
        mapping = {state: index for index, state in enumerate(order)}
        renamed = DFA(0)
        for index in range(len(order)):
            renamed.add_state(index)
        renamed.set_initial(mapping[self._initial])
        for state in order:
            if state in self._accepting:
                renamed.set_accepting(mapping[state])
            for symbol, target in self._transitions[state].items():
                if target in mapping:
                    renamed.add_transition(mapping[state], symbol, mapping[target])
        renamed.declare_alphabet(self._alphabet)
        return renamed

    def copy(self) -> "DFA":
        """Return an independent copy."""
        clone = DFA(self._initial)
        for state in self._states:
            clone.add_state(state)
        clone.set_initial(self._initial)
        for state in self._accepting:
            clone.set_accepting(state)
        for source, symbol, target in self.transitions():
            clone.add_transition(source, symbol, target)
        clone.declare_alphabet(self._alphabet)
        return clone

    # ------------------------------------------------------------------
    # language exploration
    # ------------------------------------------------------------------
    def accepted_words(self, max_length: int, *, limit: Optional[int] = None) -> List[Word]:
        """Enumerate accepted words of length ≤ ``max_length`` (shortest first)."""
        words: List[Word] = []
        queue: deque = deque([((), self._initial)])
        while queue:
            word, state = queue.popleft()
            if state in self._accepting:
                words.append(word)
                if limit is not None and len(words) >= limit:
                    return words
            if len(word) >= max_length:
                continue
            for symbol in sorted(self._transitions[state], key=symbol_sort_key):
                queue.append((word + (symbol,), self._transitions[state][symbol]))
        return words

    def shortest_accepted_word(self) -> Optional[Word]:
        """A shortest accepted word, or ``None`` when the language is empty."""
        seen: Set[State] = {self._initial}
        queue: deque = deque([((), self._initial)])
        while queue:
            word, state = queue.popleft()
            if state in self._accepting:
                return word
            for symbol in sorted(self._transitions[state], key=symbol_sort_key):
                target = self._transitions[state][symbol]
                if target not in seen:
                    seen.add(target)
                    queue.append((word + (symbol,), target))
        return None
