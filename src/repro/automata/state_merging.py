"""State-merging generalisation (RPNI-style) of a prefix-tree acceptor.

Step (ii) of the paper's learning algorithm: *"construct an automaton
recognizing precisely the paths found at the previous step and generalize
it by state merges while no negative example is covered."*

The generaliser starts from the PTA of the positive words and repeatedly
tries to merge a "blue" frontier state into a "red" consolidated state
(the evidence-driven order of RPNI).  A merge is kept only when the
resulting quotient automaton still satisfies a caller-provided
*compatibility* predicate; the paper's instantiation of that predicate is
"the hypothesis does not cover any negative node", i.e. it accepts no word
of any negative node's (bounded) path language.

Two public entry points:

* :func:`rpni` — classic RPNI against an explicit set of negative words;
* :func:`generalize_pta` — RPNI with an arbitrary compatibility callback
  (used by :mod:`repro.learning.learner` with graph-level negatives).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.automata.dfa import DFA
from repro.automata.prefix_tree import build_pta

Word = Tuple[str, ...]
Compatibility = Callable[[DFA], bool]


class _Partition:
    """Union-find over PTA states with deterministic representative choice.

    The representative of a block is its smallest member (PTA states are
    integers in BFS order), which keeps the merge order — and therefore
    the learned automaton — deterministic across runs.

    Every block additionally tracks an explicit member list, so folding
    (:func:`_merge_and_fold`), frontier computation and partition
    signatures iterate only over the blocks they touch instead of
    re-walking the whole union-find per step.
    """

    __slots__ = ("_parent", "_members")

    def __init__(self, states: Iterable[int]):
        self._parent: Dict[int, int] = {state: state for state in states}
        self._members: Dict[int, List[int]] = {state: [state] for state in self._parent}

    def find(self, state: int) -> int:
        root = state
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[state] != root:
            self._parent[state], state = root, self._parent[state]
        return root

    def union(self, first: int, second: int) -> int:
        """Merge the blocks of ``first`` and ``second``; return the representative."""
        first_root, second_root = self.find(first), self.find(second)
        if first_root == second_root:
            return first_root
        keep, drop = (first_root, second_root) if first_root < second_root else (second_root, first_root)
        self._parent[drop] = keep
        self._members[keep].extend(self._members.pop(drop))
        return keep

    def copy(self) -> "_Partition":
        clone = _Partition(())
        clone._parent = dict(self._parent)
        clone._members = {root: list(members) for root, members in self._members.items()}
        return clone

    def members(self, state: int) -> List[int]:
        """The member list of the block containing ``state`` (do not mutate)."""
        return self._members[self.find(state)]

    def roots(self) -> Iterable[int]:
        """The block representatives (one per block, unordered)."""
        return self._members.keys()

    def blocks(self) -> Dict[int, List[int]]:
        """Mapping representative -> sorted members."""
        return {root: sorted(members) for root, members in self._members.items()}


def _quotient(pta: DFA, partition: _Partition) -> DFA:
    """Build the quotient DFA of ``pta`` under ``partition``.

    Assumes the partition has already been folded to determinism.  The
    transition table is read block by block off the partition's member
    lists — the source root is the block root, so only targets need a
    ``find``.
    """
    transitions = pta._transitions
    find = partition.find
    quotient = DFA(find(pta.initial_state))
    for representative in partition.roots():
        quotient.add_state(representative)
    quotient.set_initial(find(pta.initial_state))
    quotient.declare_alphabet(pta.alphabet())
    for root, members in partition._members.items():
        for member in members:
            for symbol, target in transitions[member].items():
                quotient.add_transition(root, symbol, find(target))
    for state in pta.accepting_states:
        quotient.set_accepting(find(state))
    return quotient


def _merge_and_fold(pta: DFA, partition: _Partition, red: int, blue: int) -> Optional[_Partition]:
    """Merge ``blue`` into ``red`` and fold until deterministic.

    Returns the folded partition, or ``None`` when folding would have to
    merge a state with itself in an inconsistent way (cannot happen with
    plain determinism folding, so ``None`` is reserved for future
    extensions such as negative-state PTAs).
    """
    candidate = partition.copy()
    transitions = pta._transitions
    worklist: List[Tuple[int, int]] = [(red, blue)]
    while worklist:
        first, second = worklist.pop()
        first_root, second_root = candidate.find(first), candidate.find(second)
        if first_root == second_root:
            continue
        merged_root = candidate.union(first_root, second_root)
        # collect the outgoing transitions of every member of the merged
        # block (reading its member list directly; the folded closure is
        # the unique determinising congruence, so the member iteration
        # order cannot change the result)
        find = candidate.find
        outgoing: Dict[str, int] = {}
        for member in candidate.members(merged_root):
            for symbol, target in transitions[member].items():
                target_root = find(target)
                known = outgoing.get(symbol)
                if known is not None and find(known) != target_root:
                    worklist.append((known, target_root))
                else:
                    outgoing[symbol] = target_root
    return candidate


def generalize_pta(
    positive_words: Iterable[Sequence[str]],
    compatible: Compatibility,
    *,
    max_merges: Optional[int] = None,
) -> DFA:
    """Generalise the PTA of ``positive_words`` by state merging.

    ``compatible`` receives a candidate quotient DFA and must return True
    when the candidate is acceptable (e.g. covers no negative example).
    The PTA itself must be compatible — callers are expected to have
    chosen consistent positive words beforehand.

    Compatibility verdicts are memoised per *merge partition signature*
    (the canonical block decomposition of the candidate): two merge
    attempts that fold to the same partition denote the same quotient
    automaton, so the — potentially expensive — predicate runs once per
    distinct candidate within a generalisation run.

    ``max_merges`` optionally caps the number of accepted merges (used by
    ablation benchmarks to study partially generalised hypotheses).
    """
    words = [tuple(word) for word in positive_words]
    pta = build_pta(words)
    partition = _Partition(pta.states)
    red: List[int] = [pta.initial_state]
    merges_done = 0
    verdicts: Dict[Tuple[int, ...], bool] = {}
    state_count = pta.state_count()

    def partition_signature(candidate: _Partition) -> Tuple[int, ...]:
        # the root of every state, in state order: a canonical encoding of
        # the block decomposition (roots are the smallest block members;
        # PTA states are exactly 0..n-1, so an array scatter beats n finds)
        signature = [0] * state_count
        for root, members in candidate._members.items():
            for member in members:
                signature[member] = root
        return tuple(signature)

    transitions = pta._transitions

    def blue_states() -> List[int]:
        # the quotient's frontier, read straight off the PTA transitions
        # through the partition — only the members of red blocks are
        # visited (earlier revisions walked every PTA state per round, or
        # worse, built the whole quotient DFA per loop iteration)
        frontier: Set[int] = set()
        find = partition.find
        red_roots = {find(state) for state in red}
        for red_root in sorted(red_roots):
            for member in partition.members(red_root):
                for target in transitions[member].values():
                    target_root = find(target)
                    if target_root not in red_roots:
                        frontier.add(target_root)
        return sorted(frontier)

    while True:
        frontier = blue_states()
        if not frontier:
            break
        blue = frontier[0]
        merged = False
        if max_merges is None or merges_done < max_merges:
            for red_state in sorted({partition.find(state) for state in red}):
                candidate = _merge_and_fold(pta, partition, red_state, blue)
                if candidate is None:
                    continue
                signature = partition_signature(candidate)
                verdict = verdicts.get(signature)
                if verdict is None:
                    verdict = compatible(_quotient(pta, candidate))
                    verdicts[signature] = verdict
                if verdict:
                    partition = candidate
                    merges_done += 1
                    merged = True
                    break
        if not merged:
            red.append(blue)
    return _quotient(pta, partition).trim().relabeled()


def rpni(
    positive_words: Iterable[Sequence[str]],
    negative_words: Iterable[Sequence[str]],
    *,
    max_merges: Optional[int] = None,
) -> DFA:
    """Classic RPNI: generalise positives while rejecting every negative word.

    Raises :class:`ValueError` when the samples overlap (no consistent
    automaton exists).
    """
    positives = [tuple(word) for word in positive_words]
    negatives = {tuple(word) for word in negative_words}
    overlap = set(positives) & negatives
    if overlap:
        raise ValueError(f"samples are inconsistent; words in both sets: {sorted(overlap)}")

    def compatible(candidate: DFA) -> bool:
        return not any(candidate.accepts(word) for word in negatives)

    return generalize_pta(positives, compatible, max_merges=max_merges)
