"""Subset construction: NFA → DFA.

The produced DFA is *partial* (no explicit sink) and trimmed to reachable
subset-states.  States are renumbered ``0..n-1`` in BFS discovery order so
determinisation is deterministic and results are comparable across runs.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Union

from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.regex.ast import Regex


def nfa_to_dfa(nfa: NFA) -> DFA:
    """Determinise ``nfa`` via the subset construction."""
    alphabet = sorted(nfa.alphabet())
    start = nfa.epsilon_closure(nfa.initial_states)
    index_of: Dict[FrozenSet, int] = {start: 0}
    dfa = DFA(0)
    dfa.declare_alphabet(alphabet)
    if any(nfa.is_accepting(state) for state in start):
        dfa.set_accepting(0)
    queue: deque = deque([start])
    while queue:
        subset = queue.popleft()
        source_index = index_of[subset]
        for symbol in alphabet:
            target_subset = nfa.step(subset, symbol)
            if not target_subset:
                continue
            if target_subset not in index_of:
                index_of[target_subset] = len(index_of)
                dfa.add_state(index_of[target_subset])
                if any(nfa.is_accepting(state) for state in target_subset):
                    dfa.set_accepting(index_of[target_subset])
                queue.append(target_subset)
            dfa.add_transition(source_index, symbol, index_of[target_subset])
    return dfa


def regex_to_dfa(expression: Union[str, Regex]) -> DFA:
    """Convenience: parse / build the NFA and determinise in one call."""
    from repro.automata.thompson import regex_to_nfa

    return nfa_to_dfa(regex_to_nfa(expression))
