"""Prefix-tree acceptor (PTA) and the user-facing prefix tree of paths.

Two closely related structures live here:

* :class:`PrefixTreeAcceptor` — the automaton-theoretic PTA built from the
  positive sample words; it is the starting point of the state-merging
  generalisation (step (ii) of the learning algorithm).
* :class:`PathPrefixTree` — the prefix tree of the *paths of a node* shown
  to the user for validation (Figure 3(c)); it stores, per tree node, the
  word prefix and whether some graph path realises it, plus a highlighted
  candidate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.automata.dfa import DFA

Word = Tuple[str, ...]


class PrefixTreeAcceptor:
    """The prefix-tree acceptor of a finite set of words.

    States are the prefixes of the sample words (the empty prefix is the
    initial state); a state is accepting iff its prefix is a sample word.
    The PTA accepts exactly the sample.
    """

    def __init__(self, words: Iterable[Sequence[str]] = ()):
        self._children: Dict[Word, Dict[str, Word]] = {(): {}}
        self._accepting: set = set()
        for word in words:
            self.add_word(word)

    def add_word(self, word: Sequence[str]) -> None:
        """Insert ``word`` into the acceptor."""
        prefix: Word = ()
        for symbol in word:
            extended = prefix + (symbol,)
            self._children.setdefault(prefix, {})[symbol] = extended
            self._children.setdefault(extended, {})
            prefix = extended
        self._accepting.add(prefix)

    @property
    def states(self) -> List[Word]:
        """All prefixes, sorted by length then lexicographically (BFS order)."""
        return sorted(self._children, key=lambda prefix: (len(prefix), prefix))

    @property
    def accepting(self) -> frozenset:
        """The accepting prefixes (the sample words)."""
        return frozenset(self._accepting)

    def children(self, prefix: Word) -> Dict[str, Word]:
        """Outgoing transitions of a prefix state."""
        return dict(self._children.get(prefix, {}))

    def state_count(self) -> int:
        """Number of states (prefixes)."""
        return len(self._children)

    def accepts(self, word: Sequence[str]) -> bool:
        """True when ``word`` is one of the sample words."""
        return tuple(word) in self._accepting

    def to_dfa(self) -> DFA:
        """Convert to a :class:`~repro.automata.dfa.DFA` with integer states."""
        ordering = self.states
        index_of = {prefix: index for index, prefix in enumerate(ordering)}
        dfa = DFA(0)
        for index in range(len(ordering)):
            dfa.add_state(index)
        dfa.set_initial(index_of[()])
        for prefix in ordering:
            if prefix in self._accepting:
                dfa.set_accepting(index_of[prefix])
            for symbol, child in self._children[prefix].items():
                dfa.add_transition(index_of[prefix], symbol, index_of[child])
        return dfa


def build_pta(words: Iterable[Sequence[str]]) -> DFA:
    """Build the PTA of ``words`` directly as a DFA (convenience)."""
    return PrefixTreeAcceptor(words).to_dfa()


@dataclass
class PathTreeNode:
    """One node of the user-facing prefix tree of paths."""

    prefix: Word
    children: Dict[str, "PathTreeNode"] = field(default_factory=dict)
    #: graph nodes reachable from the root by spelling ``prefix``
    endpoints: Tuple = ()
    #: True when this prefix is proposed to the user as the candidate path
    highlighted: bool = False

    @property
    def depth(self) -> int:
        """Distance from the root (= length of the prefix)."""
        return len(self.prefix)

    def is_leaf(self) -> bool:
        """True when the node has no children."""
        return not self.children


class PathPrefixTree:
    """Prefix tree of the bounded-length paths of a graph node (Figure 3(c)).

    Built by :func:`build_path_prefix_tree`; rendered by
    :mod:`repro.interactive.visualization`; the user validates either the
    highlighted candidate or any other word present in the tree.
    """

    def __init__(self, origin, root: PathTreeNode):
        self.origin = origin
        self.root = root

    def words(self) -> List[Word]:
        """All non-empty words present in the tree (pre-order)."""
        collected: List[Word] = []

        def visit(node: PathTreeNode) -> None:
            for symbol in sorted(node.children):
                child = node.children[symbol]
                collected.append(child.prefix)
                visit(child)

        visit(self.root)
        return collected

    def leaves(self) -> List[Word]:
        """Words that are maximal in the tree (no extension present)."""
        collected: List[Word] = []

        def visit(node: PathTreeNode) -> None:
            if node.is_leaf() and node.prefix:
                collected.append(node.prefix)
            for symbol in sorted(node.children):
                visit(node.children[symbol])

        visit(self.root)
        return collected

    def contains(self, word: Sequence[str]) -> bool:
        """True when ``word`` labels a root-to-node path of the tree."""
        node = self.root
        for symbol in word:
            if symbol not in node.children:
                return False
            node = node.children[symbol]
        return True

    def highlighted_word(self) -> Optional[Word]:
        """The currently highlighted candidate word, if any."""
        result: List[Word] = []

        def visit(node: PathTreeNode) -> None:
            if node.highlighted and node.prefix:
                result.append(node.prefix)
            for child in node.children.values():
                visit(child)

        visit(self.root)
        return result[0] if result else None

    def highlight(self, word: Sequence[str]) -> bool:
        """Move the highlight to ``word``; returns False when absent from the tree."""
        if not self.contains(word):
            return False

        def clear(node: PathTreeNode) -> None:
            node.highlighted = False
            for child in node.children.values():
                clear(child)

        clear(self.root)
        node = self.root
        for symbol in word:
            node = node.children[symbol]
        node.highlighted = True
        return True

    def size(self) -> int:
        """Number of tree nodes (root included)."""
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children.values())
        return count


def build_path_prefix_tree(
    words_with_endpoints: Dict[Word, Tuple],
    origin,
    *,
    highlight: Optional[Word] = None,
) -> PathPrefixTree:
    """Build a :class:`PathPrefixTree` from a word -> endpoints mapping.

    ``words_with_endpoints`` maps each word (of the node's bounded path
    language) to the tuple of graph nodes reachable by spelling it from
    ``origin``.  Intermediate prefixes missing from the mapping are created
    with empty endpoint tuples.
    """
    root = PathTreeNode(prefix=())
    for word in sorted(words_with_endpoints):
        node = root
        for position, symbol in enumerate(word, start=1):
            prefix = word[:position]
            if symbol not in node.children:
                node.children[symbol] = PathTreeNode(prefix=prefix)
            node = node.children[symbol]
            if prefix in words_with_endpoints:
                node.endpoints = tuple(words_with_endpoints[prefix])
    tree = PathPrefixTree(origin, root)
    if highlight is not None:
        tree.highlight(highlight)
    return tree
