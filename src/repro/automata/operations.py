"""Boolean operations on automata: union, intersection, difference, product.

These are used by the learner (does the hypothesis accept a word of some
negative node's language?), by the consistency checker, and by the
instance-level query comparison in :mod:`repro.query.containment`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Tuple

from repro.automata.dfa import DFA, State
from repro.automata.nfa import EPSILON, NFA


def union_nfa(first: NFA, second: NFA) -> NFA:
    """NFA accepting the union of the two languages.

    States of the operands are tagged with 0 / 1 to avoid collisions.
    """
    result = NFA()
    start = result.new_state()
    result.set_initial(start)
    for tag, operand in ((0, first), (1, second)):
        for state in operand.states:
            result.add_state((tag, state))
        for state in operand.initial_states:
            result.add_transition(start, EPSILON, (tag, state))
        for state in operand.accepting_states:
            result.set_accepting((tag, state))
        for source, symbol, target in operand.transitions():
            result.add_transition((tag, source), symbol, (tag, target))
    return result


def concat_nfa(first: NFA, second: NFA) -> NFA:
    """NFA accepting the concatenation of the two languages."""
    result = NFA()
    for tag, operand in ((0, first), (1, second)):
        for state in operand.states:
            result.add_state((tag, state))
        for source, symbol, target in operand.transitions():
            result.add_transition((tag, source), symbol, (tag, target))
    for state in first.initial_states:
        result.set_initial((0, state))
    for accepting in first.accepting_states:
        for initial in second.initial_states:
            result.add_transition((0, accepting), EPSILON, (1, initial))
    for state in second.accepting_states:
        result.set_accepting((1, state))
    return result


def _product(first: DFA, second: DFA, accept: Callable[[bool, bool], bool]) -> DFA:
    """Generic product construction over completed operands."""
    alphabet = sorted(first.alphabet() | second.alphabet())
    left = first.completed(alphabet)
    right = second.completed(alphabet)
    start = (left.initial_state, right.initial_state)
    index_of: Dict[Tuple[State, State], int] = {start: 0}
    product = DFA(0)
    product.declare_alphabet(alphabet)
    if accept(left.is_accepting(start[0]), right.is_accepting(start[1])):
        product.set_accepting(0)
    queue: deque = deque([start])
    while queue:
        pair = queue.popleft()
        source_index = index_of[pair]
        for symbol in alphabet:
            left_target = left.target(pair[0], symbol)
            right_target = right.target(pair[1], symbol)
            if left_target is None or right_target is None:
                continue
            target_pair = (left_target, right_target)
            if target_pair not in index_of:
                index_of[target_pair] = len(index_of)
                product.add_state(index_of[target_pair])
                if accept(left.is_accepting(left_target), right.is_accepting(right_target)):
                    product.set_accepting(index_of[target_pair])
                queue.append(target_pair)
            product.add_transition(source_index, symbol, index_of[target_pair])
    return product


def intersect_dfa(first: DFA, second: DFA) -> DFA:
    """DFA for the intersection of the two languages."""
    return _product(first, second, lambda a, b: a and b)


def union_dfa(first: DFA, second: DFA) -> DFA:
    """DFA for the union of the two languages."""
    return _product(first, second, lambda a, b: a or b)


def difference_dfa(first: DFA, second: DFA) -> DFA:
    """DFA for ``L(first) \\ L(second)``."""
    return _product(first, second, lambda a, b: a and not b)


def symmetric_difference_dfa(first: DFA, second: DFA) -> DFA:
    """DFA for the symmetric difference of the two languages."""
    return _product(first, second, lambda a, b: a != b)


def intersects(first: DFA, second: DFA) -> bool:
    """True when the two languages share at least one word."""
    return not intersect_dfa(first, second).is_empty()


def dfa_to_nfa(dfa: DFA) -> NFA:
    """View a DFA as an NFA (used to feed DFAs into NFA-level combinators)."""
    nfa = NFA()
    for state in dfa.states:
        nfa.add_state(state)
    nfa.set_initial(dfa.initial_state)
    for state in dfa.accepting_states:
        nfa.set_accepting(state)
    for source, symbol, target in dfa.transitions():
        nfa.add_transition(source, symbol, target)
    return nfa
