"""DFA minimisation (Hopcroft's partition-refinement algorithm).

Minimisation is used to canonicalise learned queries (two hypotheses are
the same query iff their minimal DFAs are isomorphic) and to keep the
automata produced by repeated unions and products small.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.automata.dfa import DFA, State, symbol_sort_key


def minimize(dfa: DFA) -> DFA:
    """Return the minimal DFA equivalent to ``dfa``.

    The input is completed over its own alphabet, Hopcroft-refined, and
    the resulting automaton is trimmed (the sink class, if unreachable or
    non-accepting-only, disappears again) and relabelled canonically.
    """
    if dfa.is_empty():
        # canonical empty-language automaton: one non-accepting state
        empty = DFA(0)
        empty.declare_alphabet(dfa.alphabet())
        return empty
    total = dfa.trim().completed()
    alphabet = sorted(total.alphabet(), key=symbol_sort_key)
    states = list(total.states)
    accepting = set(total.accepting_states)
    rejecting = set(states) - accepting

    # initial partition
    partition: List[Set[State]] = [block for block in (accepting, rejecting) if block]
    worklist: List[Tuple[FrozenSet[State], str]] = [
        (frozenset(block), symbol) for block in partition for symbol in alphabet
    ]

    # reverse transition index: symbol -> target -> set of sources
    reverse: Dict[str, Dict[State, Set[State]]] = {symbol: {} for symbol in alphabet}
    for source, symbol, target in total.transitions():
        reverse[symbol].setdefault(target, set()).add(source)

    while worklist:
        splitter, symbol = worklist.pop()
        # states with a `symbol` transition into the splitter
        movers: Set[State] = set()
        for target in splitter:
            movers.update(reverse[symbol].get(target, ()))
        if not movers:
            continue
        next_partition: List[Set[State]] = []
        for block in partition:
            inside = block & movers
            outside = block - movers
            if inside and outside:
                next_partition.append(inside)
                next_partition.append(outside)
                smaller = inside if len(inside) <= len(outside) else outside
                for refinement_symbol in alphabet:
                    worklist.append((frozenset(smaller), refinement_symbol))
            else:
                next_partition.append(block)
        partition = next_partition

    # build the quotient automaton
    block_of: Dict[State, int] = {}
    for block_index, block in enumerate(partition):
        for state in block:
            block_of[state] = block_index

    quotient = DFA(block_of[total.initial_state])
    quotient.declare_alphabet(alphabet)
    for block_index in range(len(partition)):
        quotient.add_state(block_index)
    quotient.set_initial(block_of[total.initial_state])
    for block_index, block in enumerate(partition):
        representative = next(iter(block))
        if total.is_accepting(representative):
            quotient.set_accepting(block_index)
        for symbol in alphabet:
            target = total.target(representative, symbol)
            if target is not None:
                quotient.add_transition(block_index, symbol, block_of[target])

    # drop the dead (sink) class when it cannot accept, then relabel
    trimmed = _drop_dead_states(quotient)
    return trimmed.relabeled()


def _drop_dead_states(dfa: DFA) -> DFA:
    """Remove states from which no accepting state is reachable."""
    productive = dfa.productive_states()
    if dfa.initial_state not in productive:
        empty = DFA(0)
        empty.declare_alphabet(dfa.alphabet())
        return empty
    pruned = DFA(dfa.initial_state)
    pruned.declare_alphabet(dfa.alphabet())
    for state in productive:
        pruned.add_state(state)
    pruned.set_initial(dfa.initial_state)
    for state in productive:
        if dfa.is_accepting(state):
            pruned.set_accepting(state)
        for symbol, target in dfa.outgoing(state).items():
            if target in productive:
                pruned.add_transition(state, symbol, target)
    return pruned.trim()


def is_minimal(dfa: DFA) -> bool:
    """True when ``dfa`` already has the minimal number of states."""
    return minimize(dfa).state_count() == dfa.trim().state_count()
