"""DFA minimisation (Hopcroft's partition-refinement algorithm).

Minimisation is used to canonicalise learned queries (two hypotheses are
the same query iff their minimal DFAs are isomorphic) and to keep the
automata produced by repeated unions and products small.

The refinement runs on a dense integer encoding of the completed
automaton: blocks are member sets addressed through a ``state → block``
array, a splitter touches only the blocks containing predecessor states
(collected through a per-symbol preimage index), and each split schedules
the smaller half per symbol — the classic Hopcroft worklist discipline.
Earlier revisions rebuilt the whole partition list for every splitter and
pushed every alphabet symbol eagerly, which made refinement quadratic in
the partition size.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set

from repro.automata.dfa import DFA, State, symbol_sort_key


def minimize(dfa: DFA) -> DFA:
    """Return the minimal DFA equivalent to ``dfa``.

    The input is completed over its own alphabet, Hopcroft-refined, and
    the resulting automaton is trimmed (the sink class, if unreachable or
    non-accepting-only, disappears again) and relabelled canonically.
    """
    if dfa.is_empty():
        # canonical empty-language automaton: one non-accepting state
        empty = DFA(0)
        empty.declare_alphabet(dfa.alphabet())
        return empty
    total = dfa.trim().completed()
    alphabet = sorted(total.alphabet(), key=symbol_sort_key)
    states: List[State] = list(total.states)
    n = len(states)
    index_of: Dict[State, int] = {state: index for index, state in enumerate(states)}

    # preimage index: per symbol, target index -> list of source indices
    preimage: List[List[List[int]]] = [[[] for _ in range(n)] for _ in alphabet]
    symbol_index = {symbol: position for position, symbol in enumerate(alphabet)}
    for source, symbol, target in total.transitions():
        preimage[symbol_index[symbol]][index_of[target]].append(index_of[source])

    accepting = {index_of[state] for state in total.accepting_states}
    rejecting = set(range(n)) - accepting

    blocks: List[Set[int]] = []
    block_of = [0] * n
    for group in (accepting, rejecting):
        if group:
            block_id = len(blocks)
            for member in group:
                block_of[member] = block_id
            blocks.append(group)

    # worklist of (block id, symbol position); seeding the smaller initial
    # block per symbol suffices (splitting on a set refines exactly like
    # splitting on its complement within the current partition)
    worklist: deque = deque()
    scheduled: Set[int] = set()

    def schedule(block_id: int, symbol_position: int) -> None:
        key = block_id * len(alphabet) + symbol_position
        if key not in scheduled:
            scheduled.add(key)
            worklist.append((block_id, symbol_position))

    seed = min(range(len(blocks)), key=lambda block_id: len(blocks[block_id]))
    for position in range(len(alphabet)):
        schedule(seed, position)

    while worklist:
        splitter_id, position = worklist.popleft()
        scheduled.discard(splitter_id * len(alphabet) + position)
        pre = preimage[position]
        movers: List[int] = []
        for target in blocks[splitter_id]:
            movers.extend(pre[target])
        if not movers:
            continue
        # group the movers by their current block; only those blocks can split
        touched: Dict[int, List[int]] = {}
        for mover in movers:
            touched.setdefault(block_of[mover], []).append(mover)
        for block_id, inside in touched.items():
            block = blocks[block_id]
            if len(inside) == len(block):
                continue
            new_id = len(blocks)
            inside_set = set(inside)
            block -= inside_set
            blocks.append(inside_set)
            # iterate the mover list, not its set: every mover is unique
            # (one transition per symbol) and list order is deterministic
            for member in inside:
                block_of[member] = new_id
            smaller_id = new_id if len(inside_set) <= len(block) else block_id
            for refinement_position in range(len(alphabet)):
                if block_id * len(alphabet) + refinement_position in scheduled:
                    # both halves of an already-pending splitter stay pending
                    schedule(new_id, refinement_position)
                else:
                    schedule(smaller_id, refinement_position)

    # build the quotient automaton
    quotient = DFA(block_of[index_of[total.initial_state]])
    quotient.declare_alphabet(alphabet)
    for block_id in range(len(blocks)):
        quotient.add_state(block_id)
    quotient.set_initial(block_of[index_of[total.initial_state]])
    for block_id, block in enumerate(blocks):
        representative = states[next(iter(block))]
        if total.is_accepting(representative):
            quotient.set_accepting(block_id)
        for symbol in alphabet:
            target = total.target(representative, symbol)
            if target is not None:
                quotient.add_transition(block_id, symbol, block_of[index_of[target]])

    # drop the dead (sink) class when it cannot accept, then relabel
    trimmed = _drop_dead_states(quotient)
    return trimmed.relabeled()


def _drop_dead_states(dfa: DFA) -> DFA:
    """Remove states from which no accepting state is reachable."""
    productive = dfa.productive_states()
    if dfa.initial_state not in productive:
        empty = DFA(0)
        empty.declare_alphabet(dfa.alphabet())
        return empty
    pruned = DFA(dfa.initial_state)
    pruned.declare_alphabet(dfa.alphabet())
    for state in productive:
        pruned.add_state(state)
    pruned.set_initial(dfa.initial_state)
    for state in productive:
        if dfa.is_accepting(state):
            pruned.set_accepting(state)
        for symbol, target in dfa.outgoing(state).items():
            if target in productive:
                pruned.add_transition(state, symbol, target)
    return pruned.trim()


def is_minimal(dfa: DFA) -> bool:
    """True when ``dfa`` already has the minimal number of states."""
    return minimize(dfa).state_count() == dfa.trim().state_count()
