"""Automaton → regular expression synthesis (state elimination).

The interactive system presents the learned query back to the user as a
regular expression in the paper's syntax (``(tram + bus)* . cinema``), so
the DFA produced by the state-merging generaliser has to be converted back
to an expression.  We use the classic state-elimination (Brzozowski &
McCluskey) construction over a generalised NFA whose transition labels are
regular expressions, eliminating low-connectivity states first to keep the
output small, followed by the smart constructors of
:mod:`repro.regex.ast` for local simplification.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.automata.dfa import DFA
from repro.regex.ast import EMPTY, EPSILON, Regex, Symbol

State = Hashable
_INITIAL = "__init__"
_FINAL = "__final__"


def _edge_union(table: Dict[Tuple[State, State], Regex], source: State, target: State, expr: Regex) -> None:
    key = (source, target)
    existing = table.get(key, EMPTY)
    table[key] = existing.union(expr)


def dfa_to_regex(dfa: DFA, *, simplify_output: bool = True) -> Regex:
    """Return a regular expression for the language of ``dfa``.

    The empty language yields the :data:`~repro.regex.ast.EMPTY` constant.
    The state-elimination output is post-processed by
    :func:`repro.regex.simplify.simplify` unless ``simplify_output`` is
    False (the raw form is occasionally useful in tests).
    """
    trimmed = dfa.trim()
    if trimmed.is_empty():
        return EMPTY

    # Generalised NFA: expression-labelled edges plus fresh initial / final.
    table: Dict[Tuple[State, State], Regex] = {}
    states: List[State] = sorted(trimmed.states, key=str)
    _edge_union(table, _INITIAL, trimmed.initial_state, EPSILON)
    for state in trimmed.accepting_states:
        _edge_union(table, state, _FINAL, EPSILON)
    for source, symbol, target in trimmed.transitions():
        _edge_union(table, source, target, Symbol(symbol))

    def degree(state: State) -> int:
        return sum(1 for (source, target) in table if source == state or target == state)

    # Eliminate internal states, lowest-connectivity first (smaller output).
    remaining = list(states)
    while remaining:
        remaining.sort(key=lambda state: (degree(state), str(state)))
        victim = remaining.pop(0)
        incoming = [
            (source, expr)
            for (source, target), expr in table.items()
            if target == victim and source != victim
        ]
        outgoing = [
            (target, expr)
            for (source, target), expr in table.items()
            if source == victim and target != victim
        ]
        loop = table.get((victim, victim), EMPTY)
        loop_star = loop.star() if not isinstance(loop, type(EMPTY)) or loop != EMPTY else EPSILON
        for source, incoming_expr in incoming:
            for target, outgoing_expr in outgoing:
                bridged = incoming_expr.concat(loop_star).concat(outgoing_expr)
                _edge_union(table, source, target, bridged)
        # drop every edge touching the victim
        table = {
            key: expr
            for key, expr in table.items()
            if victim not in key
        }

    synthesized = table.get((_INITIAL, _FINAL), EMPTY)
    if simplify_output:
        from repro.regex.simplify import simplify

        return simplify(synthesized)
    return synthesized


def dfa_to_regex_string(dfa: DFA) -> str:
    """Convenience: synthesise and render the expression."""
    from repro.regex.printer import to_string

    return to_string(dfa_to_regex(dfa))


def roundtrip_minimal_dfa(expression) -> DFA:
    """Parse an expression, build its minimal DFA (used in property tests)."""
    from repro.automata.determinize import regex_to_dfa
    from repro.automata.minimize import minimize

    return minimize(regex_to_dfa(expression))
