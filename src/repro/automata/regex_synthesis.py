"""Automaton → regular expression synthesis (state elimination).

The interactive system presents the learned query back to the user as a
regular expression in the paper's syntax (``(tram + bus)* . cinema``), so
the DFA produced by the state-merging generaliser has to be converted back
to an expression.  We use the classic state-elimination (Brzozowski &
McCluskey) construction over a generalised NFA whose transition labels are
regular expressions, eliminating low-connectivity states first to keep the
output small, followed by the smart constructors of
:mod:`repro.regex.ast` for local simplification.

The GNFA is *indexed*: per-state incoming and outgoing adjacency maps are
maintained incrementally as states are eliminated, and the
lowest-connectivity victim is chosen through a lazily invalidated heap of
maintained degree counts.  Earlier revisions rescanned the full edge
table inside the sort key on every elimination round, which made the
degree computation quadratic in the edge count and dominated the cost of
presenting learner-sized hypotheses (>90% of the synthesis time on a
~100-state DFA went into those rescans).
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Tuple

from repro.automata.dfa import DFA
from repro.regex.ast import EMPTY, EPSILON, Regex, Symbol

State = Hashable
_INITIAL = "__init__"
_FINAL = "__final__"


class _IndexedGNFA:
    """Expression-labelled digraph with adjacency maps and degree counts.

    Edges live in two mirrored maps — ``out_edges[source][target]`` and
    ``in_edges[target][source]`` — whose insertion order matches edge
    creation order (unioning into an existing edge keeps its position),
    so elimination visits parallel expressions in the same deterministic
    order as the original full-table implementation.
    """

    __slots__ = ("out_edges", "in_edges")

    def __init__(self) -> None:
        self.out_edges: Dict[State, Dict[State, Regex]] = {}
        self.in_edges: Dict[State, Dict[State, Regex]] = {}

    def connect(self, source: State, target: State, expr: Regex) -> None:
        """Add ``source -expr-> target``, unioning with any existing edge."""
        row = self.out_edges.setdefault(source, {})
        existing = row.get(target)
        merged = expr if existing is None else existing.union(expr)
        row[target] = merged
        self.in_edges.setdefault(target, {})[source] = merged

    def degree(self, state: State) -> int:
        """Number of distinct edges touching ``state`` (a self-loop counts once)."""
        out_row = self.out_edges.get(state, ())
        in_row = self.in_edges.get(state, ())
        return len(out_row) + len(in_row) - (1 if state in out_row else 0)

    def eliminate(self, victim: State) -> List[State]:
        """Remove ``victim``, bridging every in/out pair; return its neighbours."""
        in_row = self.in_edges.get(victim, {})
        out_row = self.out_edges.get(victim, {})
        incoming = [(source, expr) for source, expr in in_row.items() if source != victim]
        outgoing = [(target, expr) for target, expr in out_row.items() if target != victim]
        loop = out_row.get(victim, EMPTY)
        loop_star = loop.star() if loop != EMPTY else EPSILON
        for source, incoming_expr in incoming:
            for target, outgoing_expr in outgoing:
                bridged = incoming_expr.concat(loop_star).concat(outgoing_expr)
                self.connect(source, target, bridged)
        for source, _ in incoming:
            del self.out_edges[source][victim]
        for target, _ in outgoing:
            del self.in_edges[target][victim]
        self.out_edges.pop(victim, None)
        self.in_edges.pop(victim, None)
        return [source for source, _ in incoming] + [target for target, _ in outgoing]


def dfa_to_regex(dfa: DFA, *, simplify_output: bool = True) -> Regex:
    """Return a regular expression for the language of ``dfa``.

    The empty language yields the :data:`~repro.regex.ast.EMPTY` constant.
    The state-elimination output is post-processed by
    :func:`repro.regex.simplify.simplify` unless ``simplify_output`` is
    False (the raw form is occasionally useful in tests).
    """
    trimmed = dfa.trim()
    if trimmed.is_empty():
        return EMPTY

    # Generalised NFA: expression-labelled edges plus fresh initial / final.
    gnfa = _IndexedGNFA()
    states: List[State] = sorted(trimmed.states, key=str)
    gnfa.connect(_INITIAL, trimmed.initial_state, EPSILON)
    for state in sorted(trimmed.accepting_states, key=str):
        gnfa.connect(state, _FINAL, EPSILON)
    for source, symbol, target in trimmed.transitions():
        gnfa.connect(source, target, Symbol(symbol))

    # Eliminate internal states, lowest-connectivity first (smaller output).
    # The heap is lazily invalidated: entries carry the degree they were
    # pushed with and are discarded on pop when the state's maintained
    # degree has moved on (or the state is already gone).
    tiebreak = {state: index for index, state in enumerate(states)}
    eliminated = set()
    heap: List[Tuple[int, str, int, State]] = [
        (gnfa.degree(state), str(state), tiebreak[state], state) for state in states
    ]
    heapq.heapify(heap)
    while heap:
        pushed_degree, _, _, victim = heapq.heappop(heap)
        if victim in eliminated or pushed_degree != gnfa.degree(victim):
            continue
        eliminated.add(victim)
        for neighbor in gnfa.eliminate(victim):
            if neighbor not in eliminated and neighbor in tiebreak:
                heapq.heappush(
                    heap,
                    (gnfa.degree(neighbor), str(neighbor), tiebreak[neighbor], neighbor),
                )

    synthesized = gnfa.out_edges.get(_INITIAL, {}).get(_FINAL, EMPTY)
    if simplify_output:
        from repro.regex.simplify import simplify

        return simplify(synthesized)
    return synthesized


def dfa_to_regex_string(dfa: DFA) -> str:
    """Convenience: synthesise and render the expression."""
    from repro.regex.printer import to_string

    return to_string(dfa_to_regex(dfa))


def roundtrip_minimal_dfa(expression) -> DFA:
    """Parse an expression, build its minimal DFA (used in property tests)."""
    from repro.automata.determinize import regex_to_dfa
    from repro.automata.minimize import minimize

    return minimize(regex_to_dfa(expression))
