"""Rendering of automata as Graphviz DOT and ASCII transition tables.

The learned query is primarily shown to the user as a regular expression,
but when debugging the learner (or teaching the algorithm) it helps to
look at the automata themselves: the PTA before generalisation, the
hypothesis after each merge, the minimal DFA of the goal query.  These
renderers are dependency-free (they emit DOT text; rendering to an image
is left to graphviz if available).
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.automata.dfa import DFA
from repro.automata.nfa import NFA

Automaton = Union[DFA, NFA]


def _escape(value) -> str:
    return str(value).replace('"', '\\"')


def to_dot(automaton: Automaton, *, name: str = "automaton") -> str:
    """Graphviz DOT for a DFA or NFA.

    Accepting states are drawn as double circles; the initial state(s) get
    an incoming arrow from an invisible point node; epsilon transitions are
    labelled ``ε``.
    """
    lines: List[str] = [f'digraph "{_escape(name)}" {{', "  rankdir=LR;", '  node [shape=circle];']
    if isinstance(automaton, DFA):
        initial_states = [automaton.initial_state]
        accepting = automaton.accepting_states
        transitions = [(source, symbol, target) for source, symbol, target in automaton.transitions()]
        states = automaton.states
    else:
        initial_states = sorted(automaton.initial_states, key=str)
        accepting = automaton.accepting_states
        transitions = [
            (source, symbol if symbol is not None else "ε", target)
            for source, symbol, target in automaton.transitions()
        ]
        states = automaton.states

    for state in sorted(states, key=str):
        shape = "doublecircle" if state in accepting else "circle"
        lines.append(f'  "{_escape(state)}" [shape={shape}];')
    for index, state in enumerate(initial_states):
        lines.append(f'  "__start{index}__" [shape=point, style=invis];')
        lines.append(f'  "__start{index}__" -> "{_escape(state)}";')
    for source, symbol, target in sorted(transitions, key=lambda item: (str(item[0]), str(item[1]), str(item[2]))):
        lines.append(f'  "{_escape(source)}" -> "{_escape(target)}" [label="{_escape(symbol)}"];')
    lines.append("}")
    return "\n".join(lines)


def transition_table(dfa: DFA, *, max_width: Optional[int] = None) -> str:
    """ASCII transition table of a DFA (one row per state).

    The initial state is marked with ``->`` and accepting states with ``*``.
    """
    alphabet = sorted(dfa.alphabet())
    header = ["state"] + list(alphabet)
    rows: List[List[str]] = []
    for state in sorted(dfa.states, key=str):
        marker = "->" if state == dfa.initial_state else "  "
        star = "*" if dfa.is_accepting(state) else " "
        row = [f"{marker}{star}{state}"]
        for symbol in alphabet:
            target = dfa.target(state, symbol)
            row.append(str(target) if target is not None else "-")
        rows.append(row)
    widths = [max(len(header[i]), *(len(row[i]) for row in rows)) if rows else len(header[i]) for i in range(len(header))]
    if max_width is not None:
        widths = [min(width, max_width) for width in widths]
    lines = [
        " | ".join(header[i].ljust(widths[i]) for i in range(len(header))),
        "-+-".join("-" * width for width in widths),
    ]
    for row in rows:
        lines.append(" | ".join(row[i][: widths[i]].ljust(widths[i]) for i in range(len(header))))
    return "\n".join(lines)
