"""Membership-query helpers.

The interactive framework is an instance of Angluin-style *learning with
membership queries*: the user answers whether a node (and, after zooming,
a path) belongs to the goal query.  This module provides small utilities
shared by the learner and the simulated user for answering membership
questions about words and bounded path languages.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Set, Tuple

from repro.automata.dfa import DFA

Word = Tuple[str, ...]


def accepts_any(dfa: DFA, words: Iterable[Sequence[str]]) -> bool:
    """True when ``dfa`` accepts at least one of ``words``."""
    return any(dfa.accepts(word) for word in words)


def accepts_all(dfa: DFA, words: Iterable[Sequence[str]]) -> bool:
    """True when ``dfa`` accepts every word of ``words``."""
    return all(dfa.accepts(word) for word in words)


def accepted_subset(dfa: DFA, words: Iterable[Sequence[str]]) -> Set[Word]:
    """The subset of ``words`` accepted by ``dfa`` (as tuples)."""
    return {tuple(word) for word in words if dfa.accepts(word)}


def rejected_subset(dfa: DFA, words: Iterable[Sequence[str]]) -> Set[Word]:
    """The subset of ``words`` rejected by ``dfa`` (as tuples)."""
    return {tuple(word) for word in words if not dfa.accepts(word)}


def classify(dfa: DFA, words: Iterable[Sequence[str]]) -> Tuple[Set[Word], Set[Word]]:
    """Split ``words`` into (accepted, rejected) sets in one pass."""
    accepted: Set[Word] = set()
    rejected: Set[Word] = set()
    for word in words:
        key = tuple(word)
        if dfa.accepts(key):
            accepted.add(key)
        else:
            rejected.add(key)
    return accepted, rejected
