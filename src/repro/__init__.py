"""GPS — Interactive Path Query Specification on Graph Databases.

A faithful, laptop-scale reproduction of the system demonstrated in

    Angela Bonifati, Radu Ciucanu, Aurélien Lemay.
    "Interactive Path Query Specification on Graph Databases", EDBT 2015.

The package is organised bottom-up:

* :mod:`repro.graph`       — edge-labelled graph databases, paths, neighbourhoods, datasets;
* :mod:`repro.regex`       — regular expressions over edge labels (parser / printer);
* :mod:`repro.automata`    — NFA/DFA toolkit, PTA, RPNI state merging, regex synthesis;
* :mod:`repro.query`       — regular path queries and their evaluation on graphs;
* :mod:`repro.learning`    — the two-step learning algorithm, informativeness, pruning;
* :mod:`repro.interactive` — strategies, the Figure 2 session loop, oracles, scenarios;
* :mod:`repro.workloads`   — goal-query workloads and experiment cases;
* :mod:`repro.experiments` — figure regeneration and the E1–E5 evaluation harness.

Quickstart::

    from repro.graph.datasets import motivating_example
    from repro.interactive import SimulatedUser, InteractiveSession

    graph = motivating_example()
    user = SimulatedUser(graph, "(tram + bus)* . cinema")
    session = InteractiveSession(graph, user)
    result = session.run()
    print(result.learned_query)          # a query equivalent on the instance
"""

from repro.graph.labeled_graph import LabeledGraph
from repro.query.rpq import PathQuery
from repro.query.engine import QueryEngine, shared_engine
from repro.query.evaluation import evaluate
from repro.learning.learner import PathQueryLearner, learn_query
from repro.learning.examples import ExampleSet
from repro.interactive.session import InteractiveSession
from repro.interactive.oracle import SimulatedUser

__version__ = "1.1.0"

__all__ = [
    "LabeledGraph",
    "PathQuery",
    "QueryEngine",
    "shared_engine",
    "evaluate",
    "PathQueryLearner",
    "learn_query",
    "ExampleSet",
    "InteractiveSession",
    "SimulatedUser",
    "__version__",
]
