"""GPS — Interactive Path Query Specification on Graph Databases.

A faithful, laptop-scale reproduction of the system demonstrated in

    Angela Bonifati, Radu Ciucanu, Aurélien Lemay.
    "Interactive Path Query Specification on Graph Databases", EDBT 2015.

The package is organised bottom-up:

* :mod:`repro.graph`       — edge-labelled graph databases, paths, neighbourhoods, datasets;
* :mod:`repro.regex`       — regular expressions over edge labels (parser / printer);
* :mod:`repro.automata`    — NFA/DFA toolkit, PTA, RPNI state merging, regex synthesis;
* :mod:`repro.query`       — regular path queries and their evaluation on graphs;
* :mod:`repro.learning`    — the two-step learning algorithm, informativeness, pruning;
* :mod:`repro.interactive` — strategies, the Figure 2 session loop, oracles, scenarios;
* :mod:`repro.workloads`   — goal-query workloads and experiment cases;
* :mod:`repro.experiments` — figure regeneration and the E1–E5 evaluation harness;
* :mod:`repro.serving`     — the many-session serving core (workspace + manager).

Quickstart::

    from repro.graph.datasets import motivating_example
    from repro.interactive import SimulatedUser, InteractiveSession

    graph = motivating_example()
    user = SimulatedUser(graph, "(tram + bus)* . cinema")
    session = InteractiveSession(graph, user)
    result = session.run()
    print(result.learned_query)          # a query equivalent on the instance

Serving many users concurrently over one shared graph::

    from repro.serving import GraphWorkspace, SessionManager

    workspace = GraphWorkspace()
    manager = SessionManager(workspace)
    for goal in goals:
        manager.admit(graph, SimulatedUser(graph, goal, workspace=workspace))
    results = manager.run_all()
"""

from repro.graph.labeled_graph import LabeledGraph
from repro.query.rpq import PathQuery
from repro.query.engine import QueryEngine
from repro.learning.learner import PathQueryLearner, learn_query
from repro.learning.examples import ExampleSet
from repro.interactive.session import InteractiveSession, SessionResult
from repro.interactive.oracle import NoisyUser, SimulatedUser
from repro.reliability import FaultInjector, FaultPlan, RetryPolicy, SupervisionPolicy
from repro.serving import GraphWorkspace, SessionHandle, SessionManager, default_workspace

__version__ = "1.3.0"

#: The supported public surface.  The 1.2 deprecated shims
#: (``shared_engine``, ``evaluate``) are gone: hold a
#: :class:`GraphWorkspace` (or let :class:`InteractiveSession` create
#: one) and reach everything through it.
__all__ = [
    "LabeledGraph",
    "PathQuery",
    "QueryEngine",
    "PathQueryLearner",
    "learn_query",
    "ExampleSet",
    "InteractiveSession",
    "SessionResult",
    "SimulatedUser",
    "NoisyUser",
    "GraphWorkspace",
    "SessionManager",
    "SessionHandle",
    "default_workspace",
    "FaultPlan",
    "FaultInjector",
    "RetryPolicy",
    "SupervisionPolicy",
    "__version__",
]
