"""Goal-query workloads.

The companion paper evaluates learning over classes of path queries of
increasing complexity.  We generate goal queries from the same structural
families, instantiated over a given graph's alphabet so that every
generated query is satisfiable on the dataset it is paired with:

* ``single``        — one label: ``a``;
* ``concat``        — a short chain: ``a . b`` / ``a . b . c``;
* ``disjunction``   — ``a + b``;
* ``star-prefix``   — the paper's flagship shape ``(a + b)* . c``;
* ``star-chain``    — ``a* . b``;
* ``optional``      — ``a? . b``;
* ``plus``          — ``a+ . b``.

Each workload entry records the family, the expression and its size, so
experiment tables can be broken down by query class.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.labeled_graph import LabeledGraph
from repro.serving.workspace import default_workspace
from repro.query.rpq import PathQuery

#: Families in increasing structural complexity.
QUERY_FAMILIES: Tuple[str, ...] = (
    "single",
    "concat",
    "disjunction",
    "star-prefix",
    "star-chain",
    "optional",
    "plus",
)


@dataclass(frozen=True)
class WorkloadQuery:
    """One goal query of a workload."""

    family: str
    expression: str
    query: PathQuery
    answer_size: int

    def as_row(self) -> Dict[str, object]:
        """Flat dictionary for experiment tables."""
        return {
            "family": self.family,
            "expression": self.expression,
            "answer_size": self.answer_size,
            "ast_size": self.query.expression.size(),
        }


def _expression_for(family: str, labels: Sequence[str], rng: random.Random) -> str:
    pick = lambda: rng.choice(list(labels))  # noqa: E731 - tiny local helper
    if family == "single":
        return pick()
    if family == "concat":
        length = rng.choice([2, 3])
        return " . ".join(pick() for _ in range(length))
    if family == "disjunction":
        first, second = pick(), pick()
        return f"{first} + {second}"
    if family == "star-prefix":
        first, second, final = pick(), pick(), pick()
        return f"({first} + {second})* . {final}"
    if family == "star-chain":
        return f"{pick()}* . {pick()}"
    if family == "optional":
        return f"{pick()}? . {pick()}"
    if family == "plus":
        return f"{pick()}+ . {pick()}"
    raise ValueError(f"unknown query family {family!r}")


def generate_workload(
    graph: LabeledGraph,
    *,
    families: Sequence[str] = QUERY_FAMILIES,
    per_family: int = 3,
    seed: Optional[int] = None,
    require_nonempty: bool = True,
    require_nontrivial: bool = True,
    max_attempts: int = 60,
) -> List[WorkloadQuery]:
    """Generate a workload of goal queries over ``graph``'s alphabet.

    ``require_nonempty`` discards queries selecting no node;
    ``require_nontrivial`` additionally discards queries selecting *every*
    node (both are uninteresting interaction targets).
    """
    labels = sorted(graph.alphabet())
    if not labels:
        raise ValueError("graph has no edge labels; cannot generate a workload")
    rng = random.Random(seed)
    engine = default_workspace().engine
    workload: List[WorkloadQuery] = []
    for family in families:
        produced = 0
        attempts = 0
        seen: set = set()
        while produced < per_family and attempts < max_attempts:
            attempts += 1
            expression = _expression_for(family, labels, rng)
            if expression in seen:
                continue
            seen.add(expression)
            query = PathQuery(expression)
            answer = engine.evaluate(graph, query)
            if require_nonempty and not answer:
                continue
            if require_nontrivial and len(answer) == graph.node_count:
                continue
            workload.append(
                WorkloadQuery(
                    family=family,
                    expression=expression,
                    query=query,
                    answer_size=len(answer),
                )
            )
            produced += 1
    return workload


def figure1_goal_query() -> WorkloadQuery:
    """The motivating example's goal query ``(tram + bus)* . cinema``."""
    from repro.graph.datasets import motivating_example

    graph = motivating_example()
    query = PathQuery("(tram + bus)* . cinema")
    return WorkloadQuery(
        family="star-prefix",
        expression="(tram + bus)* . cinema",
        query=query,
        answer_size=len(default_workspace().engine.evaluate(graph, query)),
    )
