"""Experiment configurations: (dataset, goal query) pairs.

The harness in :mod:`repro.experiments` iterates over
:class:`WorkloadCase` objects; this module assembles the standard suites
used by the benchmark scripts (one per experiment id in DESIGN.md).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.graph.datasets import dataset_catalog
from repro.graph.labeled_graph import LabeledGraph
from repro.workloads.queries import QUERY_FAMILIES, WorkloadQuery, generate_workload


@dataclass(frozen=True)
class WorkloadCase:
    """One experiment unit: a graph and a goal query to recover on it."""

    dataset: str
    graph: LabeledGraph
    goal: WorkloadQuery

    def as_row(self) -> Dict[str, object]:
        """Flat dictionary for experiment tables."""
        row = {"dataset": self.dataset, "nodes": self.graph.node_count, "edges": self.graph.edge_count}
        row.update(self.goal.as_row())
        return row


def stable_name_hash(name: str) -> int:
    """A process-independent hash of ``name`` for seed derivation.

    Python's builtin ``hash`` on strings is salted by ``PYTHONHASHSEED``,
    so ``seed + hash(name)`` yields a *different* workload in every
    process — silently breaking "seeded" experiments.  CRC32 depends only
    on the bytes of the name.
    """
    return zlib.crc32(name.encode("utf-8"))


def standard_suite(
    *,
    datasets: Optional[Sequence[str]] = None,
    families: Sequence[str] = QUERY_FAMILIES,
    per_family: int = 2,
    seed: int = 11,
) -> List[WorkloadCase]:
    """The default suite: every catalogue dataset × a small query workload."""
    catalog = dataset_catalog(seed=seed)
    names = datasets if datasets is not None else list(catalog)
    cases: List[WorkloadCase] = []
    for name in names:
        graph = catalog[name]
        workload = generate_workload(
            graph, families=families, per_family=per_family, seed=seed + stable_name_hash(name) % 1000
        )
        for goal in workload:
            cases.append(WorkloadCase(dataset=name, graph=graph, goal=goal))
    return cases


def quick_suite(seed: int = 11) -> List[WorkloadCase]:
    """A small suite for CI-speed benchmarks: two datasets, three families."""
    return standard_suite(
        datasets=["figure-1", "transit-small"],
        families=("single", "disjunction", "star-prefix"),
        per_family=1,
        seed=seed,
    )
