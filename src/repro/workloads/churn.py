"""Churn workload family: sliding-window edge streams with seeded ticks.

The interactive-learning experiments all run on frozen graphs; the
serving north-star does not.  This module generates the *streaming*
counterpart: a fixed node universe over which a deterministic stream of
labelled edges slides.  A :class:`ChurnStream` holds ``window`` live
edges; every :class:`ChurnTick` retires the oldest ``churn`` edges and
admits ``churn`` fresh ones, applied to a graph atomically (one version
bump) through :meth:`~repro.graph.labeled_graph.LabeledGraph.apply_delta`
so downstream caches can follow the delta journal instead of rebuilding.

Everything is seeded the same way the rest of the workload layer is
(:func:`~repro.workloads.generator.stable_name_hash` + an explicit
integer seed), so a stream is identical across processes and
``PYTHONHASHSEED`` values: the tick sequence is part of an experiment's
identity, exactly like a goal query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Set, Tuple

import random

from repro.graph.labeled_graph import Edge, LabeledGraph
from repro.workloads.generator import stable_name_hash

#: Default geometry: enough churn to touch most labels over a run while
#: each individual tick stays small relative to the window.
CHURN_DEFAULTS = {"window": 60, "churn": 4, "tick_count": 12}


@dataclass(frozen=True)
class ChurnTick:
    """One sliding-window step: retire the oldest edges, admit fresh ones."""

    tick: int
    admit: Tuple[Edge, ...]
    retire: Tuple[Edge, ...]

    def apply(self, graph: LabeledGraph):
        """Apply this tick atomically; returns the recorded GraphDelta."""
        return graph.apply_delta(add_edges=self.admit, remove_edges=self.retire)


@dataclass(frozen=True)
class ChurnStream:
    """A deterministic sliding-window edge stream over a fixed node set.

    The node universe never changes (nodes are created up front), so
    every tick is an edges-only delta — the case the delta-refresh paths
    are built for.  The stream itself is generated lazily but
    deterministically: two instances with equal parameters produce
    byte-identical initial graphs and tick sequences.
    """

    node_count: int
    alphabet: Sequence[str]
    window: int = CHURN_DEFAULTS["window"]
    churn: int = CHURN_DEFAULTS["churn"]
    tick_count: int = CHURN_DEFAULTS["tick_count"]
    seed: int = 11
    name: str = "churn"
    _initial: Tuple[Edge, ...] = field(init=False, repr=False)
    _ticks: Tuple[ChurnTick, ...] = field(init=False, repr=False)

    def __post_init__(self):
        if self.node_count <= 0:
            raise ValueError("node_count must be positive")
        if not self.alphabet:
            raise ValueError("alphabet must not be empty")
        if self.window <= 0:
            raise ValueError("window must be positive")
        if not 0 < self.churn <= self.window:
            raise ValueError("churn must be in 1..window")
        possible = self.node_count * self.node_count * len(self.alphabet)
        if self.window > possible:
            raise ValueError(
                f"window {self.window} exceeds the {possible} possible triples"
            )
        initial, ticks = self._generate()
        object.__setattr__(self, "_initial", initial)
        object.__setattr__(self, "_ticks", ticks)

    @property
    def nodes(self) -> List[str]:
        return [f"n{index}" for index in range(self.node_count)]

    @property
    def initial_edges(self) -> Tuple[Edge, ...]:
        return self._initial

    def _generate(self) -> Tuple[Tuple[Edge, ...], Tuple[ChurnTick, ...]]:
        rng = random.Random(self.seed + stable_name_hash(self.name) % 1000)
        nodes = self.nodes
        labels = list(self.alphabet)
        live: List[Edge] = []  # oldest first — the sliding window
        live_set: Set[Edge] = set()

        def draw() -> Edge:
            # rejection-sample a triple not currently live; the window is
            # bounded away from the full triple space, so this terminates
            while True:
                edge = (rng.choice(nodes), rng.choice(labels), rng.choice(nodes))
                if edge not in live_set:
                    live_set.add(edge)
                    return edge

        initial = tuple(draw() for _ in range(self.window))
        live.extend(initial)
        ticks: List[ChurnTick] = []
        for tick in range(self.tick_count):
            retire = tuple(live[: self.churn])
            del live[: self.churn]
            live_set.difference_update(retire)
            admit = tuple(draw() for _ in range(self.churn))
            live.extend(admit)
            ticks.append(ChurnTick(tick=tick, admit=admit, retire=retire))
        return initial, tuple(ticks)

    def initial_graph(
        self,
        *,
        journal_limit: Optional[int] = None,
        journal_edge_limit: Optional[int] = None,
    ) -> LabeledGraph:
        """The window's starting graph, with every node pre-created.

        ``journal_limit=0`` builds the whole-invalidation baseline: with
        no journal, every refresh path falls back to drop-and-rebuild,
        which is exactly the pre-delta behaviour benchmarks compare
        against.
        """
        graph = LabeledGraph(
            self.name,
            journal_limit=journal_limit,
            journal_edge_limit=journal_edge_limit,
        )
        graph.add_edges_bulk(self._initial, nodes=self.nodes)
        return graph

    def ticks(self) -> Iterator[ChurnTick]:
        """The seeded tick sequence (always the same for equal parameters)."""
        return iter(self._ticks)

    def replay(self, graph: LabeledGraph) -> LabeledGraph:
        """Apply every tick to ``graph`` in order; returns the graph."""
        for tick in self._ticks:
            tick.apply(graph)
        return graph

    def final_edges(self) -> Set[Edge]:
        """The live window after the last tick (for end-state checks)."""
        edges: List[Edge] = list(self._initial)
        for tick in self._ticks:
            edges = edges[self.churn :] + list(tick.admit)
        return set(edges)
