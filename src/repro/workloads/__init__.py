"""Workload generation: goal queries and (dataset, query) experiment cases."""

from repro.workloads.queries import (
    QUERY_FAMILIES,
    WorkloadQuery,
    figure1_goal_query,
    generate_workload,
)
from repro.workloads.generator import WorkloadCase, quick_suite, standard_suite

__all__ = [
    "QUERY_FAMILIES",
    "WorkloadQuery",
    "figure1_goal_query",
    "generate_workload",
    "WorkloadCase",
    "quick_suite",
    "standard_suite",
]
