"""Workload generation: goal queries, experiment cases and churn streams."""

from repro.workloads.queries import (
    QUERY_FAMILIES,
    WorkloadQuery,
    figure1_goal_query,
    generate_workload,
)
from repro.workloads.churn import CHURN_DEFAULTS, ChurnStream, ChurnTick
from repro.workloads.generator import WorkloadCase, quick_suite, standard_suite

__all__ = [
    "QUERY_FAMILIES",
    "WorkloadQuery",
    "figure1_goal_query",
    "generate_workload",
    "CHURN_DEFAULTS",
    "ChurnStream",
    "ChurnTick",
    "WorkloadCase",
    "quick_suite",
    "standard_suite",
]
