"""Regular expressions over edge labels: AST, parser and printer."""

from repro.regex.ast import (
    EMPTY,
    EPSILON,
    Concat,
    Empty,
    Epsilon,
    Optional_,
    Plus,
    Regex,
    Star,
    Symbol,
    Union,
    concat_all,
    symbol,
    union_all,
    word_to_regex,
)
from repro.regex.parser import parse, parse_word
from repro.regex.printer import to_compact_string, to_string
from repro.regex.simplify import simplify

__all__ = [
    "EMPTY",
    "EPSILON",
    "Concat",
    "Empty",
    "Epsilon",
    "Optional_",
    "Plus",
    "Regex",
    "Star",
    "Symbol",
    "Union",
    "concat_all",
    "symbol",
    "union_all",
    "word_to_regex",
    "parse",
    "parse_word",
    "to_compact_string",
    "to_string",
    "simplify",
]
