"""Pretty-printer for regular-expression ASTs.

The printer emits the paper's notation: ``.`` for concatenation, ``+``
for disjunction, ``*`` / ``+`` / ``?`` as postfix operators, with the
minimal parenthesisation needed to round-trip through the parser.
"""

from __future__ import annotations

from repro.regex.ast import (
    Concat,
    Empty,
    Epsilon,
    Optional_,
    Plus,
    Regex,
    Star,
    Symbol,
    Union,
)

# precedence levels: union < concat < postfix < atom
_LEVEL_UNION = 0
_LEVEL_CONCAT = 1
_LEVEL_POSTFIX = 2
_LEVEL_ATOM = 3


def _render(expr: Regex) -> tuple:
    """Return ``(text, level)`` where level is the precedence of the root."""
    if isinstance(expr, Empty):
        return "empty", _LEVEL_ATOM
    if isinstance(expr, Epsilon):
        return "eps", _LEVEL_ATOM
    if isinstance(expr, Symbol):
        return expr.label, _LEVEL_ATOM
    if isinstance(expr, Union):
        left_text = _wrap(expr.left, _LEVEL_UNION)
        right_text = _wrap(expr.right, _LEVEL_UNION)
        return f"{left_text} + {right_text}", _LEVEL_UNION
    if isinstance(expr, Concat):
        left_text = _wrap(expr.left, _LEVEL_CONCAT)
        right_text = _wrap(expr.right, _LEVEL_CONCAT)
        return f"{left_text} . {right_text}", _LEVEL_CONCAT
    if isinstance(expr, Star):
        return f"{_wrap(expr.inner, _LEVEL_POSTFIX + 1)}*", _LEVEL_POSTFIX
    if isinstance(expr, Plus):
        return f"{_wrap(expr.inner, _LEVEL_POSTFIX + 1)}+", _LEVEL_POSTFIX
    if isinstance(expr, Optional_):
        return f"{_wrap(expr.inner, _LEVEL_POSTFIX + 1)}?", _LEVEL_POSTFIX
    raise TypeError(f"unknown regex node: {type(expr).__name__}")


def _wrap(expr: Regex, minimum_level: int) -> str:
    text, level = _render(expr)
    if level < minimum_level:
        return f"({text})"
    return text


def to_string(expr: Regex) -> str:
    """Render ``expr`` in the paper's concrete syntax."""
    text, _ = _render(expr)
    return text


def to_compact_string(expr: Regex) -> str:
    """Render without spaces around operators (useful for identifiers)."""
    return to_string(expr).replace(" ", "")
