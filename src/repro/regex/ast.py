"""Abstract syntax tree for regular expressions over edge labels.

The paper writes path queries as regular expressions over the edge-label
alphabet, e.g. ``(tram + bus)* . cinema``.  The syntax supported here is:

* **symbol** — an edge label (``tram``),
* **epsilon** — the empty word,
* **empty** — the empty language (useful as an identity for union),
* **concatenation** — ``e1 . e2`` (the dot may be omitted),
* **disjunction** — ``e1 + e2`` (``|`` is accepted as a synonym),
* **Kleene star** — ``e*``,
* **plus** — ``e+`` (one or more repetitions; syntactic sugar for ``e.e*``),
* **optional** — ``e?`` (sugar for ``e + epsilon``).

AST nodes are immutable, hashable and comparable, so expressions can be
used as dictionary keys, deduplicated, and structurally simplified.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, Tuple


class Regex:
    """Base class for all regular-expression AST nodes."""

    __slots__ = ()

    # -- structural helpers -------------------------------------------------
    def children(self) -> Tuple["Regex", ...]:
        """Direct sub-expressions (empty for leaves)."""
        return ()

    def alphabet(self) -> FrozenSet[str]:
        """The set of symbols appearing in the expression."""
        symbols: set = set()
        for node in self.walk():
            if isinstance(node, Symbol):
                symbols.add(node.label)
        return frozenset(symbols)

    def walk(self) -> Iterator["Regex"]:
        """Yield every node of the AST (pre-order)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    def size(self) -> int:
        """Number of AST nodes (a simple complexity measure for workloads)."""
        return sum(1 for _ in self.walk())

    # -- language properties ------------------------------------------------
    def nullable(self) -> bool:
        """True when the empty word belongs to the language."""
        raise NotImplementedError

    # -- combinators (used heavily by the synthesiser) ----------------------
    def concat(self, other: "Regex") -> "Regex":
        """Smart concatenation constructor performing local simplification."""
        if isinstance(self, Empty) or isinstance(other, Empty):
            return EMPTY
        if isinstance(self, Epsilon):
            return other
        if isinstance(other, Epsilon):
            return self
        return Concat(self, other)

    def union(self, other: "Regex") -> "Regex":
        """Smart disjunction constructor performing local simplification."""
        if isinstance(self, Empty):
            return other
        if isinstance(other, Empty):
            return self
        if self == other:
            return self
        # epsilon + e* == e*, and e? forms
        if isinstance(self, Epsilon) and isinstance(other, Star):
            return other
        if isinstance(other, Epsilon) and isinstance(self, Star):
            return self
        return Union(self, other)

    def star(self) -> "Regex":
        """Smart Kleene-star constructor performing local simplification."""
        if isinstance(self, (Empty, Epsilon)):
            return EPSILON
        if isinstance(self, Star):
            return self
        return Star(self)

    def __repr__(self) -> str:
        from repro.regex.printer import to_string

        return f"Regex({to_string(self)!r})"

    def __str__(self) -> str:
        from repro.regex.printer import to_string

        return to_string(self)


class Empty(Regex):
    """The empty language (matches nothing)."""

    __slots__ = ()

    def nullable(self) -> bool:
        return False

    def __eq__(self, other) -> bool:
        return isinstance(other, Empty)

    def __hash__(self) -> int:
        return hash("Empty")


class Epsilon(Regex):
    """The language containing only the empty word."""

    __slots__ = ()

    def nullable(self) -> bool:
        return True

    def __eq__(self, other) -> bool:
        return isinstance(other, Epsilon)

    def __hash__(self) -> int:
        return hash("Epsilon")


class Symbol(Regex):
    """A single edge label."""

    __slots__ = ("label",)

    def __init__(self, label: str):
        if not label:
            raise ValueError("symbol label must be a non-empty string")
        self.label = label

    def nullable(self) -> bool:
        return False

    def __eq__(self, other) -> bool:
        return isinstance(other, Symbol) and other.label == self.label

    def __hash__(self) -> int:
        return hash(("Symbol", self.label))


class Concat(Regex):
    """Concatenation ``left . right``."""

    __slots__ = ("left", "right")

    def __init__(self, left: Regex, right: Regex):
        self.left = left
        self.right = right

    def children(self) -> Tuple[Regex, ...]:
        return (self.left, self.right)

    def nullable(self) -> bool:
        return self.left.nullable() and self.right.nullable()

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Concat)
            and other.left == self.left
            and other.right == self.right
        )

    def __hash__(self) -> int:
        return hash(("Concat", self.left, self.right))


class Union(Regex):
    """Disjunction ``left + right``."""

    __slots__ = ("left", "right")

    def __init__(self, left: Regex, right: Regex):
        self.left = left
        self.right = right

    def children(self) -> Tuple[Regex, ...]:
        return (self.left, self.right)

    def nullable(self) -> bool:
        return self.left.nullable() or self.right.nullable()

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Union)
            and other.left == self.left
            and other.right == self.right
        )

    def __hash__(self) -> int:
        return hash(("Union", self.left, self.right))


class Star(Regex):
    """Kleene star ``inner*``."""

    __slots__ = ("inner",)

    def __init__(self, inner: Regex):
        self.inner = inner

    def children(self) -> Tuple[Regex, ...]:
        return (self.inner,)

    def nullable(self) -> bool:
        return True

    def __eq__(self, other) -> bool:
        return isinstance(other, Star) and other.inner == self.inner

    def __hash__(self) -> int:
        return hash(("Star", self.inner))


class Plus(Regex):
    """One-or-more repetition ``inner+`` (kept as a node for faithful printing)."""

    __slots__ = ("inner",)

    def __init__(self, inner: Regex):
        self.inner = inner

    def children(self) -> Tuple[Regex, ...]:
        return (self.inner,)

    def nullable(self) -> bool:
        return self.inner.nullable()

    def __eq__(self, other) -> bool:
        return isinstance(other, Plus) and other.inner == self.inner

    def __hash__(self) -> int:
        return hash(("Plus", self.inner))


class Optional_(Regex):
    """Zero-or-one ``inner?`` (named with a trailing underscore to avoid
    clashing with :class:`typing.Optional`)."""

    __slots__ = ("inner",)

    def __init__(self, inner: Regex):
        self.inner = inner

    def children(self) -> Tuple[Regex, ...]:
        return (self.inner,)

    def nullable(self) -> bool:
        return True

    def __eq__(self, other) -> bool:
        return isinstance(other, Optional_) and other.inner == self.inner

    def __hash__(self) -> int:
        return hash(("Optional", self.inner))


#: Shared singletons for the two constant languages.
EMPTY = Empty()
EPSILON = Epsilon()


def symbol(label: str) -> Symbol:
    """Convenience constructor for a :class:`Symbol`."""
    return Symbol(label)


def concat_all(parts: Tuple[Regex, ...]) -> Regex:
    """Concatenate a sequence of expressions (empty sequence gives epsilon)."""
    result: Regex = EPSILON
    for part in parts:
        result = result.concat(part)
    return result


def union_all(parts: Tuple[Regex, ...]) -> Regex:
    """Disjunction of a sequence of expressions (empty sequence gives the empty language)."""
    result: Regex = EMPTY
    for part in parts:
        result = result.union(part)
    return result


def word_to_regex(word: Tuple[str, ...]) -> Regex:
    """The expression spelling exactly ``word`` (epsilon for the empty word)."""
    return concat_all(tuple(Symbol(label) for label in word))
