"""Algebraic simplification of regular expressions.

The state-elimination synthesiser (:mod:`repro.automata.regex_synthesis`)
can produce verbose expressions (nested unions, redundant epsilons,
star-of-star patterns).  Since the learned query is shown to a non-expert
user, readability matters; this module applies language-preserving rewrite
rules until a fixpoint:

* identity / annihilator laws for ``empty`` and ``eps``;
* idempotence and flattening of unions (``a + a = a``), with duplicate
  removal under associativity/commutativity;
* ``eps + e = e?``, ``e? `` and ``e*`` absorptions (``(e?)* = e*``,
  ``(e*)* = e*``, ``(e*)? = e*``);
* ``e . e* = e+`` and ``e* . e = e+``;
* union of a language with a star that contains it collapses when safe
  (``eps + e+ = e*``).

The rules are purely syntactic and conservative: :func:`simplify` is
verified (by property tests) to preserve the language.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.regex.ast import (
    EMPTY,
    EPSILON,
    Concat,
    Empty,
    Epsilon,
    Optional_,
    Plus,
    Regex,
    Star,
    Symbol,
    Union,
)

#: Safety valve on the number of rewrite passes.
_MAX_PASSES = 20


def _union_operands(expr: Regex) -> List[Regex]:
    """Flatten a union tree into its operand list."""
    if isinstance(expr, Union):
        return _union_operands(expr.left) + _union_operands(expr.right)
    return [expr]


def _concat_operands(expr: Regex) -> List[Regex]:
    """Flatten a concatenation tree into its operand list."""
    if isinstance(expr, Concat):
        return _concat_operands(expr.left) + _concat_operands(expr.right)
    return [expr]


def _rebuild_union(operands: List[Regex]) -> Regex:
    if not operands:
        return EMPTY
    result = operands[0]
    for operand in operands[1:]:
        result = Union(result, operand)
    return result


def _rebuild_concat(operands: List[Regex]) -> Regex:
    if not operands:
        return EPSILON
    result = operands[0]
    for operand in operands[1:]:
        result = Concat(result, operand)
    return result


def _simplify_union(expr: Union) -> Regex:
    operands: List[Regex] = []
    seen: set = set()
    nullable_via_construct = False
    for operand in _union_operands(expr):
        operand = _simplify_once(operand)
        if isinstance(operand, Empty):
            continue
        if isinstance(operand, Epsilon):
            nullable_via_construct = True
            continue
        if operand in seen:
            continue
        seen.add(operand)
        operands.append(operand)

    if not operands:
        return EPSILON if nullable_via_construct else EMPTY

    # eps + e  ->  e?   /   eps + e+  ->  e*   /  eps + (already nullable) -> unchanged
    if nullable_via_construct:
        if len(operands) == 1:
            only = operands[0]
            if isinstance(only, Plus):
                return Star(only.inner)
            if only.nullable():
                return only
            return Optional_(only)
        rebuilt = _rebuild_union(operands)
        if rebuilt.nullable():
            return rebuilt
        return Optional_(rebuilt)

    # a + a* -> a*, a + a+ -> a+ (absorption of a by a containing star/plus)
    absorbed: List[Regex] = []
    star_bodies = {operand.inner for operand in operands if isinstance(operand, (Star, Plus))}
    for operand in operands:
        if operand in star_bodies:
            continue
        absorbed.append(operand)
    return _rebuild_union(absorbed if absorbed else operands)


def _simplify_concat(expr: Concat) -> Regex:
    operands: List[Regex] = []
    for operand in _concat_operands(expr):
        operand = _simplify_once(operand)
        if isinstance(operand, Empty):
            return EMPTY
        if isinstance(operand, Epsilon):
            continue
        operands.append(operand)
    if not operands:
        return EPSILON

    # e . e* -> e+  and  e* . e -> e+  (adjacent pairs only, left to right)
    compacted: List[Regex] = []
    index = 0
    while index < len(operands):
        current = operands[index]
        nxt = operands[index + 1] if index + 1 < len(operands) else None
        if nxt is not None and isinstance(nxt, Star) and nxt.inner == current:
            compacted.append(Plus(current))
            index += 2
            continue
        if nxt is not None and isinstance(current, Star) and current.inner == nxt:
            compacted.append(Plus(nxt))
            index += 2
            continue
        if nxt is not None and isinstance(current, Star) and current == nxt:
            # e* . e* -> e*
            compacted.append(current)
            index += 2
            continue
        compacted.append(current)
        index += 1
    return _rebuild_concat(compacted)


def _simplify_once(expr: Regex) -> Regex:
    """One bottom-up simplification pass."""
    if isinstance(expr, (Empty, Epsilon, Symbol)):
        return expr
    if isinstance(expr, Union):
        return _simplify_union(expr)
    if isinstance(expr, Concat):
        return _simplify_concat(expr)
    if isinstance(expr, Star):
        inner = _simplify_once(expr.inner)
        if isinstance(inner, (Empty, Epsilon)):
            return EPSILON
        if isinstance(inner, (Star, Plus)):
            return Star(inner.inner)
        if isinstance(inner, Optional_):
            return Star(inner.inner)
        return Star(inner)
    if isinstance(expr, Plus):
        inner = _simplify_once(expr.inner)
        if isinstance(inner, Empty):
            return EMPTY
        if isinstance(inner, Epsilon):
            return EPSILON
        if isinstance(inner, Star):
            return inner
        if isinstance(inner, Plus):
            return inner
        if isinstance(inner, Optional_):
            return Star(inner.inner)
        return Plus(inner)
    if isinstance(expr, Optional_):
        inner = _simplify_once(expr.inner)
        if isinstance(inner, Empty):
            return EPSILON
        if isinstance(inner, Epsilon):
            return EPSILON
        if inner.nullable():
            return inner
        if isinstance(inner, Plus):
            return Star(inner.inner)
        return Optional_(inner)
    raise TypeError(f"unknown regex node: {type(expr).__name__}")


def simplify(expr: Regex) -> Regex:
    """Simplify ``expr`` to a fixpoint of the rewrite rules (language-preserving)."""
    current = expr
    for _ in range(_MAX_PASSES):
        simplified = _simplify_once(current)
        if simplified == current:
            return simplified
        current = simplified
    return current


def simplified_size_reduction(expr: Regex) -> Tuple[int, int]:
    """Return ``(original_size, simplified_size)`` — a readability metric."""
    return expr.size(), simplify(expr).size()
