"""Recursive-descent parser for the path-query regular expressions.

Grammar (standard precedence: star/plus/optional bind tighter than
concatenation, which binds tighter than disjunction)::

    expr        := term ( ('+' | '|') term )*
    term        := factor ( '.'? factor )*
    factor      := atom ( '*' | '+'(postfix) | '?' )*
    atom        := SYMBOL | 'eps' | '()' | '(' expr ')'

Notes
-----
* Labels are multi-character identifiers (``tram``, ``cinema``); they may
  contain letters, digits, underscores and dashes.
* Both ``+`` and ``|`` denote disjunction **when used as a binary,
  infix operator**; a ``+`` immediately following a factor is the postfix
  one-or-more operator, matching the paper's notation ``(tram + bus)*``
  while still supporting ``a+`` for "one or more a".
* ``eps`` denotes the empty word and ``empty`` the empty language.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.exceptions import RegexSyntaxError
from repro.regex.ast import (
    EMPTY,
    EPSILON,
    Optional_,
    Plus,
    Regex,
    Symbol,
)

_EPSILON_NAMES = {"eps", "epsilon", "ε"}
_EMPTY_NAMES = {"empty", "∅"}
_OPERATORS = {"+", "|", "*", "?", ".", "(", ")"}


class _Token:
    __slots__ = ("kind", "value", "position")

    def __init__(self, kind: str, value: str, position: int):
        self.kind = kind
        self.value = value
        self.position = position

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_Token({self.kind}, {self.value!r}, {self.position})"


def _tokenize(expression: str) -> List[_Token]:
    tokens: List[_Token] = []
    index = 0
    length = len(expression)
    while index < length:
        char = expression[index]
        if char.isspace():
            index += 1
            continue
        if char in _OPERATORS:
            tokens.append(_Token("op", char, index))
            index += 1
            continue
        if char.isalnum() or char in "_-":
            start = index
            while index < length and (expression[index].isalnum() or expression[index] in "_-"):
                index += 1
            tokens.append(_Token("symbol", expression[start:index], start))
            continue
        raise RegexSyntaxError(
            f"unexpected character {char!r}", expression=expression, position=index
        )
    return tokens


class _Parser:
    """Internal recursive-descent parser over the token list."""

    def __init__(self, expression: str, tokens: List[_Token]):
        self.expression = expression
        self.tokens = tokens
        self.index = 0

    # -- token helpers ------------------------------------------------------
    def _peek(self) -> Optional[_Token]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def _advance(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def _error(self, message: str, token: Optional[_Token] = None) -> RegexSyntaxError:
        position = token.position if token is not None else len(self.expression)
        return RegexSyntaxError(message, expression=self.expression, position=position)

    # -- grammar ------------------------------------------------------------
    def parse(self) -> Regex:
        if not self.tokens:
            return EPSILON
        result = self.parse_expr()
        leftover = self._peek()
        if leftover is not None:
            raise self._error(f"unexpected token {leftover.value!r}", leftover)
        return result

    def parse_expr(self) -> Regex:
        result = self.parse_term()
        while True:
            token = self._peek()
            if token is not None and token.kind == "op" and token.value in {"+", "|"}:
                self._advance()
                right = self.parse_term()
                result = result.union(right)
            else:
                return result

    def _starts_factor(self, token: Optional[_Token]) -> bool:
        if token is None:
            return False
        if token.kind == "symbol":
            return True
        return token.kind == "op" and token.value == "("

    def parse_term(self) -> Regex:
        result = self.parse_factor()
        while True:
            token = self._peek()
            if token is not None and token.kind == "op" and token.value == ".":
                self._advance()
                right = self.parse_factor()
                result = result.concat(right)
            elif self._starts_factor(token):
                right = self.parse_factor()
                result = result.concat(right)
            else:
                return result

    def parse_factor(self) -> Regex:
        result = self.parse_atom()
        while True:
            token = self._peek()
            if token is None or token.kind != "op":
                return result
            if token.value == "*":
                self._advance()
                result = result.star()
            elif token.value == "?":
                self._advance()
                result = Optional_(result)
            elif token.value == "+" and self._plus_is_postfix():
                self._advance()
                result = Plus(result)
            else:
                return result

    def _plus_is_postfix(self) -> bool:
        """Disambiguate ``a + b`` (union) from ``a+`` (one or more).

        The ``+`` is postfix only when the *next* token cannot start a new
        factor — i.e. at end of input, before a closing parenthesis, before
        another postfix operator, or before an infix operator.
        """
        following = (
            self.tokens[self.index + 1] if self.index + 1 < len(self.tokens) else None
        )
        return not self._starts_factor(following)

    def parse_atom(self) -> Regex:
        token = self._peek()
        if token is None:
            raise self._error("unexpected end of expression")
        if token.kind == "symbol":
            self._advance()
            lowered = token.value.lower()
            if lowered in _EPSILON_NAMES:
                return EPSILON
            if lowered in _EMPTY_NAMES:
                return EMPTY
            return Symbol(token.value)
        if token.kind == "op" and token.value == "(":
            self._advance()
            closing = self._peek()
            if closing is not None and closing.kind == "op" and closing.value == ")":
                self._advance()
                return EPSILON
            inner = self.parse_expr()
            closing = self._peek()
            if closing is None or closing.kind != "op" or closing.value != ")":
                raise self._error("expected ')'", closing)
            self._advance()
            return inner
        raise self._error(f"unexpected token {token.value!r}", token)


def parse(expression: Union[str, Regex]) -> Regex:
    """Parse ``expression`` into a :class:`~repro.regex.ast.Regex`.

    Passing an already-built AST returns it unchanged, which lets public
    APIs accept either strings or ASTs.
    """
    if isinstance(expression, Regex):
        return expression
    if not isinstance(expression, str):
        raise RegexSyntaxError(
            f"expected a string or Regex, got {type(expression).__name__}"
        )
    return _Parser(expression, _tokenize(expression)).parse()


def parse_word(word: str, *, separator: str = ".") -> Tuple[str, ...]:
    """Parse a plain word written as dot-separated labels (``bus.bus.cinema``)."""
    parts = [part.strip() for part in word.split(separator)]
    return tuple(part for part in parts if part)
