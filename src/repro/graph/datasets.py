"""Datasets used throughout the reproduction.

Three families of graphs, matching the data the paper demonstrates on:

* :func:`motivating_example` — the exact geographical graph of Figure 1
  (six neighbourhoods, two cinemas, two restaurants, tram/bus edges);
* :func:`transit_city` — a parameterised synthetic city in the spirit of
  the Transpole data the demo used: neighbourhoods connected by tram and
  bus lines, with facilities (cinema, restaurant, museum, park) attached
  to some neighbourhoods;
* :func:`biological_network` — a synthetic protein/gene interaction
  network with biological edge labels, standing in for the biological
  datasets of the companion paper's evaluation.

All generators are deterministic under an explicit ``seed``.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.determinism import entropy_seed
from repro.graph.generators import grid_graph, scale_free_graph
from repro.graph.labeled_graph import Edge, LabeledGraph
from repro.graph.sampling import FenwickSampler

TRANSPORT_LABELS: Tuple[str, ...] = ("tram", "bus")
FACILITY_LABELS: Tuple[str, ...] = ("cinema", "restaurant", "museum", "park")
BIO_LABELS: Tuple[str, ...] = ("interacts", "encodes", "regulates", "expresses", "binds")

#: joint redraws before the protein-interaction sampler falls back to
#: enumerating untaken triples (only reachable near saturation)
_MAX_REDRAWS = 64


def _component_rng(seed: int, component: str) -> random.Random:
    """A generator for one independent component of a dataset.

    The sub-seed mixes the full ``seed`` with a CRC32 of the component
    name (``PYTHONHASHSEED``-independent, unlike ``hash``), so each
    component has its own random stream: adding a bus line, for
    instance, never reshuffles the edges of earlier lines or the
    facility placement.
    """
    return random.Random((seed << 32) ^ zlib.crc32(component.encode("utf-8")))


def motivating_example() -> LabeledGraph:
    """The geographical graph database of Figure 1.

    Nodes ``N1``–``N6`` are neighbourhoods, ``C1``/``C2`` cinemas and
    ``R1``/``R2`` restaurants.  The regular path query
    ``(tram + bus)* . cinema`` selects exactly ``{N1, N2, N4, N6}``.
    """
    graph = LabeledGraph("figure-1")
    for index in range(1, 7):
        graph.add_node(f"N{index}", kind="neighborhood")
    for cinema in ("C1", "C2"):
        graph.add_node(cinema, kind="cinema")
    for restaurant in ("R1", "R2"):
        graph.add_node(restaurant, kind="restaurant")

    # Transportation edges between neighbourhoods (2 x 3 arrangement:
    # N1 N2 N3 on top, N4 N5 N6 below).  The edge set realises every fact
    # stated in the paper:
    #   * the listed witness paths N1 -tram-> N4 -cinema-> C1,
    #     N2 -bus-> N1 -tram-> N4 -cinema-> C1, N4 -cinema-> C1 and
    #     N6 -cinema-> C2;
    #   * (tram + bus)* . cinema selects exactly {N1, N2, N4, N6};
    #   * N2 has a bus.bus.cinema path of length 3 (Figure 3(c));
    #   * the query `bus` selects N2 and N6 but not N5 (Section 3);
    #   * one can travel by bus from N2 to N3.
    graph.add_edge("N1", "tram", "N4")
    graph.add_edge("N1", "bus", "N4")
    graph.add_edge("N2", "bus", "N1")
    graph.add_edge("N2", "bus", "N3")
    graph.add_edge("N3", "tram", "N5")
    graph.add_edge("N5", "tram", "N3")
    graph.add_edge("N6", "bus", "N3")
    graph.add_edge("N6", "tram", "N5")

    # Facilities.
    graph.add_edge("N4", "cinema", "C1")
    graph.add_edge("N6", "cinema", "C2")
    graph.add_edge("N5", "restaurant", "R1")
    graph.add_edge("N6", "restaurant", "R2")
    return graph


def motivating_example_expected_answer() -> frozenset:
    """Nodes selected by ``(tram + bus)* . cinema`` on :func:`motivating_example`."""
    return frozenset({"N1", "N2", "N4", "N6"})


def transit_city(
    neighborhood_count: int = 40,
    *,
    tram_lines: int = 3,
    bus_lines: int = 5,
    line_length: int = 8,
    facility_probability: float = 0.35,
    facility_labels: Sequence[str] = FACILITY_LABELS,
    seed: Optional[int] = None,
    name: str = "transit-city",
) -> LabeledGraph:
    """A synthetic city combining public transport lines and facilities.

    The generator mimics the structure of the Transpole-style data the
    demo used: a set of neighbourhood nodes, tram and bus lines that are
    random walks over neighbourhoods (bidirectional edges, as real lines
    run both ways), and facility nodes (cinemas, restaurants, …) hanging
    off neighbourhoods via facility-labelled edges.

    Every line (and the facility placement) draws from its own
    CRC32-derived sub-seed, so the city is stable under extension:
    ``transit_city(n, bus_lines=k + 1, seed=s)`` contains every edge of
    ``transit_city(n, bus_lines=k, seed=s)``.
    """
    if neighborhood_count <= 1:
        raise ValueError("neighborhood_count must be at least 2")
    if line_length < 2:
        raise ValueError("line_length must be at least 2")
    if not 0.0 <= facility_probability <= 1.0:
        raise ValueError("facility_probability must be within [0, 1]")
    if seed is None:
        seed = entropy_seed()
    graph = LabeledGraph(name)
    neighborhoods = [f"N{index}" for index in range(neighborhood_count)]
    for node in neighborhoods:
        graph.add_node(node, kind="neighborhood")
    edges: List[Edge] = []

    def lay_line(label: str, line_index: int) -> None:
        rng = _component_rng(seed, f"line:{label}:{line_index}")
        current = rng.choice(neighborhoods)
        visited = {current}
        for _ in range(line_length - 1):
            candidates = [node for node in neighborhoods if node not in visited]
            if not candidates:
                break
            target = rng.choice(candidates)
            edges.append((current, label, target))
            edges.append((target, label, current))
            visited.add(target)
            current = target

    for line in range(tram_lines):
        lay_line("tram", line)
    for line in range(bus_lines):
        lay_line("bus", line)

    facility_rng = _component_rng(seed, "facilities")
    facility_counter: Dict[str, int] = {label: 0 for label in facility_labels}
    for node in neighborhoods:
        if facility_rng.random() < facility_probability:
            label = facility_rng.choice(list(facility_labels))
            facility_counter[label] += 1
            facility = f"{label[:1].upper()}{facility_counter[label]}"
            graph.add_node(facility, kind=label)
            edges.append((node, label, facility))
    graph.add_edges_bulk(edges)
    return graph


def biological_network(
    protein_count: int = 120,
    gene_count: int = 60,
    *,
    interaction_density: float = 2.0,
    labels: Sequence[str] = BIO_LABELS,
    seed: Optional[int] = None,
    name: str = "bio-network",
) -> LabeledGraph:
    """A synthetic protein / gene interaction network.

    Proteins interact with proteins (``interacts``, ``binds``), genes
    encode proteins (``encodes``), and proteins regulate genes
    (``regulates``) or are expressed in tissues (``expresses``).  Degrees
    follow a preferential-attachment pattern so the graph has hubs, which
    matters for the informativeness strategies (hub nodes have many short
    paths).

    The protein-protein layer contains **exactly**
    ``int(interaction_density * protein_count)`` distinct edges (capped
    at the number of possible non-self-loop triples): self-loop and
    duplicate draws are resampled rather than skipped — the seed
    implementation silently dropped them and under-delivered.
    """
    if protein_count <= 1 or gene_count <= 0:
        raise ValueError("protein_count must be >= 2 and gene_count >= 1")
    if interaction_density <= 0:
        raise ValueError("interaction_density must be positive")
    rng = random.Random(seed)
    graph = LabeledGraph(name)
    proteins = [f"P{index}" for index in range(protein_count)]
    genes = [f"G{index}" for index in range(gene_count)]
    tissues = [f"T{index}" for index in range(max(3, protein_count // 20))]
    for node in proteins:
        graph.add_node(node, kind="protein")
    for node in genes:
        graph.add_node(node, kind="gene")
    for node in tissues:
        graph.add_node(node, kind="tissue")
    edges: List[Edge] = []

    # protein-protein interactions with preferential attachment: uniform
    # source, Fenwick-sampled target (weight = in-degree + 1), uniform
    # label; resample on self-loop or duplicate until the quota is met
    pp_labels = ["interacts", "binds"] if "binds" in labels else ["interacts"]
    pp_label_count = len(pp_labels)
    possible = protein_count * (protein_count - 1) * pp_label_count
    interaction_edges = min(int(interaction_density * protein_count), possible)
    weights = [1] * protein_count
    sampler = FenwickSampler.from_weights(weights)
    taken: set = set()
    attempts_left = _MAX_REDRAWS * interaction_edges + 1000
    while len(taken) < interaction_edges and attempts_left > 0:
        attempts_left -= 1
        source_index = rng.randrange(protein_count)
        target_index = sampler.sample(rng)
        label_index = rng.randrange(pp_label_count)
        if source_index == target_index:
            continue
        triple = (source_index, target_index, label_index)
        if triple in taken:
            continue
        taken.add(triple)
        edges.append((proteins[source_index], pp_labels[label_index], proteins[target_index]))
        weights[target_index] += 1
        sampler.add(target_index, 1)
    if len(taken) < interaction_edges:
        # attempt budget exhausted (only possible near saturation): draw
        # the shortfall from the enumerated untaken triples through a
        # Fenwick sampler over the weights frozen at this point (each
        # drawn triple's weight drops to zero so it is never redrawn) —
        # O(shortfall · log possible) instead of rebuilding the weight
        # table per edge
        untaken = [
            (source_index, target_index, label_index)
            for source_index in range(protein_count)
            for target_index in range(protein_count)
            if source_index != target_index
            for label_index in range(pp_label_count)
            if (source_index, target_index, label_index) not in taken
        ]
        shortfall_sampler = FenwickSampler.from_weights(
            [weights[target_index] for _, target_index, _ in untaken]
        )
        while len(taken) < interaction_edges:
            pick = shortfall_sampler.sample(rng)
            shortfall_sampler.add(pick, -shortfall_sampler.weight(pick))
            source_index, target_index, label_index = untaken[pick]
            taken.add((source_index, target_index, label_index))
            edges.append(
                (proteins[source_index], pp_labels[label_index], proteins[target_index])
            )
            weights[target_index] += 1

    # genes encode proteins
    for gene in genes:
        edges.append((gene, "encodes", rng.choice(proteins)))

    # some proteins regulate genes
    for protein in proteins:
        if rng.random() < 0.3:
            edges.append((protein, "regulates", rng.choice(genes)))
        if rng.random() < 0.2:
            edges.append((protein, "expresses", rng.choice(tissues)))
    graph.add_edges_bulk(edges)
    return graph


def dataset_catalog(seed: int = 7) -> Dict[str, LabeledGraph]:
    """The standard catalogue of graphs used by the experiment harness.

    Returns a name -> graph mapping with one representative of each
    dataset family at a laptop-friendly size.  Besides the hand-built and
    city/biology generators this includes a preferential-attachment
    scale-free graph and a one-way grid (geography-like lattice), so
    workload suites exercise hub-dominated and regular topologies too.
    """
    return {
        "figure-1": motivating_example(),
        "transit-small": transit_city(20, tram_lines=2, bus_lines=3, line_length=6, seed=seed),
        "transit-medium": transit_city(60, tram_lines=4, bus_lines=6, line_length=10, seed=seed + 1),
        "bio-small": biological_network(60, 30, seed=seed + 2),
        "bio-medium": biological_network(150, 70, seed=seed + 3),
        "scale-free-medium": scale_free_graph(
            150, edges_per_node=3, seed=seed + 4, name="scale-free-medium"
        ),
        # one-way lattice: with bidirectional edges every query of the
        # standard families selects all nodes and the workload filters
        # discard it as trivial
        "grid-medium": grid_graph(8, 8, bidirectional=False, name="grid-medium"),
    }


def list_datasets() -> List[str]:
    """Names of the graphs returned by :func:`dataset_catalog`."""
    return [
        "figure-1",
        "transit-small",
        "transit-medium",
        "bio-small",
        "bio-medium",
        "scale-free-medium",
        "grid-medium",
    ]
