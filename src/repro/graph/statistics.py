"""Descriptive statistics over labelled graphs.

The experiment harness reports the size and shape of every dataset it
runs on (node / edge counts, alphabet, degree distribution, reachability)
so that the tables in EXPERIMENTS.md are self-describing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.graph.labeled_graph import LabeledGraph
from repro.graph.paths import reachable_nodes


@dataclass(frozen=True)
class GraphStatistics:
    """Summary statistics of a labelled graph."""

    name: str
    node_count: int
    edge_count: int
    label_count: int
    label_histogram: Tuple[Tuple[str, int], ...]
    max_out_degree: int
    max_in_degree: int
    average_out_degree: float
    sink_count: int
    source_count: int

    def as_dict(self) -> dict:
        """Dictionary view (used when rendering experiment tables)."""
        return {
            "name": self.name,
            "nodes": self.node_count,
            "edges": self.edge_count,
            "labels": self.label_count,
            "max_out_degree": self.max_out_degree,
            "max_in_degree": self.max_in_degree,
            "avg_out_degree": round(self.average_out_degree, 3),
            "sinks": self.sink_count,
            "sources": self.source_count,
        }


def compute_statistics(graph: LabeledGraph) -> GraphStatistics:
    """Compute :class:`GraphStatistics` for ``graph``."""
    node_count = graph.node_count
    out_degrees = [graph.out_degree(node) for node in graph.nodes()]
    in_degrees = [graph.in_degree(node) for node in graph.nodes()]
    histogram = tuple(sorted(graph.label_counts().items()))
    return GraphStatistics(
        name=graph.name,
        node_count=node_count,
        edge_count=graph.edge_count,
        label_count=len(graph.alphabet()),
        label_histogram=histogram,
        max_out_degree=max(out_degrees, default=0),
        max_in_degree=max(in_degrees, default=0),
        average_out_degree=(sum(out_degrees) / node_count) if node_count else 0.0,
        sink_count=sum(1 for degree in out_degrees if degree == 0),
        source_count=sum(1 for degree in in_degrees if degree == 0),
    )


def reachability_fractions(graph: LabeledGraph, *, sample_limit: int = 200) -> Dict[str, float]:
    """Average fraction of the graph reachable from a node (sampled).

    For large graphs only the first ``sample_limit`` nodes (in sorted
    order, deterministic) are sampled.
    """
    nodes = sorted(graph.nodes(), key=str)[:sample_limit]
    if not nodes or graph.node_count == 0:
        return {"average": 0.0, "max": 0.0, "min": 0.0}
    fractions = [
        len(reachable_nodes(graph, node)) / graph.node_count for node in nodes
    ]
    return {
        "average": sum(fractions) / len(fractions),
        "max": max(fractions),
        "min": min(fractions),
    }


def degree_histogram(graph: LabeledGraph) -> Dict[int, int]:
    """Mapping out-degree -> number of nodes with that out-degree."""
    histogram: Dict[int, int] = {}
    for node in graph.nodes():
        degree = graph.out_degree(node)
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram
