"""Path enumeration on edge-labelled graphs.

The learning algorithm of the paper works on *paths*: a path of a node
``v`` is a sequence of edges starting at ``v``; its *word* is the sequence
of labels along the edges.  The interactive scenario needs to

* enumerate all words of bounded length starting at a node (to build the
  prefix tree of Figure 3(c)),
* find the shortest word of a node that is not covered by any negative
  node (step (i) of the learning algorithm), and
* test whether a given word can be spelled starting from a node.

Paths here are *simple in labels only* — node repetition is allowed, as
in the paper, because regular path queries quantify over arbitrary paths
(e.g. ``(tram+bus)*`` may revisit a neighbourhood).  To keep enumeration
finite we always bound the length.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.exceptions import NodeNotFoundError
from repro.graph.labeled_graph import LabeledGraph, Label, Node

Word = Tuple[Label, ...]


class Path:
    """A concrete path: an anchored sequence of ``(label, node)`` steps.

    ``Path(start, steps)`` represents ``start -[l1]-> n1 -[l2]-> n2 ...``
    where ``steps = [(l1, n1), (l2, n2), ...]``.  The empty path of a node
    has no steps and the empty word.
    """

    __slots__ = ("start", "steps")

    def __init__(self, start: Node, steps: Sequence[Tuple[Label, Node]] = ()):
        self.start = start
        self.steps: Tuple[Tuple[Label, Node], ...] = tuple(steps)

    @property
    def word(self) -> Word:
        """The label word spelled by the path."""
        return tuple(label for label, _ in self.steps)

    @property
    def end(self) -> Node:
        """The final node of the path (the start node for the empty path)."""
        return self.steps[-1][1] if self.steps else self.start

    @property
    def nodes(self) -> Tuple[Node, ...]:
        """All nodes along the path, start included."""
        return (self.start,) + tuple(node for _, node in self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Path):
            return NotImplemented
        return self.start == other.start and self.steps == other.steps

    def __hash__(self) -> int:
        return hash((self.start, self.steps))

    def __repr__(self) -> str:
        if not self.steps:
            return f"Path({self.start!r}, <empty>)"
        rendered = str(self.start)
        for label, node in self.steps:
            rendered += f" -[{label}]-> {node}"
        return f"Path({rendered})"

    def extend(self, label: Label, node: Node) -> "Path":
        """Return a new path with one extra step appended."""
        return Path(self.start, self.steps + ((label, node),))


def iter_paths(
    graph: LabeledGraph,
    start: Node,
    max_length: int,
    *,
    include_empty: bool = False,
) -> Iterator[Path]:
    """Enumerate paths starting at ``start`` with at most ``max_length`` edges.

    Enumeration is breadth-first, so shorter paths are produced before
    longer ones; among paths of equal length the order follows the sorted
    order of ``(label, target)`` pairs, which makes the output
    deterministic.
    """
    if start not in graph:
        raise NodeNotFoundError(start)
    root = Path(start)
    if include_empty:
        yield root
    queue: deque[Path] = deque([root])
    while queue:
        path = queue.popleft()
        if len(path) >= max_length:
            continue
        for label, target in sorted(graph.out_edges(path.end), key=lambda step: (step[0], str(step[1]))):
            extended = path.extend(label, target)
            yield extended
            queue.append(extended)


def words_from(
    graph: LabeledGraph,
    start: Node,
    max_length: int,
    *,
    include_empty: bool = False,
) -> Set[Word]:
    """Return the set of distinct words of length ≤ ``max_length`` from ``start``.

    Distinct paths may spell the same word; the word set is what the
    learning algorithm and the informativeness computation reason about.
    A breadth-first traversal over *sets of frontier nodes per word* keeps
    the cost proportional to the number of distinct words rather than the
    (potentially exponential) number of paths.
    """
    if start not in graph:
        raise NodeNotFoundError(start)
    words: Set[Word] = set()
    if include_empty:
        words.add(())
    # frontier maps a word to the set of nodes reachable by spelling it
    frontier: Dict[Word, Set[Node]] = {(): {start}}
    for _ in range(max_length):
        next_frontier: Dict[Word, Set[Node]] = {}
        for word, nodes in frontier.items():
            for node in nodes:
                for label, target in graph.out_edges(node):
                    extended = word + (label,)
                    next_frontier.setdefault(extended, set()).add(target)
        if not next_frontier:
            break
        words.update(next_frontier)
        frontier = next_frontier
    return words


def has_word(graph: LabeledGraph, start: Node, word: Sequence[Label]) -> bool:
    """Return True when ``word`` can be spelled along some path from ``start``."""
    if start not in graph:
        raise NodeNotFoundError(start)
    current: Set[Node] = {start}
    for label in word:
        following: Set[Node] = set()
        for node in current:
            following.update(graph.successors(node, label))
        if not following:
            return False
        current = following
    return True


def paths_spelling(
    graph: LabeledGraph, start: Node, word: Sequence[Label]
) -> List[Path]:
    """Return every path from ``start`` spelling exactly ``word``."""
    if start not in graph:
        raise NodeNotFoundError(start)
    partial: List[Path] = [Path(start)]
    for label in word:
        extended: List[Path] = []
        for path in partial:
            for target in sorted(graph.successors(path.end, label), key=str):
                extended.append(path.extend(label, target))
        if not extended:
            return []
        partial = extended
    return partial


def shortest_words(
    graph: LabeledGraph,
    start: Node,
    max_length: int,
    *,
    excluded: Optional[Iterable[Word]] = None,
    limit: Optional[int] = None,
) -> List[Word]:
    """Return the shortest distinct words from ``start`` not in ``excluded``.

    Words are produced in order of increasing length (ties broken
    lexicographically) which is exactly the preference order used by the
    learning algorithm when it picks a candidate path for a positive node.
    ``limit`` truncates the result once that many words have been found.
    """
    if start not in graph:
        raise NodeNotFoundError(start)
    banned: Set[Word] = set(excluded) if excluded is not None else set()
    found: List[Word] = []
    frontier: Dict[Word, Set[Node]] = {(): {start}}
    for _ in range(max_length):
        next_frontier: Dict[Word, Set[Node]] = {}
        for word, nodes in frontier.items():
            for node in nodes:
                for label, target in graph.out_edges(node):
                    extended = word + (label,)
                    next_frontier.setdefault(extended, set()).add(target)
        if not next_frontier:
            break
        for word in sorted(next_frontier):
            if word not in banned:
                found.append(word)
                if limit is not None and len(found) >= limit:
                    return found
        frontier = next_frontier
    return found


def word_count_by_length(
    graph: LabeledGraph, start: Node, max_length: int
) -> Dict[int, int]:
    """Return a mapping ``length -> number of distinct words`` from ``start``.

    This is the quantity used by the *most informative paths* strategy:
    nodes with many short distinct words uncovered by negatives are good
    candidates to show the user.
    """
    if start not in graph:
        raise NodeNotFoundError(start)
    counts: Dict[int, int] = {}
    frontier: Dict[Word, Set[Node]] = {(): {start}}
    for length in range(1, max_length + 1):
        next_frontier: Dict[Word, Set[Node]] = {}
        for word, nodes in frontier.items():
            for node in nodes:
                for label, target in graph.out_edges(node):
                    extended = word + (label,)
                    next_frontier.setdefault(extended, set()).add(target)
        if not next_frontier:
            break
        counts[length] = len(next_frontier)
        frontier = next_frontier
    return counts


def reachable_nodes(graph: LabeledGraph, start: Node, max_distance: Optional[int] = None) -> Set[Node]:
    """Return all nodes reachable from ``start`` following edge directions.

    ``max_distance`` bounds the number of hops; ``None`` means unbounded.
    The start node itself is always included.
    """
    if start not in graph:
        raise NodeNotFoundError(start)
    seen: Set[Node] = {start}
    frontier: Set[Node] = {start}
    distance = 0
    while frontier and (max_distance is None or distance < max_distance):
        next_frontier: Set[Node] = set()
        for node in frontier:
            for _, target in graph.out_edges(node):
                if target not in seen:
                    seen.add(target)
                    next_frontier.add(target)
        frontier = next_frontier
        distance += 1
    return seen
