"""Structural deltas: the per-version change records of the graph journal.

Every structural mutation of a :class:`~repro.graph.labeled_graph.LabeledGraph`
bumps its monotone :attr:`~repro.graph.labeled_graph.LabeledGraph.version`
counter.  Since the delta-journal PR the graph also records *what* each
bump changed — a :class:`GraphDelta` holding the edges and nodes added
and removed — in a bounded journal, so derived structures (the engine's
answer cache, the language index bitsets, the neighbourhood BFS layers)
can invalidate **proportionally to the delta** instead of rebuilding
whole:

* a cached query answer survives when the plan's alphabet is disjoint
  from :attr:`GraphDelta.labels_touched`;
* a language index rescoring only needs the nodes within ``bound`` BFS
  hops of a changed edge's source;
* a cached BFS layer stack survives when no member of
  :attr:`GraphDelta.touched_nodes` appears in its distance map.

Deltas are value objects: once recorded they are never mutated.  A batch
too large to be worth replaying (a generator-scale bulk insert) is
recorded as an *opaque* delta — :meth:`LabeledGraph.deltas_since
<repro.graph.labeled_graph.LabeledGraph.deltas_since>` refuses to bridge
across one, and every consumer falls back to the whole-drop rebuild the
pre-journal code always performed.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Optional, Tuple

Node = Hashable
Label = str
Edge = Tuple[Node, Label, Node]

__all__ = ["GraphDelta"]


class GraphDelta:
    """One version step of a :class:`LabeledGraph`: what changed, exactly.

    ``old_version`` → ``new_version`` is always a single bump
    (``new_version == old_version + 1``); a journal is a contiguous chain
    of these.  ``opaque`` marks a step whose contents were too large to
    record — its edge/node tuples are empty and consumers must treat the
    whole graph as touched.
    """

    __slots__ = (
        "old_version",
        "new_version",
        "edges_added",
        "edges_removed",
        "nodes_added",
        "nodes_removed",
        "opaque",
        "_labels_touched",
        "_touched_nodes",
    )

    def __init__(
        self,
        old_version: int,
        new_version: int,
        *,
        edges_added: Tuple[Edge, ...] = (),
        edges_removed: Tuple[Edge, ...] = (),
        nodes_added: Tuple[Node, ...] = (),
        nodes_removed: Tuple[Node, ...] = (),
        opaque: bool = False,
    ):
        # repro-lint: disable=REP302 -- a GraphDelta IS the journal record: an immutable value object describing one version step, not a cache that could serve stale state
        self.old_version = old_version
        # repro-lint: disable=REP302 -- same: the version pair is the delta's identity, never a freshness witness
        self.new_version = new_version
        self.edges_added = tuple(edges_added)
        self.edges_removed = tuple(edges_removed)
        self.nodes_added = tuple(nodes_added)
        self.nodes_removed = tuple(nodes_removed)
        self.opaque = opaque
        self._labels_touched: Optional[FrozenSet[Label]] = None
        self._touched_nodes: Optional[FrozenSet[Node]] = None

    # ------------------------------------------------------------------
    # derived views (computed once, cached)
    # ------------------------------------------------------------------
    @property
    def labels_touched(self) -> FrozenSet[Label]:
        """Labels carried by any edge this delta added or removed."""
        labels = self._labels_touched
        if labels is None:
            labels = frozenset(
                label for _, label, _ in self.edges_added
            ) | frozenset(label for _, label, _ in self.edges_removed)
            self._labels_touched = labels
        return labels

    @property
    def touched_nodes(self) -> FrozenSet[Node]:
        """Every node named by this delta: changed-edge endpoints plus
        nodes added or removed outright."""
        touched = self._touched_nodes
        if touched is None:
            nodes = set(self.nodes_added)
            nodes.update(self.nodes_removed)
            for source, _, target in self.edges_added:
                nodes.add(source)
                nodes.add(target)
            for source, _, target in self.edges_removed:
                nodes.add(source)
                nodes.add(target)
            touched = frozenset(nodes)
            self._touched_nodes = touched
        return touched

    @property
    def nodes_changed(self) -> bool:
        """True when the node set itself changed (not just edges)."""
        return bool(self.nodes_added or self.nodes_removed)

    @property
    def is_empty(self) -> bool:
        """True for the no-op delta (``apply_delta`` with nothing to do)."""
        return self.old_version == self.new_version

    def __repr__(self) -> str:
        if self.opaque:
            body = "opaque"
        else:
            body = (
                f"+{len(self.edges_added)}e -{len(self.edges_removed)}e "
                f"+{len(self.nodes_added)}n -{len(self.nodes_removed)}n"
            )
        return f"<GraphDelta v{self.old_version}->{self.new_version} {body}>"
