"""Edge-labelled directed multigraph — the graph-database model of the paper.

The paper models a graph database as a finite, directed graph whose edges
carry labels drawn from a finite alphabet (e.g. ``tram``, ``bus``,
``cinema``).  Nodes are opaque identifiers (hashable values); parallel
edges with distinct labels are allowed, and the same (source, label,
target) triple is stored only once (the semantics of regular path queries
never depend on edge multiplicity).

:class:`LabeledGraph` is a plain-Python adjacency-indexed structure.  It
is deliberately dependency-free because it sits on the hot path of every
algorithm in the library (path enumeration, neighbourhood extraction,
product-automaton evaluation, informativeness computation).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.exceptions import DuplicateNodeError, EdgeNotFoundError, NodeNotFoundError
from repro.graph.delta import GraphDelta

Node = Hashable
Label = str
Edge = Tuple[Node, Label, Node]


class LabeledGraph:
    """A directed graph with labelled edges.

    Nodes may carry an optional attribute dictionary (used by the dataset
    generators to store, for instance, whether a node is a neighbourhood,
    a cinema or a restaurant); the query semantics ignore attributes.

    The structure maintains both forward and backward adjacency indexes so
    that neighbourhood extraction (which is symmetric) and query
    evaluation (which is forward-only) are both efficient.

    Every structural mutation (node or edge added / removed) bumps the
    monotone :attr:`version` counter.  Derived structures — most notably
    the per-label reverse index and answer caches of
    :class:`repro.query.engine.QueryEngine` — snapshot the version they
    were built against and rebuild lazily when it moves, so callers never
    observe stale answers after mutating a graph.

    Alongside the counter the graph keeps a bounded **delta journal**: a
    :class:`~repro.graph.delta.GraphDelta` per version step recording the
    edges/nodes the step added and removed.  :meth:`deltas_since` replays
    the journal so caches can invalidate *only* what a delta can reach —
    see :meth:`repro.serving.workspace.GraphWorkspace.refresh`.  The
    journal holds the last ``journal_limit`` steps (``0`` disables it);
    batches larger than ``journal_edge_limit`` are recorded opaquely —
    both cases make :meth:`deltas_since` return ``None`` and consumers
    fall back to whole-drop rebuilds, so the journal is purely an
    optimisation, never a correctness requirement.
    """

    #: journal window: how many version steps :meth:`deltas_since` can bridge
    JOURNAL_LIMIT = 32
    #: per-delta size cap: larger batches are recorded opaquely
    JOURNAL_EDGE_LIMIT = 4096

    __slots__ = (
        "_succ",
        "_pred",
        "_node_attrs",
        "_labels",
        "_edge_count",
        "_version",
        "_label_index",
        "_journal",
        "_journal_edge_limit",
        "name",
        "__weakref__",
    )

    def __init__(
        self,
        name: str = "graph",
        *,
        journal_limit: Optional[int] = None,
        journal_edge_limit: Optional[int] = None,
    ):
        #: forward adjacency: node -> label -> set of successors
        self._succ: Dict[Node, Dict[Label, Set[Node]]] = {}
        #: backward adjacency: node -> label -> set of predecessors
        self._pred: Dict[Node, Dict[Label, Set[Node]]] = {}
        self._node_attrs: Dict[Node, dict] = {}
        self._labels: Dict[Label, int] = {}
        self._edge_count = 0
        self._version = 0
        self._label_index: Optional["GraphLabelIndex"] = None
        limit = self.JOURNAL_LIMIT if journal_limit is None else max(0, int(journal_limit))
        self._journal: Deque[GraphDelta] = deque(maxlen=limit)
        self._journal_edge_limit = (
            self.JOURNAL_EDGE_LIMIT if journal_edge_limit is None else max(0, int(journal_edge_limit))
        )
        self.name = name

    @property
    def version(self) -> int:
        """Monotone counter bumped by every structural mutation.

        ``(graph, graph.version)`` identifies an immutable snapshot of the
        graph's structure: as long as the version is unchanged, node and
        edge sets are unchanged, so cached indexes and query answers keyed
        on it remain valid.
        """
        return self._version

    # ------------------------------------------------------------------
    # delta journal
    # ------------------------------------------------------------------
    @property
    def journal_limit(self) -> int:
        """How many version steps the journal retains (0 = disabled)."""
        return self._journal.maxlen or 0

    @property
    def journal_edge_limit(self) -> int:
        """Per-delta element cap; larger batches are recorded opaquely."""
        return self._journal_edge_limit

    def _record_delta(
        self,
        old_version: int,
        *,
        edges_added: Tuple[Edge, ...] = (),
        edges_removed: Tuple[Edge, ...] = (),
        nodes_added: Tuple[Node, ...] = (),
        nodes_removed: Tuple[Node, ...] = (),
        opaque: bool = False,
    ) -> GraphDelta:
        """Append one journal record for the bump ``old_version`` → now."""
        if not opaque:
            size = (
                len(edges_added)
                + len(edges_removed)
                + len(nodes_added)
                + len(nodes_removed)
            )
            opaque = size > self._journal_edge_limit
        if opaque:
            delta = GraphDelta(old_version, self._version, opaque=True)
        else:
            delta = GraphDelta(
                old_version,
                self._version,
                edges_added=edges_added,
                edges_removed=edges_removed,
                nodes_added=nodes_added,
                nodes_removed=nodes_removed,
            )
        self._journal.append(delta)
        return delta

    def deltas_since(self, version: int) -> Optional[Tuple[GraphDelta, ...]]:
        """The contiguous delta chain from ``version`` to :attr:`version`.

        Returns ``()`` when ``version`` is already current, and ``None``
        when the journal cannot bridge the gap — the window was exceeded,
        the journal is disabled, an oversized batch in the range was
        recorded opaquely, or ``version`` never belonged to this graph.
        A ``None`` answer is the consumer's cue to fall back to a
        whole-drop rebuild.
        """
        current = self._version
        if version == current:
            return ()
        if version > current:
            return None
        collected: List[GraphDelta] = []
        for delta in reversed(self._journal):
            if delta.new_version <= version:
                break
            if delta.opaque:
                return None
            collected.append(delta)
        if not collected or collected[-1].old_version != version:
            return None
        collected.reverse()
        return tuple(collected)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node, *, strict: bool = False, **attrs) -> Node:
        """Add ``node`` to the graph and return it.

        Adding an existing node is a no-op (its attributes are updated)
        unless ``strict`` is true, in which case :class:`DuplicateNodeError`
        is raised.
        """
        if node in self._succ:
            if strict:
                raise DuplicateNodeError(node)
            if attrs:
                self._node_attrs.setdefault(node, {}).update(attrs)
            return node
        self._succ[node] = {}
        self._pred[node] = {}
        old_version = self._version
        self._version += 1
        self._record_delta(old_version, nodes_added=(node,))
        if attrs:
            self._node_attrs[node] = dict(attrs)
        return node

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        """Add every node of ``nodes`` (existing nodes are left untouched)."""
        for node in nodes:
            self.add_node(node)

    def add_edge(self, source: Node, label: Label, target: Node) -> Edge:
        """Add the edge ``source -[label]-> target`` and return the triple.

        Missing endpoints are created automatically.  Re-adding an existing
        edge is a no-op.
        """
        self.add_node(source)
        self.add_node(target)
        targets = self._succ[source].setdefault(label, set())
        if target in targets:
            return (source, label, target)
        targets.add(target)
        self._pred[target].setdefault(label, set()).add(source)
        self._labels[label] = self._labels.get(label, 0) + 1
        self._edge_count += 1
        old_version = self._version
        self._version += 1
        self._record_delta(old_version, edges_added=((source, label, target),))
        return (source, label, target)

    def add_edges(self, edges: Iterable[Edge]) -> None:
        """Add every ``(source, label, target)`` triple of ``edges``."""
        self.add_edges_bulk(edges)

    def add_edges_bulk(self, edges: Iterable[Edge], *, nodes: Iterable[Node] = ()) -> int:
        """Add many edges (and optionally isolated ``nodes``) in one pass.

        This is the construction hot path used by every synthetic
        generator: it writes the ``_succ`` / ``_pred`` / ``_labels``
        indexes directly, dedupes against existing edges, and bumps
        :attr:`version` **once** for the whole batch instead of once per
        element, so derived caches (label index, query answers,
        neighbourhood layers) are invalidated a single time.

        Returns the number of edges that were actually new.
        """
        succ = self._succ
        pred = self._pred
        collect = self._journal.maxlen != 0
        new_nodes: Optional[List[Node]] = [] if collect else None
        changed = False
        for node in nodes:
            if node not in succ:
                succ[node] = {}
                pred[node] = {}
                changed = True
                if new_nodes is not None:
                    new_nodes.append(node)
        added, new_edges, created = self._add_edge_batch(edges, collect)
        if added or changed:
            old_version = self._version
            self._version += 1
            if collect:
                if created:
                    new_nodes.extend(created)
                self._record_delta(
                    old_version,
                    edges_added=tuple(new_edges) if new_edges is not None else (),
                    nodes_added=tuple(new_nodes),
                    opaque=new_edges is None,
                )
        return added

    def _add_edge_batch(
        self, edges: Iterable[Edge], collect: bool
    ) -> Tuple[int, Optional[List[Edge]], List[Node]]:
        """Insert edges without bumping :attr:`version` (journal-aware core).

        Returns ``(added, new_edges, new_nodes)``; ``new_edges`` is
        ``None`` either when ``collect`` is false or when the batch
        overflowed :attr:`journal_edge_limit` (the caller then records an
        opaque delta).  ``new_nodes`` lists endpoints created implicitly.
        """
        succ = self._succ
        pred = self._pred
        labels = self._labels
        limit = self._journal_edge_limit
        added = 0
        new_edges: Optional[List[Edge]] = [] if collect else None
        new_nodes: List[Node] = []
        for source, label, target in edges:
            by_label = succ.get(source)
            if by_label is None:
                by_label = succ[source] = {}
                pred[source] = {}
                if collect:
                    new_nodes.append(source)
            targets = by_label.get(label)
            if targets is None:
                targets = by_label[label] = set()
            elif target in targets:
                continue
            targets.add(target)
            if target not in succ:
                succ[target] = {}
                pred[target] = {}
                if collect:
                    new_nodes.append(target)
            by_label_pred = pred[target]
            sources = by_label_pred.get(label)
            if sources is None:
                by_label_pred[label] = {source}
            else:
                sources.add(source)
            labels[label] = labels.get(label, 0) + 1
            added += 1
            if new_edges is not None:
                if added > limit:
                    new_edges = None  # oversized batch: record opaquely
                else:
                    new_edges.append((source, label, target))
        if added:
            self._edge_count += added
        return added, new_edges, new_nodes

    def remove_edge(self, source: Node, label: Label, target: Node) -> None:
        """Remove an edge; raise :class:`EdgeNotFoundError` if absent."""
        try:
            targets = self._succ[source][label]
            targets.remove(target)
        except KeyError:
            raise EdgeNotFoundError(source, label, target) from None
        if not targets:
            del self._succ[source][label]
        sources = self._pred[target][label]
        sources.remove(source)
        if not sources:
            del self._pred[target][label]
        self._labels[label] -= 1
        if self._labels[label] == 0:
            del self._labels[label]
        self._edge_count -= 1
        old_version = self._version
        self._version += 1
        self._record_delta(old_version, edges_removed=((source, label, target),))

    def remove_edges_bulk(self, edges: Iterable[Edge]) -> int:
        """Remove many edges in one pass — the mirror of :meth:`add_edges_bulk`.

        Edges not present (and duplicates within ``edges``) are skipped
        silently; :attr:`version` is bumped **once** for the whole batch
        when anything was removed, so derived caches are invalidated a
        single time instead of once per edge.

        Returns the number of edges that were actually removed.
        """
        collect = self._journal.maxlen != 0
        removed, gone = self._remove_edge_batch(edges, collect)
        if removed:
            old_version = self._version
            self._version += 1
            if collect:
                self._record_delta(
                    old_version,
                    edges_removed=tuple(gone) if gone is not None else (),
                    opaque=gone is None,
                )
        return removed

    def _remove_edge_batch(
        self, edges: Iterable[Edge], collect: bool
    ) -> Tuple[int, Optional[List[Edge]]]:
        """Remove edges without bumping :attr:`version` (journal-aware core).

        Returns ``(removed, gone)``; ``gone`` is ``None`` either when
        ``collect`` is false or when the batch overflowed
        :attr:`journal_edge_limit` (opaque delta).
        """
        succ = self._succ
        pred = self._pred
        labels = self._labels
        limit = self._journal_edge_limit
        removed = 0
        gone: Optional[List[Edge]] = [] if collect else None
        for source, label, target in edges:
            by_label = succ.get(source)
            if by_label is None:
                continue
            targets = by_label.get(label)
            if targets is None or target not in targets:
                continue
            targets.remove(target)
            if not targets:
                del by_label[label]
            sources = pred[target][label]
            sources.remove(source)
            if not sources:
                del pred[target][label]
            labels[label] -= 1
            if labels[label] == 0:
                del labels[label]
            removed += 1
            if gone is not None:
                if removed > limit:
                    gone = None  # oversized batch: record opaquely
                else:
                    gone.append((source, label, target))
        if removed:
            self._edge_count -= removed
        return removed, gone

    def _incident_edges(self, node: Node) -> List[Edge]:
        """Every edge touching ``node`` (self-loops listed once)."""
        incident = [
            (node, label, target)
            for label, targets in self._succ[node].items()
            for target in targets
        ]
        incident.extend(
            (source, label, node)
            for label, sources in self._pred[node].items()
            for source in sources
            # self-loops already appear in the successor sweep
            if source != node
        )
        return incident

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and every incident edge, atomically.

        The node and all its incident edges disappear under **one**
        version bump (and one journal delta), so derived caches are
        invalidated a single time for the whole removal.
        """
        self._require(node)
        collect = self._journal.maxlen != 0
        _, gone = self._remove_edge_batch(self._incident_edges(node), collect)
        del self._succ[node]
        del self._pred[node]
        self._node_attrs.pop(node, None)
        old_version = self._version
        self._version += 1
        if collect:
            self._record_delta(
                old_version,
                edges_removed=tuple(gone) if gone is not None else (),
                nodes_removed=(node,),
                opaque=gone is None,
            )

    def apply_delta(
        self,
        *,
        add_edges: Iterable[Edge] = (),
        remove_edges: Iterable[Edge] = (),
        add_nodes: Iterable[Node] = (),
        remove_nodes: Iterable[Node] = (),
    ) -> GraphDelta:
        """Apply one mixed add/remove batch under a **single** version bump.

        The streaming mutation primitive: a sliding-window tick retires
        old edges and admits new ones in one atomic step, so every
        derived cache is invalidated exactly once — and, via the journal,
        only where the batch can reach.

        Application order: edge removals, node removals (incident edges
        folded into the recorded delta), node additions, edge additions.
        Removals of absent elements are skipped silently (bulk
        semantics); re-added elements are no-ops.

        Returns the :class:`GraphDelta` describing what actually changed
        (with ``old_version == new_version`` when nothing did).  The
        returned delta reports precise contents even when the journal
        recorded the step opaquely or is disabled.
        """
        succ = self._succ
        pred = self._pred
        removed_count, edges_gone = self._remove_edge_batch(remove_edges, True)
        nodes_removed: List[Node] = []
        for node in remove_nodes:
            if node not in succ:
                continue
            _, incident_gone = self._remove_edge_batch(self._incident_edges(node), True)
            if edges_gone is not None:
                if incident_gone is None:
                    edges_gone = None
                else:
                    edges_gone.extend(incident_gone)
            del succ[node]
            del pred[node]
            self._node_attrs.pop(node, None)
            nodes_removed.append(node)
        nodes_added: List[Node] = []
        for node in add_nodes:
            if node not in succ:
                succ[node] = {}
                pred[node] = {}
                nodes_added.append(node)
        added_count, edges_new, created = self._add_edge_batch(add_edges, True)
        nodes_added.extend(created)
        if not (removed_count or added_count or nodes_removed or nodes_added):
            return GraphDelta(self._version, self._version)
        old_version = self._version
        self._version += 1
        delta = GraphDelta(
            old_version,
            self._version,
            edges_added=tuple(edges_new) if edges_new is not None else (),
            edges_removed=tuple(edges_gone) if edges_gone is not None else (),
            nodes_added=tuple(nodes_added),
            nodes_removed=tuple(nodes_removed),
            opaque=edges_new is None or edges_gone is None,
        )
        if self._journal.maxlen != 0:
            self._record_delta(
                old_version,
                edges_added=delta.edges_added,
                edges_removed=delta.edges_removed,
                nodes_added=delta.nodes_added,
                nodes_removed=delta.nodes_removed,
                opaque=delta.opaque,
            )
        return delta

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def _require(self, node: Node) -> None:
        if node not in self._succ:
            raise NodeNotFoundError(node)

    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._succ)

    def __repr__(self) -> str:
        return (
            f"<LabeledGraph {self.name!r}: {self.node_count} nodes, "
            f"{self.edge_count} edges, {len(self._labels)} labels>"
        )

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._succ)

    @property
    def edge_count(self) -> int:
        """Number of distinct labelled edges."""
        return self._edge_count

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes."""
        return iter(self._succ)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges as ``(source, label, target)`` triples."""
        for source, by_label in self._succ.items():
            for label, targets in by_label.items():
                for target in targets:
                    yield (source, label, target)

    def has_edge(self, source: Node, label: Label, target: Node) -> bool:
        """Return True when the edge ``source -[label]-> target`` exists."""
        return (
            source in self._succ
            and label in self._succ[source]
            and target in self._succ[source][label]
        )

    def alphabet(self) -> FrozenSet[Label]:
        """The set of edge labels used in the graph."""
        return frozenset(self._labels)

    def label_counts(self) -> Dict[Label, int]:
        """Return a mapping label -> number of edges carrying it."""
        return dict(self._labels)

    def node_attributes(self, node: Node) -> dict:
        """Return the attribute dictionary of ``node`` (possibly empty)."""
        self._require(node)
        return dict(self._node_attrs.get(node, {}))

    def set_node_attributes(self, node: Node, **attrs) -> None:
        """Update the attribute dictionary of ``node``."""
        self._require(node)
        self._node_attrs.setdefault(node, {}).update(attrs)

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------
    def out_edges(self, node: Node) -> Iterator[Tuple[Label, Node]]:
        """Iterate over the outgoing ``(label, target)`` pairs of ``node``."""
        self._require(node)
        for label, targets in self._succ[node].items():
            for target in targets:
                yield (label, target)

    def in_edges(self, node: Node) -> Iterator[Tuple[Label, Node]]:
        """Iterate over the incoming ``(label, source)`` pairs of ``node``."""
        self._require(node)
        for label, sources in self._pred[node].items():
            for source in sources:
                yield (label, source)

    def successors(self, node: Node, label: Optional[Label] = None) -> Set[Node]:
        """Return the successors of ``node`` (optionally via ``label`` only)."""
        self._require(node)
        if label is not None:
            return set(self._succ[node].get(label, ()))
        result: Set[Node] = set()
        for targets in self._succ[node].values():
            result.update(targets)
        return result

    def predecessors(self, node: Node, label: Optional[Label] = None) -> Set[Node]:
        """Return the predecessors of ``node`` (optionally via ``label`` only)."""
        self._require(node)
        if label is not None:
            return set(self._pred[node].get(label, ()))
        result: Set[Node] = set()
        for sources in self._pred[node].values():
            result.update(sources)
        return result

    def out_degree(self, node: Node) -> int:
        """Number of outgoing edges of ``node``."""
        self._require(node)
        return sum(len(targets) for targets in self._succ[node].values())

    def in_degree(self, node: Node) -> int:
        """Number of incoming edges of ``node``."""
        self._require(node)
        return sum(len(sources) for sources in self._pred[node].values())

    def degree(self, node: Node) -> int:
        """Total degree (in + out) of ``node``."""
        return self.in_degree(node) + self.out_degree(node)

    def out_labels(self, node: Node) -> Set[Label]:
        """The set of labels on outgoing edges of ``node``."""
        self._require(node)
        return set(self._succ[node])

    # ------------------------------------------------------------------
    # indexed snapshot (hot-path acceleration)
    # ------------------------------------------------------------------
    def label_index(self) -> "GraphLabelIndex":
        """Return the cached integer-id / per-label CSR index of the graph.

        The index is built once per :attr:`version` and reused by every
        caller until the next structural mutation; see
        :class:`GraphLabelIndex`.
        """
        index = self._label_index
        if index is None or index.version != self._version:
            refreshed = None
            if index is not None:
                deltas = self.deltas_since(index.version)
                if deltas:
                    refreshed = index._refreshed(self, deltas)
            index = refreshed if refreshed is not None else GraphLabelIndex(self)
            self._label_index = index
        return index

    # ------------------------------------------------------------------
    # copies / views
    # ------------------------------------------------------------------
    @staticmethod
    def _copy_adjacency(
        adjacency: Dict[Node, Dict[Label, Set[Node]]]
    ) -> Dict[Node, Dict[Label, Set[Node]]]:
        return {
            node: {label: set(others) for label, others in by_label.items()}
            for node, by_label in adjacency.items()
        }

    def copy(self, name: Optional[str] = None) -> "LabeledGraph":
        """Return an independent copy of the graph."""
        clone = LabeledGraph(
            name or self.name,
            journal_limit=self.journal_limit,
            journal_edge_limit=self._journal_edge_limit,
        )
        clone._succ = self._copy_adjacency(self._succ)
        clone._pred = self._copy_adjacency(self._pred)
        clone._node_attrs = {node: dict(attrs) for node, attrs in self._node_attrs.items()}
        clone._labels = dict(self._labels)
        clone._edge_count = self._edge_count
        clone._version = 1
        return clone

    def subgraph(self, nodes: Iterable[Node], name: Optional[str] = None) -> "LabeledGraph":
        """Return the subgraph induced by ``nodes``.

        Unknown nodes in ``nodes`` are ignored, so callers can pass
        speculative node sets (e.g. a neighbourhood frontier) without
        pre-filtering.
        """
        # dedup in first-seen order (a dict, not a set) so the induced
        # subgraph's node/edge insertion order follows the caller's order
        keep = dict.fromkeys(node for node in nodes if node in self._succ)
        sub = LabeledGraph(name or f"{self.name}-sub")
        succ = sub._succ
        pred = sub._pred
        labels = sub._labels
        attrs = self._node_attrs
        edge_count = 0
        for node in keep:
            succ[node] = {}
            pred[node] = {}
            node_attrs = attrs.get(node)
            if node_attrs:
                sub._node_attrs[node] = dict(node_attrs)
        for node in keep:
            by_label = succ[node]
            for label, targets in self._succ[node].items():
                kept = targets & keep.keys()
                if not kept:
                    continue
                by_label[label] = kept
                for target in kept:
                    by_label_pred = pred[target]
                    sources = by_label_pred.get(label)
                    if sources is None:
                        by_label_pred[label] = {node}
                    else:
                        sources.add(node)
                labels[label] = labels.get(label, 0) + len(kept)
                edge_count += len(kept)
        sub._edge_count = edge_count
        sub._version = 1 if keep else 0
        return sub

    def reverse(self, name: Optional[str] = None) -> "LabeledGraph":
        """Return a copy with every edge direction flipped."""
        rev = LabeledGraph(name or f"{self.name}-reversed")
        rev._succ = self._copy_adjacency(self._pred)
        rev._pred = self._copy_adjacency(self._succ)
        rev._node_attrs = {node: dict(attrs) for node, attrs in self._node_attrs.items()}
        rev._labels = dict(self._labels)
        rev._edge_count = self._edge_count
        rev._version = 1
        return rev

    # ------------------------------------------------------------------
    # equality (structural)
    # ------------------------------------------------------------------
    def structurally_equal(self, other: "LabeledGraph") -> bool:
        """True when both graphs have the same node set and edge set."""
        if set(self.nodes()) != set(other.nodes()):
            return False
        return set(self.edges()) == set(other.edges())

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, edges: Iterable[Edge], name: str = "graph") -> "LabeledGraph":
        """Build a graph from an iterable of ``(source, label, target)`` triples."""
        graph = cls(name)
        graph.add_edges(edges)
        return graph

    def to_edge_list(self) -> List[Edge]:
        """Return a sorted list of all edges (stable across runs)."""
        return sorted(self.edges(), key=lambda edge: (str(edge[0]), edge[1], str(edge[2])))


class GraphLabelIndex:
    """Immutable integer-id snapshot of a :class:`LabeledGraph`.

    Product-automaton evaluation spends nearly all of its time asking
    "who are the ``label``-predecessors of this node?".  Answering that
    from the dict-of-sets adjacency allocates a fresh set per question;
    this snapshot instead stores, per label, a CSR-style pair of flat
    lists — ``indptr`` (length ``node_count + 1``) and ``indices`` — so
    the predecessors of node id ``v`` via ``label`` are the slice
    ``indices[indptr[v]:indptr[v + 1]]``: zero allocation, integer ids.

    Instances are value snapshots: they record the :attr:`version` of the
    graph they were built from and are replaced by
    :meth:`LabeledGraph.label_index` once the graph mutates.  When the
    delta journal can bridge the gap and only edges changed, the
    replacement reuses the CSR pairs of every untouched label
    (see :meth:`_refreshed`) instead of rebuilding the whole snapshot.
    """

    __slots__ = ("version", "nodes", "node_ids", "node_count", "_rev", "_fwd", "_graph")

    #: owned by the graph itself; LabeledGraph.label_index() performs the
    #: delta refresh, so no workspace registration is needed beyond this.
    __workspace_hook__ = "graph.label_index"

    def __init__(self, graph: "LabeledGraph"):
        self.version: int = graph.version
        self.nodes: Tuple[Node, ...] = tuple(graph._succ)
        self.node_ids: Dict[Node, int] = {node: i for i, node in enumerate(self.nodes)}
        self.node_count: int = len(self.nodes)
        node_ids = self.node_ids

        # per-label CSR reverse adjacency: label -> (indptr, indices)
        self._rev: Dict[Label, Tuple[List[int], List[int]]] = {}
        for label in graph._labels:
            indptr: List[int] = [0]
            indices: List[int] = []
            for node in self.nodes:
                sources = graph._pred[node].get(label)
                if sources:
                    indices.extend([node_ids[source] for source in sources])
                indptr.append(len(indices))
            self._rev[label] = (indptr, indices)

        # forward adjacency is built lazily on first use (backward
        # evaluation — the common case — never touches it); the graph
        # reference is only held until then.
        self._fwd: Optional[Tuple[Tuple[Tuple[Label, int], ...], ...]] = None
        self._graph: Optional["LabeledGraph"] = graph

    def _forward(self) -> Tuple[Tuple[Tuple[Label, int], ...], ...]:
        fwd_cached = self._fwd
        if fwd_cached is not None:
            return fwd_cached
        graph = self._graph
        if graph.version != self.version:
            raise RuntimeError(
                "GraphLabelIndex is stale; re-fetch it via LabeledGraph.label_index()"
            )
        node_ids = self.node_ids
        fwd: List[Tuple[Tuple[Label, int], ...]] = []
        for node in self.nodes:
            out: List[Tuple[Label, int]] = []
            for label, targets in graph._succ[node].items():
                out.extend((label, node_ids[target]) for target in targets)
            fwd.append(tuple(out))
        self._fwd = tuple(fwd)
        self._graph = None
        return self._fwd

    def labels(self) -> FrozenSet[Label]:
        """Labels present in the snapshot."""
        return frozenset(self._rev)

    def reverse_csr(self, label: Label) -> Optional[Tuple[List[int], List[int]]]:
        """The ``(indptr, indices)`` reverse-adjacency pair of ``label``.

        Returns ``None`` when no edge carries ``label`` — callers skip the
        label entirely, which is what makes plans whose alphabet barely
        intersects the graph's cheap to run.
        """
        return self._rev.get(label)

    def predecessor_ids(self, node_id: int, label: Label) -> List[int]:
        """Ids of ``label``-predecessors of ``node_id`` (possibly empty)."""
        csr = self._rev.get(label)
        if csr is None:
            return []
        indptr, indices = csr
        return indices[indptr[node_id] : indptr[node_id + 1]]

    def out_pairs(self, node_id: int) -> Tuple[Tuple[Label, int], ...]:
        """Outgoing ``(label, target_id)`` pairs of ``node_id``."""
        return self._forward()[node_id]

    def _refreshed(
        self, graph: "LabeledGraph", deltas: Tuple["GraphDelta", ...]
    ) -> Optional["GraphLabelIndex"]:
        """A snapshot at ``graph.version`` reusing untouched-label CSRs.

        Node ids are positional, so any delta that changed the node set
        forces a full rebuild (returns ``None``).  Otherwise only the
        labels named by the deltas get their reverse CSR rebuilt; every
        other ``(indptr, indices)`` pair is shared by identity with this
        (now superseded) snapshot — sharing is safe because CSR pairs are
        never mutated after construction.
        """
        touched: Set[Label] = set()
        for delta in deltas:
            if delta.nodes_changed:
                return None
            touched.update(delta.labels_touched)
        fresh = object.__new__(GraphLabelIndex)
        fresh.version = graph.version
        fresh.nodes = self.nodes
        fresh.node_ids = self.node_ids
        fresh.node_count = self.node_count
        rev = dict(self._rev)
        node_ids = self.node_ids
        pred = graph._pred
        for label in touched:
            rev.pop(label, None)
            if label not in graph._labels:
                continue
            indptr: List[int] = [0]
            indices: List[int] = []
            for node in self.nodes:
                sources = pred[node].get(label)
                if sources:
                    indices.extend([node_ids[source] for source in sources])
                indptr.append(len(indices))
            rev[label] = (indptr, indices)
        fresh._rev = rev
        # forward adjacency is edge-dependent in full; rebuild lazily
        fresh._fwd = None
        fresh._graph = graph
        return fresh
