"""Synthetic graph generators.

The evaluation of the companion paper runs on synthetic and biological
graphs.  We provide deterministic (seeded) generators covering the graph
shapes used throughout the experiments:

* uniformly random edge-labelled graphs (Erdős–Rényi style),
* scale-free graphs (preferential attachment) with labelled edges,
* layered DAGs (useful for path-heavy workloads),
* grid / lattice graphs (geography-like),
* chain and cycle graphs (worst cases for path enumeration).

Every generator takes an explicit ``seed`` so experiments are repeatable.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.graph.labeled_graph import Edge, LabeledGraph
from repro.graph.sampling import FenwickSampler, sample_distinct_ints

DEFAULT_ALPHABET: Sequence[str] = ("a", "b", "c", "d")

#: joint (target, label) redraws before a preferential-attachment step
#: falls back to enumerating the untaken pairs (guarantees termination
#: even on adversarial weight distributions)
_MAX_REDRAWS = 64


def _rng(seed: Optional[int]) -> random.Random:
    return random.Random(seed)


def scale_free_edge_count(node_count: int, edges_per_node: int) -> int:
    """The exact number of edges :func:`scale_free_graph` delivers.

    Node ``i`` attaches ``min(edges_per_node, i)`` distinct edges, so the
    total is ``sum(min(edges_per_node, i) for i in range(node_count))``.
    """
    full = max(node_count - edges_per_node, 0)
    ramp = node_count - 1 - full
    return full * edges_per_node + ramp * (ramp + 1) // 2


def random_graph(
    node_count: int,
    edge_count: int,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    *,
    seed: Optional[int] = None,
    name: str = "random",
) -> LabeledGraph:
    """Uniformly random edge-labelled directed graph.

    ``edge_count`` distinct ``(source, label, target)`` triples are drawn
    uniformly (self-loops allowed, as in RDF-style data).  When the
    requested number of edges exceeds the number of possible triples the
    generator saturates at the number of possible triples; otherwise it
    always returns exactly ``edge_count`` edges.

    Triples are sampled as integers from ``range(n·n·|Σ|)`` and decoded,
    so construction is O(m) time and O(m) memory even at saturation —
    the full triple space is never materialised.
    """
    if node_count <= 0:
        raise ValueError("node_count must be positive")
    if edge_count < 0:
        raise ValueError("edge_count must be non-negative")
    if not alphabet:
        raise ValueError("alphabet must not be empty")
    rng = _rng(seed)
    nodes = [f"n{index}" for index in range(node_count)]
    labels = list(alphabet)
    label_count = len(labels)
    possible = node_count * node_count * label_count
    target_edges = min(edge_count, possible)
    per_source = node_count * label_count
    edges: List[Edge] = []
    for code in sample_distinct_ints(rng, possible, target_edges):
        source_index, rest = divmod(code, per_source)
        target_index, label_index = divmod(rest, label_count)
        edges.append((nodes[source_index], labels[label_index], nodes[target_index]))
    graph = LabeledGraph(name)
    graph.add_edges_bulk(edges, nodes=nodes)
    return graph


def _attach_preferential(
    rng: random.Random,
    sampler: FenwickSampler,
    weights: List[int],
    taken: set,
    candidate_count: int,
    label_count: int,
) -> Tuple[int, int]:
    """Draw one fresh ``(target, label)`` pair proportionally to ``weights``.

    Collisions with ``taken`` are redrawn (both components) so the caller
    delivers its exact edge quota; after :data:`_MAX_REDRAWS` collisions
    the untaken pairs are enumerated and one is drawn with the same
    weights, which bounds the worst case without changing determinism.
    """
    for _ in range(_MAX_REDRAWS):
        pair = (sampler.sample(rng), rng.randrange(label_count))
        if pair not in taken:
            return pair
    untaken = [
        (target, label_index)
        for target in range(candidate_count)
        for label_index in range(label_count)
        if (target, label_index) not in taken
    ]
    pair_weights = [weights[target] for target, _ in untaken]
    return rng.choices(untaken, weights=pair_weights, k=1)[0]


def scale_free_graph(
    node_count: int,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    *,
    edges_per_node: int = 2,
    seed: Optional[int] = None,
    name: str = "scale-free",
) -> LabeledGraph:
    """Preferential-attachment graph with labelled edges.

    Each new node attaches ``min(edges_per_node, i)`` outgoing edges whose
    targets are chosen proportionally to the current in-degree (plus one),
    which yields the hub-dominated degree distribution typical of
    biological and social networks.  Duplicate ``(target, label)`` draws
    within one node's attachments are redrawn, so the graph has exactly
    :func:`scale_free_edge_count` edges — the seed implementation silently
    dropped duplicates as ``add_edge`` no-ops and under-delivered.

    Targets are drawn through a Fenwick-tree sampler (O(log n) per draw);
    the seed path rebuilt a cumulative-weight table per edge.
    """
    if node_count <= 0:
        raise ValueError("node_count must be positive")
    if edges_per_node <= 0:
        raise ValueError("edges_per_node must be positive")
    rng = _rng(seed)
    nodes = [f"n{index}" for index in range(node_count)]
    labels = list(alphabet)
    label_count = len(labels)
    # weights[i] = in-degree(nodes[i]) + 1, mirrored into the Fenwick tree;
    # node i - 1 becomes a candidate when node i starts attaching
    weights: List[int] = [1] * node_count
    sampler = FenwickSampler(node_count)
    edges: List[Edge] = []
    for index in range(1, node_count):
        sampler.add(index - 1, 1)
        source = nodes[index]
        taken: set = set()
        for _ in range(min(edges_per_node, index)):
            target_index, label_index = _attach_preferential(
                rng, sampler, weights, taken, index, label_count
            )
            taken.add((target_index, label_index))
            edges.append((source, labels[label_index], nodes[target_index]))
            weights[target_index] += 1
            sampler.add(target_index, 1)
    graph = LabeledGraph(name)
    graph.add_edges_bulk(edges, nodes=nodes)
    return graph


def layered_dag(
    layers: int,
    width: int,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    *,
    edge_probability: float = 0.5,
    seed: Optional[int] = None,
    name: str = "layered-dag",
) -> LabeledGraph:
    """Layered DAG: nodes arranged in ``layers`` layers of ``width`` nodes.

    Edges only go from layer ``i`` to layer ``i + 1``; each possible edge is
    added with ``edge_probability`` and gets a random label.  Every node of
    a non-final layer is guaranteed at least one outgoing edge so that all
    nodes have non-trivial path languages.
    """
    if layers <= 0 or width <= 0:
        raise ValueError("layers and width must be positive")
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge_probability must be within [0, 1]")
    rng = _rng(seed)
    labels = list(alphabet)
    grid = [[f"L{layer}_{slot}" for slot in range(width)] for layer in range(layers)]
    edges: List[Edge] = []
    for layer in range(layers - 1):
        for source in grid[layer]:
            added = False
            for target in grid[layer + 1]:
                if rng.random() < edge_probability:
                    edges.append((source, rng.choice(labels), target))
                    added = True
            if not added:
                target = rng.choice(grid[layer + 1])
                edges.append((source, rng.choice(labels), target))
    graph = LabeledGraph(name)
    graph.add_edges_bulk(edges, nodes=[node for row in grid for node in row])
    return graph


def grid_graph(
    rows: int,
    columns: int,
    *,
    horizontal_label: str = "east",
    vertical_label: str = "south",
    bidirectional: bool = True,
    name: str = "grid",
) -> LabeledGraph:
    """Rectangular lattice, the simplest geography-like graph.

    Horizontal edges carry ``horizontal_label`` and vertical edges
    ``vertical_label``; with ``bidirectional`` the reverse edges carry the
    same labels (public transport usually runs both ways).
    """
    if rows <= 0 or columns <= 0:
        raise ValueError("rows and columns must be positive")
    graph = LabeledGraph(name)
    for row in range(rows):
        for column in range(columns):
            graph.add_node(f"g{row}_{column}", row=row, column=column)
    edges: List[Edge] = []
    for row in range(rows):
        for column in range(columns):
            node = f"g{row}_{column}"
            if column + 1 < columns:
                east = f"g{row}_{column + 1}"
                edges.append((node, horizontal_label, east))
                if bidirectional:
                    edges.append((east, horizontal_label, node))
            if row + 1 < rows:
                south = f"g{row + 1}_{column}"
                edges.append((node, vertical_label, south))
                if bidirectional:
                    edges.append((south, vertical_label, node))
    graph.add_edges_bulk(edges)
    return graph


def chain_graph(length: int, label: str = "next", *, name: str = "chain") -> LabeledGraph:
    """A simple directed chain ``c0 -> c1 -> ... -> c{length}``."""
    if length < 0:
        raise ValueError("length must be non-negative")
    graph = LabeledGraph(name)
    graph.add_edges_bulk(
        ((f"c{index}", label, f"c{index + 1}") for index in range(length)), nodes=("c0",)
    )
    return graph


def cycle_graph(length: int, label: str = "next", *, name: str = "cycle") -> LabeledGraph:
    """A directed cycle of ``length`` nodes (worst case for naive path enumeration)."""
    if length <= 0:
        raise ValueError("length must be positive")
    graph = LabeledGraph(name)
    graph.add_edges_bulk(
        (f"c{index}", label, f"c{(index + 1) % length}") for index in range(length)
    )
    return graph


def star_graph(
    branch_count: int,
    labels: Sequence[str] = DEFAULT_ALPHABET,
    *,
    depth: int = 1,
    seed: Optional[int] = None,
    name: str = "star",
) -> LabeledGraph:
    """A star / shallow tree rooted at ``hub`` with ``branch_count`` branches.

    Branches have ``depth`` edges each, with labels drawn round-robin (or
    randomly when a seed is supplied).  Useful for prefix-tree tests.
    """
    if branch_count <= 0 or depth <= 0:
        raise ValueError("branch_count and depth must be positive")
    rng = _rng(seed) if seed is not None else None
    label_list = list(labels)
    edges: List[Edge] = []
    for branch in range(branch_count):
        previous = "hub"
        for level in range(depth):
            node = f"b{branch}_{level}"
            if rng is None:
                label = label_list[(branch + level) % len(label_list)]
            else:
                label = rng.choice(label_list)
            edges.append((previous, label, node))
            previous = node
    graph = LabeledGraph(name)
    graph.add_edges_bulk(edges, nodes=("hub",))
    return graph
