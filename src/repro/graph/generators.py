"""Synthetic graph generators.

The evaluation of the companion paper runs on synthetic and biological
graphs.  We provide deterministic (seeded) generators covering the graph
shapes used throughout the experiments:

* uniformly random edge-labelled graphs (Erdős–Rényi style),
* scale-free graphs (preferential attachment) with labelled edges,
* layered DAGs (useful for path-heavy workloads),
* grid / lattice graphs (geography-like),
* chain and cycle graphs (worst cases for path enumeration).

Every generator takes an explicit ``seed`` so experiments are repeatable.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.graph.labeled_graph import LabeledGraph

DEFAULT_ALPHABET: Sequence[str] = ("a", "b", "c", "d")


def _rng(seed: Optional[int]) -> random.Random:
    return random.Random(seed)


def random_graph(
    node_count: int,
    edge_count: int,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    *,
    seed: Optional[int] = None,
    name: str = "random",
) -> LabeledGraph:
    """Uniformly random edge-labelled directed graph.

    ``edge_count`` distinct ``(source, label, target)`` triples are drawn
    uniformly (self-loops allowed, as in RDF-style data).  When the
    requested number of edges exceeds the number of possible triples the
    generator saturates at the number of possible triples; otherwise it
    always returns exactly ``edge_count`` edges.  Near saturation, where
    rejection sampling starts colliding constantly, the generator falls
    back to sampling uniformly from the not-yet-taken triples instead of
    silently returning a smaller graph.
    """
    if node_count <= 0:
        raise ValueError("node_count must be positive")
    if edge_count < 0:
        raise ValueError("edge_count must be non-negative")
    if not alphabet:
        raise ValueError("alphabet must not be empty")
    rng = _rng(seed)
    graph = LabeledGraph(name)
    nodes = [f"n{index}" for index in range(node_count)]
    graph.add_nodes(nodes)
    possible = node_count * node_count * len(alphabet)
    target_edges = min(edge_count, possible)
    attempts = 0
    max_attempts = max(20 * target_edges, 1000)
    while graph.edge_count < target_edges and attempts < max_attempts:
        source = rng.choice(nodes)
        target = rng.choice(nodes)
        label = rng.choice(list(alphabet))
        graph.add_edge(source, label, target)
        attempts += 1
    if graph.edge_count < target_edges:
        # rejection sampling exhausted its attempt budget (we are close to
        # saturation): sample the shortfall from the untaken triples
        taken = set(graph.edges())
        remaining = [
            (source, label, target)
            for source in nodes
            for label in alphabet
            for target in nodes
            if (source, label, target) not in taken
        ]
        for source, label, target in rng.sample(remaining, target_edges - graph.edge_count):
            graph.add_edge(source, label, target)
    return graph


def scale_free_graph(
    node_count: int,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    *,
    edges_per_node: int = 2,
    seed: Optional[int] = None,
    name: str = "scale-free",
) -> LabeledGraph:
    """Preferential-attachment graph with labelled edges.

    Each new node attaches ``edges_per_node`` outgoing edges whose targets
    are chosen proportionally to the current in-degree (plus one), which
    yields the hub-dominated degree distribution typical of biological and
    social networks.
    """
    if node_count <= 0:
        raise ValueError("node_count must be positive")
    if edges_per_node <= 0:
        raise ValueError("edges_per_node must be positive")
    rng = _rng(seed)
    graph = LabeledGraph(name)
    nodes = [f"n{index}" for index in range(node_count)]
    graph.add_nodes(nodes)
    # weights[i] = in-degree(nodes[i]) + 1; updated incrementally
    weights: List[int] = [1] * node_count
    for index in range(1, node_count):
        source = nodes[index]
        candidates = list(range(index))
        candidate_weights = [weights[target] for target in candidates]
        for _ in range(min(edges_per_node, index)):
            target_index = rng.choices(candidates, weights=candidate_weights, k=1)[0]
            label = rng.choice(list(alphabet))
            graph.add_edge(source, label, nodes[target_index])
            weights[target_index] += 1
    return graph


def layered_dag(
    layers: int,
    width: int,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    *,
    edge_probability: float = 0.5,
    seed: Optional[int] = None,
    name: str = "layered-dag",
) -> LabeledGraph:
    """Layered DAG: nodes arranged in ``layers`` layers of ``width`` nodes.

    Edges only go from layer ``i`` to layer ``i + 1``; each possible edge is
    added with ``edge_probability`` and gets a random label.  Every node of
    a non-final layer is guaranteed at least one outgoing edge so that all
    nodes have non-trivial path languages.
    """
    if layers <= 0 or width <= 0:
        raise ValueError("layers and width must be positive")
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge_probability must be within [0, 1]")
    rng = _rng(seed)
    graph = LabeledGraph(name)
    grid = [[f"L{layer}_{slot}" for slot in range(width)] for layer in range(layers)]
    for row in grid:
        graph.add_nodes(row)
    for layer in range(layers - 1):
        for source in grid[layer]:
            added = False
            for target in grid[layer + 1]:
                if rng.random() < edge_probability:
                    graph.add_edge(source, rng.choice(list(alphabet)), target)
                    added = True
            if not added:
                target = rng.choice(grid[layer + 1])
                graph.add_edge(source, rng.choice(list(alphabet)), target)
    return graph


def grid_graph(
    rows: int,
    columns: int,
    *,
    horizontal_label: str = "east",
    vertical_label: str = "south",
    bidirectional: bool = True,
    name: str = "grid",
) -> LabeledGraph:
    """Rectangular lattice, the simplest geography-like graph.

    Horizontal edges carry ``horizontal_label`` and vertical edges
    ``vertical_label``; with ``bidirectional`` the reverse edges carry the
    same labels (public transport usually runs both ways).
    """
    if rows <= 0 or columns <= 0:
        raise ValueError("rows and columns must be positive")
    graph = LabeledGraph(name)
    for row in range(rows):
        for column in range(columns):
            graph.add_node(f"g{row}_{column}", row=row, column=column)
    for row in range(rows):
        for column in range(columns):
            node = f"g{row}_{column}"
            if column + 1 < columns:
                east = f"g{row}_{column + 1}"
                graph.add_edge(node, horizontal_label, east)
                if bidirectional:
                    graph.add_edge(east, horizontal_label, node)
            if row + 1 < rows:
                south = f"g{row + 1}_{column}"
                graph.add_edge(node, vertical_label, south)
                if bidirectional:
                    graph.add_edge(south, vertical_label, node)
    return graph


def chain_graph(length: int, label: str = "next", *, name: str = "chain") -> LabeledGraph:
    """A simple directed chain ``c0 -> c1 -> ... -> c{length}``."""
    if length < 0:
        raise ValueError("length must be non-negative")
    graph = LabeledGraph(name)
    graph.add_node("c0")
    for index in range(length):
        graph.add_edge(f"c{index}", label, f"c{index + 1}")
    return graph


def cycle_graph(length: int, label: str = "next", *, name: str = "cycle") -> LabeledGraph:
    """A directed cycle of ``length`` nodes (worst case for naive path enumeration)."""
    if length <= 0:
        raise ValueError("length must be positive")
    graph = LabeledGraph(name)
    for index in range(length):
        graph.add_edge(f"c{index}", label, f"c{(index + 1) % length}")
    return graph


def star_graph(
    branch_count: int,
    labels: Sequence[str] = DEFAULT_ALPHABET,
    *,
    depth: int = 1,
    seed: Optional[int] = None,
    name: str = "star",
) -> LabeledGraph:
    """A star / shallow tree rooted at ``hub`` with ``branch_count`` branches.

    Branches have ``depth`` edges each, with labels drawn round-robin (or
    randomly when a seed is supplied).  Useful for prefix-tree tests.
    """
    if branch_count <= 0 or depth <= 0:
        raise ValueError("branch_count and depth must be positive")
    rng = _rng(seed) if seed is not None else None
    graph = LabeledGraph(name)
    graph.add_node("hub")
    label_list = list(labels)
    for branch in range(branch_count):
        previous = "hub"
        for level in range(depth):
            node = f"b{branch}_{level}"
            if rng is None:
                label = label_list[(branch + level) % len(label_list)]
            else:
                label = rng.choice(label_list)
            graph.add_edge(previous, label, node)
            previous = node
    return graph
