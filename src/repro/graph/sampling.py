"""Sampling primitives for the synthetic graph generators.

Two building blocks keep graph construction O(m):

* :func:`sample_distinct_ints` — a uniform sample of ``k`` distinct
  integers from ``range(population)`` in expected O(k) time and O(k)
  memory **in every regime**.  Near saturation (where rejection sampling
  would collide constantly) it samples the complement instead, so the
  cost stays proportional to the output, never to the population.  The
  seed-era generators materialised the full untaken-triple list — an
  O(n²·|Σ|) allocation — exactly in that regime.
* :class:`FenwickSampler` — a binary indexed tree over non-negative
  integer weights supporting O(log n) weight updates and O(log n)
  weighted draws.  Preferential-attachment generators use it to draw
  targets proportionally to in-degree + 1 without rebuilding a
  cumulative-weight list per edge (the seed path's ``random.choices``
  rebuilt its cumulative table on every draw).

Both primitives consume only ``Random.randrange``, so they are
deterministic for a given seed and independent of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import random
from typing import List, Sequence

__all__ = ["FenwickSampler", "sample_distinct_ints"]


def sample_distinct_ints(rng: random.Random, population: int, k: int) -> List[int]:
    """Return ``k`` distinct integers drawn uniformly from ``range(population)``.

    Expected O(k) time and O(k) memory.  When ``k`` exceeds half the
    population the *complement* (the ``population - k`` integers left
    out) is rejection-sampled instead, which keeps the expected number
    of draws bounded by ``2·k`` in every regime — including full
    saturation (``k == population``), where the result is simply every
    integer.
    """
    if population < 0:
        raise ValueError(f"population must be non-negative, got {population}")
    if not 0 <= k <= population:
        raise ValueError(f"cannot sample {k} distinct ints from range({population})")
    if k == 0:
        return []
    randrange = rng.randrange
    if 2 * k <= population:
        chosen: set = set()
        add = chosen.add
        out: List[int] = []
        append = out.append
        while len(out) < k:
            value = randrange(population)
            if value not in chosen:
                add(value)
                append(value)
        return out
    # dense regime: sample the complement, keep everything else
    drop: set = set()
    add = drop.add
    missing = population - k
    while len(drop) < missing:
        add(randrange(population))
    return [value for value in range(population) if value not in drop]


class FenwickSampler:
    """A Fenwick (binary indexed) tree for weighted sampling.

    Maintains non-negative integer weights for ``size`` slots.  Point
    updates and weighted draws are both O(log size); :attr:`total` is
    the current weight sum.  Draws consume exactly one
    ``rng.randrange(total)`` call, so a generator's random stream is a
    pure function of its seed.
    """

    __slots__ = ("_size", "_tree", "_top_bit", "total")

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        self._size = size
        self._tree = [0] * (size + 1)
        top_bit = 1
        while top_bit * 2 <= size:
            top_bit *= 2
        self._top_bit = top_bit
        self.total = 0

    @classmethod
    def from_weights(cls, weights: Sequence[int]) -> "FenwickSampler":
        """Build a sampler over ``weights`` in O(n)."""
        sampler = cls(len(weights))
        tree = sampler._tree
        size = sampler._size
        for index, weight in enumerate(weights):
            if weight < 0:
                raise ValueError(f"weights must be non-negative, got {weight}")
            tree[index + 1] += weight
        for index in range(1, size + 1):
            parent = index + (index & -index)
            if parent <= size:
                tree[parent] += tree[index]
        sampler.total = sum(weights)
        return sampler

    def add(self, index: int, delta: int) -> None:
        """Add ``delta`` to the weight of slot ``index``."""
        if not 0 <= index < self._size:
            raise IndexError(index)
        self.total += delta
        tree = self._tree
        size = self._size
        position = index + 1
        while position <= size:
            tree[position] += delta
            position += position & -position

    def weight(self, index: int) -> int:
        """The current weight of slot ``index``."""
        return self.prefix_sum(index + 1) - self.prefix_sum(index)

    def prefix_sum(self, count: int) -> int:
        """Sum of the weights of slots ``0 .. count - 1``."""
        total = 0
        tree = self._tree
        position = min(count, self._size)
        while position > 0:
            total += tree[position]
            position -= position & -position
        return total

    def find(self, value: int) -> int:
        """The slot whose cumulative weight interval contains ``value``.

        Returns the smallest index such that
        ``prefix_sum(index + 1) > value``; ``value`` must lie in
        ``[0, total)``.
        """
        if not 0 <= value < self.total:
            raise ValueError(f"value {value} outside [0, {self.total})")
        index = 0
        bit = self._top_bit
        tree = self._tree
        size = self._size
        while bit:
            probe = index + bit
            if probe <= size and tree[probe] <= value:
                index = probe
                value -= tree[probe]
            bit >>= 1
        return index

    def sample(self, rng: random.Random) -> int:
        """Draw one slot with probability proportional to its weight."""
        if self.total <= 0:
            raise ValueError("cannot sample from an empty weight distribution")
        return self.find(rng.randrange(self.total))
