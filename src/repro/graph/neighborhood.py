"""Neighbourhood extraction — the "zoom" primitive of the interactive scenario.

When GPS proposes a node to the user it does not show the whole graph:
it shows the *neighbourhood* of the node, i.e. the subgraph induced by all
nodes and edges at distance at most ``k`` from it (initially ``k = 2``,
Figure 3(a)).  The user may *zoom out*, which increases ``k`` by one
(Figure 3(b)); the newly revealed nodes and edges are highlighted.

The neighbourhood also records its *frontier*: the nodes of the fragment
that still have edges leaving the fragment.  The front-end renders those
as ``...`` continuations, exactly as in the figures of the paper.

Since the zoom-index PR the module is incremental: a
:class:`NeighborhoodIndex` caches BFS **layers** per
``(graph.version, center, directed)``, so zooming out extends the last
frontier by ``step`` layers instead of re-running BFS from radius 0, the
zoom delta is read off the layer structure instead of diffing full
fragment snapshots, and :func:`eccentricity_bound` shares the same
layers.  :class:`Neighborhood` materialises its induced subgraph (and
edge set) lazily — a simulated session that only asks "is this witness
node visible?" never pays for fragment construction at all.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple


from repro.exceptions import NodeNotFoundError
from repro.graph.labeled_graph import Edge, LabeledGraph, Node


class Neighborhood:
    """A bounded fragment of the graph centred on a node.

    Attributes
    ----------
    center:
        The node the fragment is centred on (the node proposed to the user).
    radius:
        The distance bound used to build the fragment.
    graph:
        The induced subgraph (a :class:`LabeledGraph`), materialised on
        first access.
    distances:
        Mapping node -> distance from the centre (ignoring edge direction
        unless the fragment was extracted with ``directed=True``).
    frontier:
        Nodes of the fragment that have at least one edge (in either
        direction; outgoing only for directed fragments) to a node
        outside the fragment; rendered as ``...``.

    The fragment is a value snapshot of the graph at extraction time:
    the node set, distances and frontier are fixed eagerly, while the
    induced subgraph and edge set are derived lazily from the base graph
    and raise a :class:`RuntimeError` if the base graph was mutated
    before their first access (materialise before mutating).
    """

    __slots__ = (
        "center",
        "radius",
        "frontier",
        "_layers",
        "_directed",
        "_source",
        "_source_version",
        "_distances",
        "_node_set",
        "_graph",
        "_edge_set",
    )

    def __init__(
        self,
        center: Node,
        radius: int,
        *,
        layers: Tuple[Tuple[Node, ...], ...],
        directed: bool,
        source: LabeledGraph,
        source_version: int,
        frontier: FrozenSet[Node],
    ):
        self.center = center
        self.radius = radius
        self.frontier = frontier
        self._layers = layers
        self._directed = directed
        self._source: Optional[LabeledGraph] = source
        # repro-lint: disable=REP302 -- value snapshot, not a cache: staleness is surfaced by _check_fresh() on access and fragments are re-extracted, never refreshed in place
        self._source_version = source_version
        self._distances: Optional[Dict[Node, int]] = None
        self._node_set: Optional[FrozenSet[Node]] = None
        self._graph: Optional[LabeledGraph] = None
        self._edge_set: Optional[FrozenSet[Edge]] = None

    # ------------------------------------------------------------------
    # derived views (lazy, cached)
    # ------------------------------------------------------------------
    @property
    def distances(self) -> Dict[Node, int]:
        """Node -> distance-from-centre for every fragment node."""
        distances = self._distances
        if distances is None:
            distances = {
                node: distance
                for distance, layer in enumerate(self._layers)
                for node in layer
            }
            self._distances = distances
        return distances

    @property
    def nodes(self) -> FrozenSet[Node]:
        """The node set of the fragment."""
        node_set = self._node_set
        if node_set is None:
            node_set = frozenset(node for layer in self._layers for node in layer)
            self._node_set = node_set
        return node_set

    def _check_fresh(self) -> None:
        if self._source.version != self._source_version:
            raise RuntimeError(
                "the base graph mutated since this neighbourhood was extracted; "
                "materialise `.graph` / `.edges` before mutating, or re-extract"
            )

    @property
    def graph(self) -> LabeledGraph:
        """The induced subgraph, built on first access.

        Materialising releases the reference to the base graph: a
        retained fragment then pins only itself, not the full graph.
        """
        fragment = self._graph
        if fragment is None:
            self._check_fresh()
            fragment = self._source.subgraph(
                self.nodes, name=f"{self._source.name}:N({self.center},{self.radius})"
            )
            self._graph = fragment
            self._source = None
        return fragment

    @property
    def edges(self) -> FrozenSet[Edge]:
        """The edge set of the fragment."""
        edge_set = self._edge_set
        if edge_set is None:
            if self._graph is None:
                self._check_fresh()
                node_set = self.nodes
                succ = self._source._succ
                edge_set = frozenset(
                    (node, label, target)
                    for node in node_set
                    for label, targets in succ[node].items()
                    for target in targets
                    if target in node_set
                )
            else:
                edge_set = frozenset(self._graph.edges())
            self._edge_set = edge_set
        return edge_set

    def contains(self, node: Node) -> bool:
        """True when ``node`` belongs to the fragment."""
        return node in self.nodes

    def __repr__(self) -> str:
        return (
            f"<Neighborhood center={self.center!r} radius={self.radius} "
            f"nodes={len(self.nodes)}>"
        )


@dataclass(frozen=True)
class NeighborhoodDelta:
    """The difference between two nested neighbourhoods (zoom out).

    The front-end highlights ``new_nodes`` and ``new_edges`` (drawn in blue
    in Figure 3(b) of the paper).
    """

    previous: Neighborhood
    current: Neighborhood
    new_nodes: FrozenSet[Node]
    new_edges: FrozenSet[Edge]

    @property
    def grew(self) -> bool:
        """True when zooming out actually revealed something new."""
        return bool(self.new_nodes or self.new_edges)


def _induced_edges(graph: LabeledGraph, nodes: FrozenSet[Node]) -> FrozenSet[Edge]:
    """Edges of ``graph`` with both endpoints in ``nodes`` (missing nodes skipped)."""
    succ = graph._succ
    return frozenset(
        (node, label, target)
        for node in nodes
        if node in succ
        for label, targets in succ[node].items()
        for target in targets
        if target in nodes
    )


class _BfsState:
    """Append-only BFS layer structure for one ``(center, directed)`` pair.

    ``layers[d]`` holds the nodes at distance exactly ``d``; the structure
    only ever *extends* (one layer at a time), so every
    :class:`Neighborhood` built from a prefix of the layers stays valid
    as later zooms deepen the BFS.
    """

    __slots__ = ("center", "directed", "layers", "distances", "exhausted")

    def __init__(self, center: Node, directed: bool):
        self.center = center
        self.directed = directed
        self.layers: List[Tuple[Node, ...]] = [(center,)]
        self.distances: Dict[Node, int] = {center: 0}
        self.exhausted = False

    def ensure_radius(self, graph: LabeledGraph, radius: int) -> None:
        """Extend the layer structure until it covers ``radius`` (or the component)."""
        succ = graph._succ
        pred = graph._pred
        distances = self.distances
        layers = self.layers
        directed = self.directed
        while not self.exhausted and len(layers) - 1 < radius:
            depth = len(layers)
            next_layer: List[Node] = []
            append = next_layer.append
            for node in layers[-1]:
                for targets in succ[node].values():
                    for other in targets:
                        if other not in distances:
                            distances[other] = depth
                            append(other)
                if not directed:
                    for sources in pred[node].values():
                        for other in sources:
                            if other not in distances:
                                distances[other] = depth
                                append(other)
            if next_layer:
                layers.append(tuple(next_layer))
            else:
                self.exhausted = True

    def ensure_exhausted(self, graph: LabeledGraph) -> None:
        """Run the BFS to the end of the component."""
        while not self.exhausted:
            self.ensure_radius(graph, len(self.layers))

    def boundary(self, graph: LabeledGraph, radius: int) -> FrozenSet[Node]:
        """Fragment nodes with an edge leaving the radius-``radius`` fragment.

        Only nodes at distance exactly ``radius`` can have outside
        neighbours (an outside neighbour of a depth-``d`` node would be
        at depth ``d + 1 <= radius``), and their outside neighbours sit
        exactly in layer ``radius + 1`` — so the boundary falls out of
        the layer structure without scanning the fragment.  Requires the
        layers to cover ``radius + 1`` (call ``ensure_radius`` first).
        """
        layers = self.layers
        if len(layers) <= radius + 1:
            return frozenset()
        outside_depth = radius + 1
        distances = self.distances
        succ = graph._succ
        pred = graph._pred
        boundary: List[Node] = []
        for node in layers[radius]:
            found = False
            for targets in succ[node].values():
                for other in targets:
                    if distances.get(other) == outside_depth:
                        found = True
                        break
                if found:
                    break
            if not found and not self.directed:
                for sources in pred[node].values():
                    for other in sources:
                        if distances.get(other) == outside_depth:
                            found = True
                            break
                    if found:
                        break
            if found:
                boundary.append(node)
        return frozenset(boundary)


class NeighborhoodIndex:
    """Incremental neighbourhood/zoom index of one :class:`LabeledGraph`.

    Caches BFS layer structures per ``(graph.version, center, directed)``
    so that, within one graph version:

    * zooming out from radius ``r`` to ``r + step`` explores only the new
      layers (the seed path re-ran the whole BFS from radius 0);
    * the zoom delta (new nodes / new edges) is read off the layer
      structure instead of diffing full fragment snapshots;
    * :meth:`eccentricity_bound` and every later extraction around the
      same centre share one BFS.

    The index holds the graph weakly: it dies with the graph.  On a
    structural mutation (version bump) it consults the graph's delta
    journal and drops **only** the layer structures whose explored region
    contains a touched node (see :meth:`refresh`); when the journal
    cannot bridge the gap it falls back to dropping everything, exactly
    the pre-journal behaviour.  Layer states are kept in a bounded LRU
    (like the engine's plan cache), so a long session proposing many
    distinct centres cannot retain O(n) BFS state per centre
    indefinitely.
    """

    #: retained (center, directed) layer structures; a session's zoom
    #: ladder touches one centre at a time, so a small bound loses
    #: nothing while capping memory at ~bound x component size
    MAX_STATES = 64

    __slots__ = ("_graph_ref", "_version", "_states", "__weakref__")

    #: delta-refreshed (or cleared) via refresh(), which both _state()
    #: and GraphWorkspace.refresh()/invalidate() drive.
    __workspace_hook__ = "workspace.neighborhoods"

    def __init__(self, graph: LabeledGraph):
        self._graph_ref = weakref.ref(graph)
        self._version = graph.version
        self._states: "OrderedDict[Tuple[Node, bool], _BfsState]" = OrderedDict()

    @property
    def graph(self) -> LabeledGraph:
        graph = self._graph_ref()
        if graph is None:
            raise RuntimeError("the graph of this NeighborhoodIndex was garbage-collected")
        return graph

    def owns(self, graph: LabeledGraph) -> bool:
        """True when this index was built for ``graph`` (and it is alive)."""
        return self._graph_ref() is graph

    def refresh(self, graph: LabeledGraph) -> Tuple[int, int]:
        """Catch up with ``graph``, dropping only delta-reachable states.

        A cached layer structure is still exact after a mutation when no
        touched node (changed-edge endpoint, added or removed node) lies
        in its explored region: every path of length ≤ explored depth
        runs entirely through explored nodes, so a change with both
        endpoints outside cannot alter any recorded distance, layer or
        boundary.  When :meth:`LabeledGraph.deltas_since
        <repro.graph.labeled_graph.LabeledGraph.deltas_since>` cannot
        bridge the gap, every state is dropped (the pre-journal
        behaviour).

        Returns ``(kept, dropped)``.
        """
        if graph.version == self._version:
            return (len(self._states), 0)
        deltas = graph.deltas_since(self._version)
        self._version = graph.version
        states = self._states
        if deltas is None:
            dropped = len(states)
            states.clear()
            return (0, dropped)
        touched = set()
        for delta in deltas:
            touched.update(delta.touched_nodes)
        kept = 0
        dropped = 0
        for key in list(states):
            if touched.isdisjoint(states[key].distances):
                kept += 1
            else:
                del states[key]
                dropped += 1
        return (kept, dropped)

    def cached_ball(
        self, center: Node, radius: int, *, version: int
    ) -> Optional[FrozenSet[Node]]:
        """The undirected radius-``radius`` ball around ``center``, if cached.

        Only answers from a layer structure built at exactly ``version``
        (the caller's own snapshot version) that already covers
        ``radius`` (or exhausted its component); returns ``None``
        otherwise instead of running any BFS.  Used by
        :meth:`LanguageIndex.refreshed
        <repro.learning.language_index.LanguageIndex.refreshed>` to seed
        affected-node sets from work a session already paid for.
        """
        if version != self._version:
            return None
        state = self._states.get((center, False))
        if state is None:
            return None
        if not state.exhausted and len(state.layers) - 1 < radius:
            return None
        return frozenset(
            node for layer in state.layers[: radius + 1] for node in layer
        )

    def _state(self, graph: LabeledGraph, center: Node, directed: bool) -> _BfsState:
        if center not in graph:
            raise NodeNotFoundError(center)
        if graph.version != self._version:
            self.refresh(graph)
        key = (center, directed)
        state = self._states.get(key)
        if state is None:
            state = _BfsState(center, directed)
            self._states[key] = state
            while len(self._states) > self.MAX_STATES:
                self._states.popitem(last=False)
        else:
            self._states.move_to_end(key)
        return state

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def neighborhood(self, center: Node, radius: int, *, directed: bool = False) -> Neighborhood:
        """The neighbourhood of ``center`` at distance at most ``radius``."""
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        graph = self.graph
        state = self._state(graph, center, directed)
        # +1 so the boundary frontier is known from the layer structure
        state.ensure_radius(graph, radius + 1)
        return Neighborhood(
            center,
            radius,
            layers=tuple(state.layers[: radius + 1]),
            directed=directed,
            source=graph,
            source_version=graph.version,
            frontier=state.boundary(graph, radius),
        )

    def zoom(self, neighborhood: Neighborhood, *, step: int = 1, directed: bool = False) -> NeighborhoodDelta:
        """Grow ``neighborhood`` by ``step`` layers and report what appeared.

        The enlarged fragment reuses the cached layers; the delta is the
        slice of layers beyond the previous radius plus the induced edges
        incident to it.
        """
        if step < 1:
            raise ValueError(f"zoom step must be positive, got {step}")
        graph = self.graph
        previous_radius = neighborhood.radius
        enlarged = self.neighborhood(
            neighborhood.center, previous_radius + step, directed=directed
        )
        if (
            neighborhood._source is not graph
            or neighborhood._source_version != graph.version
            or neighborhood._directed != directed
        ):
            # `previous` snapshots a different structure (another graph,
            # an older version, a released source, or the other
            # directedness): fall back to the generic full-diff delta so
            # the contract still holds
            try:
                previous_edges = neighborhood.edges
            except RuntimeError:
                # the previous fragment was never materialised and its
                # base graph has mutated: its exact edge snapshot is
                # unrecoverable, so diff against its nodes as they stand
                # in the current graph (what the user's stale view would
                # show after a refresh)
                previous_edges = _induced_edges(graph, neighborhood.nodes)
            new_nodes = enlarged.nodes - neighborhood.nodes
            new_edges = enlarged.edges - previous_edges
            return NeighborhoodDelta(
                previous=neighborhood,
                current=enlarged,
                new_nodes=frozenset(new_nodes),
                new_edges=frozenset(new_edges),
            )
        new_layers = enlarged._layers[previous_radius + 1 :]
        new_nodes = frozenset(node for layer in new_layers for node in layer)
        node_set = enlarged.nodes
        succ = graph._succ
        pred = graph._pred
        new_edges = set()
        add = new_edges.add
        # walk the new BFS layers (ordered tuples) rather than the
        # frozenset above: same nodes, deterministic order
        for layer in new_layers:
            for node in layer:
                for label, targets in succ[node].items():
                    for target in targets:
                        if target in node_set:
                            add((node, label, target))
                for label, sources in pred[node].items():
                    for source in sources:
                        if source in node_set:
                            add((source, label, node))
        return NeighborhoodDelta(
            previous=neighborhood,
            current=enlarged,
            new_nodes=new_nodes,
            new_edges=frozenset(new_edges),
        )

    def eccentricity_bound(self, center: Node, *, directed: bool = False) -> int:
        """Smallest radius whose neighbourhood covers everything reachable."""
        graph = self.graph
        state = self._state(graph, center, directed)
        state.ensure_exhausted(graph)
        return len(state.layers) - 1


def _shared_index(graph: LabeledGraph) -> NeighborhoodIndex:
    """The process workspace's index (no deprecation warning: internal)."""
    from repro.serving.workspace import default_workspace

    return default_workspace().neighborhoods(graph)




def extract_neighborhood(
    graph: LabeledGraph,
    center: Node,
    radius: int,
    *,
    directed: bool = False,
) -> Neighborhood:
    """Build the neighbourhood of ``center`` at distance at most ``radius``.

    By default distance is measured ignoring edge direction (as in the
    paper's figures, where incoming and outgoing context both help the
    user decide); pass ``directed=True`` to only follow outgoing edges.

    Served from the shared :class:`NeighborhoodIndex` of ``graph``, so
    repeated extractions around the same centre (a zoom ladder, the
    eccentricity probe of the session) pay one BFS between them.
    """
    return _shared_index(graph).neighborhood(center, radius, directed=directed)


def zoom_out(
    graph: LabeledGraph,
    neighborhood: Neighborhood,
    *,
    step: int = 1,
    directed: bool = False,
) -> NeighborhoodDelta:
    """Grow a neighbourhood by ``step`` and report what became visible.

    Returns a :class:`NeighborhoodDelta` whose ``current`` field is the
    enlarged neighbourhood and whose ``new_nodes`` / ``new_edges`` are the
    elements absent from the previous fragment (the blue elements of
    Figure 3(b)).  Incremental: only the new layers are explored.
    """
    return _shared_index(graph).zoom(neighborhood, step=step, directed=directed)


def neighborhood_chain(
    graph: LabeledGraph,
    center: Node,
    radii: Tuple[int, ...] = (2, 3),
    *,
    directed: bool = False,
) -> Tuple[Neighborhood, ...]:
    """Convenience: build neighbourhoods of ``center`` at each radius in ``radii``.

    Used by the figure-reproduction harness to produce the Figure 3(a)
    and 3(b) fragments in one call; the shared index runs one BFS for
    the whole chain.
    """
    index = _shared_index(graph)
    if center not in graph:
        raise NodeNotFoundError(center)
    return tuple(index.neighborhood(center, radius, directed=directed) for radius in radii)


def eccentricity_bound(graph: LabeledGraph, center: Node, *, directed: bool = False) -> int:
    """Smallest radius whose neighbourhood covers every node reachable from ``center``.

    Zooming out beyond this radius never reveals anything new, so the
    interactive session uses it to disable the zoom action.
    """
    return _shared_index(graph).eccentricity_bound(center, directed=directed)
