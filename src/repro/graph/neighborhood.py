"""Neighbourhood extraction — the "zoom" primitive of the interactive scenario.

When GPS proposes a node to the user it does not show the whole graph:
it shows the *neighbourhood* of the node, i.e. the subgraph induced by all
nodes and edges at distance at most ``k`` from it (initially ``k = 2``,
Figure 3(a)).  The user may *zoom out*, which increases ``k`` by one
(Figure 3(b)); the newly revealed nodes and edges are highlighted.

The neighbourhood also records its *frontier*: the nodes of the fragment
that still have edges leaving the fragment.  The front-end renders those
as ``...`` continuations, exactly as in the figures of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set, Tuple

from repro.exceptions import NodeNotFoundError
from repro.graph.labeled_graph import Edge, LabeledGraph, Node


@dataclass(frozen=True)
class Neighborhood:
    """A bounded fragment of the graph centred on a node.

    Attributes
    ----------
    center:
        The node the fragment is centred on (the node proposed to the user).
    radius:
        The distance bound used to build the fragment.
    graph:
        The induced subgraph (a :class:`LabeledGraph`).
    distances:
        Mapping node -> distance from the centre (ignoring edge direction).
    frontier:
        Nodes of the fragment that have at least one edge (in either
        direction) to a node outside the fragment; rendered as ``...``.
    """

    center: Node
    radius: int
    graph: LabeledGraph
    distances: Dict[Node, int] = field(compare=False)
    frontier: FrozenSet[Node] = frozenset()

    @property
    def nodes(self) -> FrozenSet[Node]:
        """The node set of the fragment."""
        return frozenset(self.graph.nodes())

    @property
    def edges(self) -> FrozenSet[Edge]:
        """The edge set of the fragment."""
        return frozenset(self.graph.edges())

    def contains(self, node: Node) -> bool:
        """True when ``node`` belongs to the fragment."""
        return node in self.graph


@dataclass(frozen=True)
class NeighborhoodDelta:
    """The difference between two nested neighbourhoods (zoom out).

    The front-end highlights ``new_nodes`` and ``new_edges`` (drawn in blue
    in Figure 3(b) of the paper).
    """

    previous: Neighborhood
    current: Neighborhood
    new_nodes: FrozenSet[Node]
    new_edges: FrozenSet[Edge]

    @property
    def grew(self) -> bool:
        """True when zooming out actually revealed something new."""
        return bool(self.new_nodes or self.new_edges)


def extract_neighborhood(
    graph: LabeledGraph,
    center: Node,
    radius: int,
    *,
    directed: bool = False,
) -> Neighborhood:
    """Build the neighbourhood of ``center`` at distance at most ``radius``.

    By default distance is measured ignoring edge direction (as in the
    paper's figures, where incoming and outgoing context both help the
    user decide); pass ``directed=True`` to only follow outgoing edges.
    """
    if center not in graph:
        raise NodeNotFoundError(center)
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")

    distances: Dict[Node, int] = {center: 0}
    frontier: Set[Node] = {center}
    for step in range(1, radius + 1):
        next_frontier: Set[Node] = set()
        for node in frontier:
            neighbors: Set[Node] = set(graph.successors(node))
            if not directed:
                neighbors |= graph.predecessors(node)
            for other in neighbors:
                if other not in distances:
                    distances[other] = step
                    next_frontier.add(other)
        frontier = next_frontier
        if not frontier:
            break

    fragment = graph.subgraph(distances, name=f"{graph.name}:N({center},{radius})")

    boundary: Set[Node] = set()
    for node in fragment.nodes():
        outside_out = any(target not in distances for target in graph.successors(node))
        outside_in = False
        if not directed:
            outside_in = any(source not in distances for source in graph.predecessors(node))
        if outside_out or outside_in:
            boundary.add(node)

    return Neighborhood(
        center=center,
        radius=radius,
        graph=fragment,
        distances=distances,
        frontier=frozenset(boundary),
    )


def zoom_out(
    graph: LabeledGraph,
    neighborhood: Neighborhood,
    *,
    step: int = 1,
    directed: bool = False,
) -> NeighborhoodDelta:
    """Grow a neighbourhood by ``step`` and report what became visible.

    Returns a :class:`NeighborhoodDelta` whose ``current`` field is the
    enlarged neighbourhood and whose ``new_nodes`` / ``new_edges`` are the
    elements absent from the previous fragment (the blue elements of
    Figure 3(b)).
    """
    if step < 1:
        raise ValueError(f"zoom step must be positive, got {step}")
    enlarged = extract_neighborhood(
        graph, neighborhood.center, neighborhood.radius + step, directed=directed
    )
    new_nodes = enlarged.nodes - neighborhood.nodes
    new_edges = enlarged.edges - neighborhood.edges
    return NeighborhoodDelta(
        previous=neighborhood,
        current=enlarged,
        new_nodes=frozenset(new_nodes),
        new_edges=frozenset(new_edges),
    )


def neighborhood_chain(
    graph: LabeledGraph,
    center: Node,
    radii: Tuple[int, ...] = (2, 3),
    *,
    directed: bool = False,
) -> Tuple[Neighborhood, ...]:
    """Convenience: build neighbourhoods of ``center`` at each radius in ``radii``.

    Used by the figure-reproduction harness to produce the Figure 3(a)
    and 3(b) fragments in one call.
    """
    if center not in graph:
        raise NodeNotFoundError(center)
    return tuple(
        extract_neighborhood(graph, center, radius, directed=directed) for radius in radii
    )


def eccentricity_bound(graph: LabeledGraph, center: Node, *, directed: bool = False) -> int:
    """Smallest radius whose neighbourhood covers every node reachable from ``center``.

    Zooming out beyond this radius never reveals anything new, so the
    interactive session uses it to disable the zoom action.
    """
    if center not in graph:
        raise NodeNotFoundError(center)
    distances: Dict[Node, int] = {center: 0}
    frontier: Set[Node] = {center}
    radius = 0
    while frontier:
        next_frontier: Set[Node] = set()
        for node in frontier:
            neighbors: Set[Node] = set(graph.successors(node))
            if not directed:
                neighbors |= graph.predecessors(node)
            for other in neighbors:
                if other not in distances:
                    distances[other] = radius + 1
                    next_frontier.add(other)
        if next_frontier:
            radius += 1
        frontier = next_frontier
    return radius
