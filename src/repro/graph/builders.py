"""Builders and interop helpers for :class:`~repro.graph.labeled_graph.LabeledGraph`.

Besides the plain edge-list constructor on the graph class itself, this
module provides

* a fluent :class:`GraphBuilder` used by the examples and tests,
* conversion to / from ``networkx`` MultiDiGraphs (optional dependency;
  only imported on demand), and
* a triple-pattern constructor for RDF-flavoured inputs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.graph.labeled_graph import Edge, LabeledGraph, Label, Node


class GraphBuilder:
    """Fluent builder: ``GraphBuilder().edge("a", "x", "b").edge(...).build()``.

    The builder exists for readability in tests and examples; it simply
    accumulates edges and node attributes and materialises a
    :class:`LabeledGraph` at the end.
    """

    def __init__(self, name: str = "graph"):
        self._name = name
        self._edges: List[Edge] = []
        self._nodes: Dict[Node, dict] = {}

    def node(self, node: Node, **attrs) -> "GraphBuilder":
        """Declare a node (optionally with attributes)."""
        self._nodes.setdefault(node, {}).update(attrs)
        return self

    def edge(self, source: Node, label: Label, target: Node) -> "GraphBuilder":
        """Add one labelled edge."""
        self._edges.append((source, label, target))
        return self

    def path(self, start: Node, *steps: Tuple[Label, Node]) -> "GraphBuilder":
        """Add a whole path: ``path("a", ("x", "b"), ("y", "c"))``."""
        current = start
        for label, node in steps:
            self.edge(current, label, node)
            current = node
        return self

    def chain(self, nodes: Sequence[Node], label: Label) -> "GraphBuilder":
        """Add edges ``nodes[i] -[label]-> nodes[i+1]`` for the whole sequence."""
        for source, target in zip(nodes, nodes[1:]):
            self.edge(source, label, target)
        return self

    def build(self) -> LabeledGraph:
        """Materialise the graph."""
        graph = LabeledGraph(self._name)
        for node, attrs in self._nodes.items():
            graph.add_node(node, **attrs)
        graph.add_edges(self._edges)
        return graph


def from_triples(triples: Iterable[Tuple[Node, Label, Node]], name: str = "graph") -> LabeledGraph:
    """Build a graph from subject / predicate / object triples (RDF style)."""
    return LabeledGraph.from_edges(triples, name=name)


def to_networkx(graph: LabeledGraph):
    """Convert to a ``networkx.MultiDiGraph`` (requires networkx).

    Edge labels are stored under the ``label`` attribute; node attributes
    are copied verbatim.
    """
    import networkx as nx

    result = nx.MultiDiGraph(name=graph.name)
    for node in graph.nodes():
        result.add_node(node, **graph.node_attributes(node))
    for source, label, target in graph.edges():
        result.add_edge(source, target, label=label)
    return result


def from_networkx(nx_graph, *, label_attribute: str = "label", default_label: str = "edge") -> LabeledGraph:
    """Convert a networkx (multi)digraph into a :class:`LabeledGraph`.

    The edge label is read from ``label_attribute``; edges without it get
    ``default_label``.
    """
    graph = LabeledGraph(getattr(nx_graph, "name", None) or "graph")
    for node, attrs in nx_graph.nodes(data=True):
        graph.add_node(node, **attrs)
    for source, target, attrs in nx_graph.edges(data=True):
        graph.add_edge(source, attrs.get(label_attribute, default_label), target)
    return graph


def merge_graphs(graphs: Sequence[LabeledGraph], name: Optional[str] = None) -> LabeledGraph:
    """Union of several graphs (nodes identified by equality of identifiers)."""
    merged = LabeledGraph(name or "+".join(graph.name for graph in graphs) or "merged")
    for graph in graphs:
        for node in graph.nodes():
            merged.add_node(node, **graph.node_attributes(node))
        merged.add_edges(graph.edges())
    return merged


def relabel_nodes(graph: LabeledGraph, mapping: Dict[Node, Node], name: Optional[str] = None) -> LabeledGraph:
    """Return a copy of ``graph`` with node identifiers replaced via ``mapping``.

    Identifiers absent from ``mapping`` are kept as-is.
    """
    renamed = LabeledGraph(name or graph.name)
    for node in graph.nodes():
        renamed.add_node(mapping.get(node, node), **graph.node_attributes(node))
    for source, label, target in graph.edges():
        renamed.add_edge(mapping.get(source, source), label, mapping.get(target, target))
    return renamed
