"""Graph-database substrate: edge-labelled directed graphs and utilities."""

from repro.graph.labeled_graph import LabeledGraph
from repro.graph.paths import (
    Path,
    has_word,
    iter_paths,
    paths_spelling,
    reachable_nodes,
    shortest_words,
    word_count_by_length,
    words_from,
)
from repro.graph.neighborhood import (
    NeighborhoodIndex,
    Neighborhood,
    NeighborhoodDelta,
    eccentricity_bound,
    extract_neighborhood,
    neighborhood_chain,
    zoom_out,
)
from repro.graph.builders import GraphBuilder, from_triples, merge_graphs, relabel_nodes
from repro.graph import datasets, generators, io, statistics

__all__ = [
    "LabeledGraph",
    "Path",
    "has_word",
    "iter_paths",
    "paths_spelling",
    "reachable_nodes",
    "shortest_words",
    "word_count_by_length",
    "words_from",
    "Neighborhood",
    "NeighborhoodDelta",
    "NeighborhoodIndex",
    "eccentricity_bound",
    "extract_neighborhood",
    "neighborhood_chain",
    "zoom_out",
    "GraphBuilder",
    "from_triples",
    "merge_graphs",
    "relabel_nodes",
    "datasets",
    "generators",
    "io",
    "statistics",
]
