"""Serialisation of labelled graphs.

Two formats are supported:

* a JSON document (``{"name": ..., "nodes": [...], "edges": [...]}``) used
  for saving / loading experiment inputs, and
* a simple line-oriented edge-list text format (``source<TAB>label<TAB>target``)
  convenient for interchange with external tools.

The JSON format round-trips every graph produced by this library,
including node attributes and isolated nodes.  The edge-list format is
lossier, and its contract is pinned by tests:

* node ids and labels are written with ``str`` and read back as strings,
  so non-string symbols (e.g. ``int`` node ids) do not round-trip typed;
* isolated nodes are not written at all (the format only has edges);
* symbols containing the separator, a newline, a leading ``#`` (the
  comment marker), or leading/trailing whitespace (stripped on load), and
  empty symbols, cannot be represented — :func:`save_edge_list` refuses
  them with :class:`~repro.exceptions.GraphFormatError` instead of
  writing a file that would load differently (or not at all).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.exceptions import GraphFormatError
from repro.graph.labeled_graph import LabeledGraph

PathLike = Union[str, Path]


def graph_to_dict(graph: LabeledGraph) -> dict:
    """Return a JSON-serialisable dictionary describing ``graph``."""
    return {
        "name": graph.name,
        "nodes": [
            {"id": node, "attrs": graph.node_attributes(node)} for node in sorted(graph.nodes(), key=str)
        ],
        "edges": [list(edge) for edge in graph.to_edge_list()],
    }


def graph_from_dict(payload: dict) -> LabeledGraph:
    """Rebuild a graph from the dictionary produced by :func:`graph_to_dict`."""
    if not isinstance(payload, dict):
        raise GraphFormatError(f"expected a dict, got {type(payload).__name__}")
    if "edges" not in payload or "nodes" not in payload:
        raise GraphFormatError("graph dict must contain 'nodes' and 'edges'")
    graph = LabeledGraph(payload.get("name", "graph"))
    for entry in payload["nodes"]:
        if isinstance(entry, dict):
            graph.add_node(entry["id"], **entry.get("attrs", {}))
        else:
            graph.add_node(entry)
    for edge in payload["edges"]:
        if len(edge) != 3:
            raise GraphFormatError(f"edge must have 3 components, got {edge!r}")
        source, label, target = edge
        graph.add_edge(source, label, target)
    return graph


def save_json(graph: LabeledGraph, path: PathLike) -> None:
    """Write ``graph`` to ``path`` as JSON."""
    Path(path).write_text(json.dumps(graph_to_dict(graph), indent=2, sort_keys=True))


def load_json(path: PathLike) -> LabeledGraph:
    """Load a graph previously written by :func:`save_json`."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise GraphFormatError(f"invalid JSON in {path}: {error}") from error
    return graph_from_dict(payload)


def _edge_list_symbol(value: object, separator: str) -> str:
    """Coerce one edge component to its textual form, refusing unrepresentables."""
    text = str(value)
    if separator in text:
        raise GraphFormatError(
            f"symbol {text!r} contains the separator {separator!r} and cannot be "
            "written to an edge list (it would split into extra fields on load)"
        )
    if "\n" in text or "\r" in text:
        raise GraphFormatError(f"symbol {text!r} contains a newline and cannot be written to an edge list")
    if text.startswith("#"):
        raise GraphFormatError(
            f"symbol {text!r} starts with the comment marker '#'; the line would be skipped on load"
        )
    if not text or text != text.strip():
        raise GraphFormatError(
            f"symbol {text!r} is empty or has leading/trailing whitespace; lines are "
            "stripped on load, so it would load as a different symbol (or break the field count)"
        )
    return text


def save_edge_list(graph: LabeledGraph, path: PathLike, *, separator: str = "\t") -> None:
    """Write ``graph`` as a ``source<sep>label<sep>target`` text file.

    Raises :class:`~repro.exceptions.GraphFormatError` when a node id or
    label cannot be represented in the format (see the module docstring).
    Isolated nodes are silently dropped — use :func:`save_json` when they
    (or node attributes, or non-string symbols) matter.
    """
    lines = [
        separator.join(_edge_list_symbol(part, separator) for part in edge)
        for edge in graph.to_edge_list()
    ]
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))


def load_edge_list(path: PathLike, *, separator: str = "\t", name: str = "graph") -> LabeledGraph:
    """Load a graph from an edge-list text file."""
    graph = LabeledGraph(name)
    for line_number, raw_line in enumerate(Path(path).read_text().splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(separator)
        if len(parts) != 3:
            raise GraphFormatError(
                f"line {line_number}: expected 3 {separator!r}-separated fields, got {len(parts)}"
            )
        source, label, target = parts
        graph.add_edge(source, label, target)
    return graph
