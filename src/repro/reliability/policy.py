"""Retry and deadline policy objects for supervised execution.

:class:`RetryPolicy` is a frozen value object: how many attempts an
operation gets, which exceptions are worth retrying, and how long to
back off between attempts (exponential with a cap, plus seeded jitter so
N sessions retrying the same hiccup do not stampede in lockstep — while
staying replayable, because the jitter stream is seeded).

:class:`Deadline` is the one sanctioned way to bound elapsed time: it is
built on ``time.monotonic`` (wall-clock ``time.time()`` goes backwards
under NTP slew; lint rule REP603 bans it in deadline logic) and takes an
injectable clock so tests can drive it without sleeping.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, Type

from repro.exceptions import DeadlineExceededError, InjectedFault, OracleError

__all__ = ["RetryPolicy", "Deadline"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and seeded jitter.

    Parameters
    ----------
    max_attempts:
        Total attempts including the first (so ``1`` means "never
        retry").  Must be ≥ 1 — every retry loop in this codebase is
        bounded (lint rule REP604).
    backoff_base:
        Delay before the first retry, in seconds.
    backoff_multiplier:
        Growth factor per further retry.
    backoff_cap:
        Upper bound on any single delay.
    jitter_fraction:
        Each delay is scaled by ``1 ± U(0, jitter_fraction)`` drawn from
        the caller-provided seeded rng; ``0`` disables jitter.
    retryable:
        Exception classes worth retrying.  Defaults to injected faults
        and oracle errors; programming errors propagate immediately.
    """

    max_attempts: int = 3
    backoff_base: float = 0.001
    backoff_multiplier: float = 2.0
    backoff_cap: float = 0.05
    jitter_fraction: float = 0.1
    retryable: Tuple[Type[BaseException], ...] = field(
        default=(InjectedFault, OracleError)
    )

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.backoff_base < 0.0:
            raise ValueError(f"backoff_base must be >= 0: {self.backoff_base}")
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"backoff_multiplier must be >= 1: {self.backoff_multiplier}"
            )
        if self.backoff_cap < 0.0:
            raise ValueError(f"backoff_cap must be >= 0: {self.backoff_cap}")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError(f"jitter_fraction must be in [0, 1]: {self.jitter_fraction}")

    def is_retryable(self, error: BaseException) -> bool:
        """Whether ``error`` is worth another attempt under this policy."""
        return isinstance(error, self.retryable)

    def backoff_delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Delay in seconds before retry number ``attempt`` (1-based).

        ``attempt=1`` is the delay after the first failure.  Jitter draws
        come from ``rng`` (seeded by the caller); without an rng the
        undithered exponential schedule is returned.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1: {attempt}")
        delay = self.backoff_base * (self.backoff_multiplier ** (attempt - 1))
        delay = min(delay, self.backoff_cap)
        if rng is not None and self.jitter_fraction > 0.0:
            delay *= 1.0 + rng.uniform(-self.jitter_fraction, self.jitter_fraction)
        return max(delay, 0.0)


class Deadline:
    """An elapsed-time budget anchored on ``time.monotonic``.

    Parameters
    ----------
    budget_seconds:
        Allowed elapsed seconds from construction; ``None`` means
        unbounded (every query reports time remaining as infinite).
    clock:
        Monotonic clock to read; injectable so tests advance time
        without sleeping.
    """

    __slots__ = ("budget", "_clock", "_started")

    def __init__(
        self,
        budget_seconds: Optional[float],
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        if budget_seconds is not None and budget_seconds < 0:
            raise ValueError(f"deadline budget must be >= 0: {budget_seconds}")
        self.budget = budget_seconds
        self._clock = clock
        self._started = clock()

    def elapsed(self) -> float:
        """Seconds since the deadline was armed."""
        return self._clock() - self._started

    def remaining(self) -> float:
        """Seconds left before expiry (``inf`` when unbounded)."""
        if self.budget is None:
            return float("inf")
        return self.budget - self.elapsed()

    def expired(self) -> bool:
        """Whether the budget has been spent."""
        return self.budget is not None and self.elapsed() > self.budget

    def check(self) -> None:
        """Raise :class:`DeadlineExceededError` once the budget is spent."""
        if self.budget is not None:
            elapsed = self.elapsed()
            if elapsed > self.budget:
                raise DeadlineExceededError(elapsed, self.budget)

    def __repr__(self) -> str:
        if self.budget is None:
            return f"<Deadline unbounded, {self.elapsed():.4f}s elapsed>"
        return f"<Deadline {self.remaining():.4f}s of {self.budget:.4f}s remaining>"
