"""Deterministic fault injection: seeded plans, per-site schedules.

A :class:`FaultPlan` is pure configuration — a base seed plus per-site
fault rates.  A :class:`FaultInjector` executes a plan: each named
*site* gets its own ``random.Random`` stream seeded from
``(seed, site)`` with the same ``seed * 1_000_003 + crc32(descriptor)``
fold the experiment runner uses for unit seeds, so whether draw *k* at a
site fires is a pure function of the plan — independent of thread
interleaving at other sites, of process boundaries, and of how many
other sites exist.

Sites are dotted strings naming the seam being broken, e.g.
``"oracle.label"``, ``"workspace.language_index"``,
``"session.advance"``, ``"runner.unit:<id>#a<attempt>"``.  Including the
attempt number in runner sites keeps worker-process schedules
deterministic even though each attempt may land in a fresh process.
"""

from __future__ import annotations

import random
import threading
import zlib
from typing import Any, Dict, List, Mapping, Optional

from repro.exceptions import InjectedFault

__all__ = ["FaultPlan", "FaultInjector", "null_injector"]

_SEED_MODULUS = 2**31


class FaultPlan:
    """Seeded, serialisable description of which call sites fail how often.

    Parameters
    ----------
    seed:
        Base seed; per-site streams derive from it so two plans with the
        same seed and rates produce identical schedules everywhere.
    default_rate:
        Fault probability applied to any site without an explicit rate.
        ``0.0`` (the default) means a site never fires unless listed in
        ``rates`` — so an injector built from ``FaultPlan(seed=s)`` is
        inert.
    rates:
        Mapping of site name → fault probability in ``[0, 1]``.  A site
        name may also be a prefix ending in ``"*"`` (e.g.
        ``"runner.unit*"``) matching every site it prefixes; exact
        entries win over prefix entries.
    """

    def __init__(
        self,
        seed: int,
        *,
        default_rate: float = 0.0,
        rates: Optional[Mapping[str, float]] = None,
    ):
        self.seed = int(seed)
        self.default_rate = float(default_rate)
        self.rates: Dict[str, float] = dict(rates) if rates else {}
        for site, rate in self.rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"fault rate for {site!r} must be in [0, 1]: {rate}")
        if not 0.0 <= self.default_rate <= 1.0:
            raise ValueError(f"default fault rate must be in [0, 1]: {default_rate}")

    def sub_seed(self, site: str) -> int:
        """Deterministic per-site seed, folded like experiment unit seeds."""
        return (self.seed * 1_000_003 + zlib.crc32(site.encode("utf-8"))) % _SEED_MODULUS

    def rate_for(self, site: str) -> float:
        """Fault probability at ``site`` (exact entry, longest ``*`` prefix, default)."""
        exact = self.rates.get(site)
        if exact is not None:
            return exact
        best: Optional[float] = None
        best_length = -1
        for pattern, rate in self.rates.items():
            if pattern.endswith("*") and site.startswith(pattern[:-1]):
                if len(pattern) > best_length:
                    best, best_length = rate, len(pattern)
        return self.default_rate if best is None else best

    def schedule(self, site: str, draws: int) -> List[bool]:
        """The first ``draws`` fire/no-fire decisions at ``site``.

        A pure function of the plan — used by the property tests to
        assert cross-process identity without running an injector.
        """
        rate = self.rate_for(site)
        rng = random.Random(self.sub_seed(site))
        return [rng.random() < rate for _ in range(draws)]

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (for shipping plans to worker processes)."""
        return {"seed": self.seed, "default_rate": self.default_rate, "rates": dict(self.rates)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`as_dict` output."""
        return cls(
            payload["seed"],
            default_rate=payload.get("default_rate", 0.0),
            rates=payload.get("rates"),
        )

    def __repr__(self) -> str:
        return (
            f"FaultPlan(seed={self.seed}, default_rate={self.default_rate}, "
            f"rates={self.rates!r})"
        )


class _SiteState:
    """Per-site stream + counters (internal to :class:`FaultInjector`)."""

    __slots__ = ("rng", "rate", "draws", "fired")

    def __init__(self, rng: random.Random, rate: float):
        self.rng = rng
        self.rate = rate
        self.draws = 0
        self.fired = 0


class FaultInjector:
    """Executes a :class:`FaultPlan`: thread-safe per-site fault streams.

    ``check(site)`` advances the site's seeded stream by one draw and
    raises :class:`~repro.exceptions.InjectedFault` when the draw fires.
    Each site's stream is independent, so concurrent sessions touching
    different sites (or the same site in any order) cannot perturb each
    other's schedules *per site*; a single site shared by concurrent
    callers serialises its draws under the injector lock.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._sites: Dict[str, _SiteState] = {}

    def _state(self, site: str) -> _SiteState:
        state = self._sites.get(site)
        if state is None:
            state = self._sites[site] = _SiteState(
                random.Random(self.plan.sub_seed(site)), self.plan.rate_for(site)
            )
        return state

    def fires(self, site: str) -> bool:
        """Advance ``site``'s stream one draw; return whether it fired."""
        with self._lock:
            state = self._state(site)
            index = state.draws
            state.draws = index + 1
            fired = state.rng.random() < state.rate
            if fired:
                state.fired += 1
            return fired

    def check(self, site: str) -> None:
        """Raise :class:`InjectedFault` when ``site``'s next draw fires."""
        with self._lock:
            state = self._state(site)
            index = state.draws
            state.draws = index + 1
            if state.rng.random() < state.rate:
                state.fired += 1
                raise InjectedFault(site, index)

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-site ``{"draws": n, "fired": k}`` counters."""
        with self._lock:
            return {
                site: {"draws": state.draws, "fired": state.fired}
                for site, state in sorted(self._sites.items())
            }

    def __repr__(self) -> str:
        with self._lock:
            draws = sum(state.draws for state in self._sites.values())
            fired = sum(state.fired for state in self._sites.values())
        return f"<FaultInjector sites={len(self._sites)} draws={draws} fired={fired}>"


def null_injector() -> Optional[FaultInjector]:
    """The "faults off" injector: simply ``None``.

    Call sites guard with ``if injector is not None`` so the disabled
    path executes the exact pre-reliability instruction stream —
    bit-identical replay with faults disabled is the contract, and the
    cheapest implementation of "no injector" is no object at all.
    """
    return None
