"""Fault injection and supervision for the serving and campaign layers.

The serving core (:mod:`repro.serving`) and the campaign runner
(:mod:`repro.experiments.runner`) assume every component call succeeds.
This package makes failure a first-class, *deterministic* input:

* :mod:`repro.reliability.faults` — a seeded :class:`FaultPlan` /
  :class:`FaultInjector` pair that decides, per named *site*
  (``"oracle.label"``, ``"workspace.language_index"``, ``"runner.unit"``,
  …), whether each successive call fails.  Per-site sub-seeds are
  CRC32-derived exactly like :func:`repro.experiments.seeding` unit
  seeds, so the fault schedule is a pure function of ``(seed, site)``
  and replays bit-identically across processes.
* :mod:`repro.reliability.policy` — bounded :class:`RetryPolicy` with
  exponential backoff and seeded jitter, and a ``time.monotonic``-based
  :class:`Deadline`.
* :mod:`repro.reliability.supervisor` — :class:`SupervisionPolicy` and
  the per-session :class:`CircuitBreaker` that quarantines a session
  whose oracle keeps failing, so one bad client degrades gracefully
  instead of wedging the manager loop.

Everything is off by default: a ``SessionManager`` without a policy and
an oracle without an injector behave bit-identically to the
pre-reliability code paths.
"""

from __future__ import annotations

from repro.reliability.faults import FaultInjector, FaultPlan, null_injector
from repro.reliability.policy import Deadline, RetryPolicy
from repro.reliability.supervisor import CircuitBreaker, SupervisionPolicy

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "null_injector",
    "RetryPolicy",
    "Deadline",
    "CircuitBreaker",
    "SupervisionPolicy",
]
