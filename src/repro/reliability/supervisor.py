"""Supervision: circuit breaking and the per-session policy bundle.

A :class:`SupervisionPolicy` bundles every knob the
:class:`~repro.serving.manager.SessionManager` needs to drive sessions
through faults: the per-step :class:`~repro.reliability.policy.RetryPolicy`,
a per-step deadline, circuit-breaker thresholds, and the jitter seed.

A :class:`CircuitBreaker` tracks one session's failure history.  It
trips — quarantining the session — when either the *consecutive*-failure
threshold is crossed (the oracle is persistently down) or the *total*
failure budget is spent (the oracle flaps too often to be worth serving).
Quarantine is graceful degradation: the manager retires the session with
a partial-result trace instead of letting one bad client wedge the loop
or poison the cross-session memo.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Optional

from repro.reliability.policy import RetryPolicy

__all__ = ["CircuitBreaker", "SupervisionPolicy"]


class CircuitBreaker:
    """Failure accounting for one supervised session.

    Parameters
    ----------
    consecutive_limit:
        Trip after this many failures in a row (a success resets the
        streak).
    total_limit:
        Trip after this many failures overall, regardless of successes
        in between; ``None`` disables the total budget.
    """

    __slots__ = ("consecutive_limit", "total_limit", "consecutive", "total", "tripped_by")

    def __init__(self, consecutive_limit: int = 5, total_limit: Optional[int] = 20):
        if consecutive_limit < 1:
            raise ValueError(f"consecutive_limit must be >= 1: {consecutive_limit}")
        if total_limit is not None and total_limit < 1:
            raise ValueError(f"total_limit must be >= 1: {total_limit}")
        self.consecutive_limit = consecutive_limit
        self.total_limit = total_limit
        self.consecutive = 0
        self.total = 0
        self.tripped_by: Optional[str] = None

    def record_success(self) -> None:
        """A step succeeded: the consecutive streak resets."""
        self.consecutive = 0

    def record_failure(self) -> None:
        """A step failed (after exhausting its retries)."""
        self.consecutive += 1
        self.total += 1
        if self.tripped_by is None:
            if self.consecutive >= self.consecutive_limit:
                self.tripped_by = (
                    f"{self.consecutive} consecutive failures "
                    f"(limit {self.consecutive_limit})"
                )
            elif self.total_limit is not None and self.total >= self.total_limit:
                self.tripped_by = f"{self.total} total failures (limit {self.total_limit})"

    @property
    def tripped(self) -> bool:
        """Whether the breaker is open (session must be quarantined)."""
        return self.tripped_by is not None

    def __repr__(self) -> str:
        state = f"OPEN ({self.tripped_by})" if self.tripped else "closed"
        return (
            f"<CircuitBreaker {state}, {self.consecutive} consecutive / "
            f"{self.total} total failures>"
        )


@dataclass(frozen=True)
class SupervisionPolicy:
    """Every knob the session manager needs to drive sessions through faults.

    Parameters
    ----------
    retry:
        Per-step retry policy (attempts, backoff, retryable classes).
    step_deadline_seconds:
        Elapsed-time budget per ``session.advance()`` step measured on
        ``time.monotonic``; an overrun counts as a step failure toward
        the breaker.  ``None`` disables deadlines.
    breaker_consecutive_limit / breaker_total_limit:
        Thresholds for the per-session :class:`CircuitBreaker`.
    jitter_seed:
        Base seed for backoff jitter; each session derives its stream
        from ``(jitter_seed, session_id)`` so retry timing is replayable
        per session yet decorrelated across sessions.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    step_deadline_seconds: Optional[float] = None
    breaker_consecutive_limit: int = 5
    breaker_total_limit: Optional[int] = 20
    jitter_seed: int = 0

    def breaker(self) -> CircuitBreaker:
        """A fresh breaker configured with this policy's thresholds."""
        return CircuitBreaker(
            consecutive_limit=self.breaker_consecutive_limit,
            total_limit=self.breaker_total_limit,
        )

    def jitter_rng(self, session_id: str) -> random.Random:
        """The session's seeded jitter stream (CRC32-folded like unit seeds)."""
        seed = (self.jitter_seed * 1_000_003 + zlib.crc32(session_id.encode("utf-8"))) % (
            2**31
        )
        return random.Random(seed)
