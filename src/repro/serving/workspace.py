"""The :class:`GraphWorkspace`: explicit ownership of all read-mostly state.

PRs 1–5 made every per-session structure incremental and cached, but
ownership stayed implicit: the query engine, the language indexes, the
neighbourhood indexes and the informativeness classifiers all lived in
module-level registries.  That is fine for one session; a server
multiplexing many sessions over one graph needs an explicit handle it
can size, invalidate and account for — and it needs *build-once*
semantics when N cold sessions race on the same index.  (The registries
survived PRs 6–7 as deprecated shims; PR 8 retired them — every consumer
now holds a workspace, or implicitly uses :func:`default_workspace`.)

A workspace owns exactly the state that is **read-mostly and keyed on**
``(graph.version, …)``:

* one :class:`~repro.query.engine.QueryEngine` (plan + answer caches),
* the :class:`~repro.learning.language_index.LanguageIndex` per
  ``(graph, version, bound)``,
* the :class:`~repro.graph.neighborhood.NeighborhoodIndex` per graph,
* the :class:`~repro.learning.informativeness.SessionClassifier` registry
  (per evolving example set — per-session state, but registered here so
  the workspace can account for builds),
* a handle on the canonical-form cache used to wrap learned DFAs,
* content fingerprints per ``(graph, version)``, and
* the cross-session result memo used by
  :class:`~repro.serving.manager.SessionManager` for deduplication.

Everything *per-session* — the :class:`~repro.learning.examples.ExampleSet`,
the hypothesis, the interaction records — stays on the session object.

Build-once semantics: expensive builds (the language index above all) are
guarded by per-key locks with double-checked lookup, so N sessions racing
on a cold index pay **one** build while the global registry lock is never
held across a build.  The global lock is only ever taken for dictionary
bookkeeping; per-key locks are only taken while *not* holding the global
lock — this ordering is what makes the scheme deadlock-free.

Failure safety: a factory that raises must poison **nothing**.  Every
build path caches its result only after the constructor returns, releases
its per-key lock on the way out (``with`` discipline), and discards the
per-key lock entry on failure — so the next caller re-enters the cold
path, retries the build, and succeeds if the fault was transient.  This
is what lets the fault-injection harness (:mod:`repro.reliability`) break
workspace builds mid-session without leaving the workspace wedged.

An optional :class:`~repro.reliability.FaultInjector` can be attached
(``injector=``) to exercise exactly that: each build path checks its
named fault site before constructing.  Without an injector the checks
vanish (``None`` guard), keeping the disabled path bit-identical.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from collections import OrderedDict
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.automata.canonical import CanonicalFormCache, shared_canonical_cache
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.neighborhood import NeighborhoodIndex
from repro.learning.examples import ExampleSet
from repro.learning.informativeness import SessionClassifier
from repro.learning.language_index import LanguageIndex
from repro.query.engine import QueryEngine


class GraphWorkspace:
    """Shared, thread-safe home of every cross-session cache.

    One workspace serves any number of graphs and sessions; a server
    typically holds one per tenant (or one per process — see
    :func:`default_workspace`).  All accessors are safe to call from
    multiple threads; cold builds of the same key are coalesced so
    concurrent sessions pay for one build, not N.

    Parameters
    ----------
    engine:
        The query engine to use; a fresh one is created when omitted.
    canonical:
        Canonical-form cache used when wrapping learned DFAs.  Defaults
        to the process-shared cache (canonical forms are pure functions
        of automaton structure, so sharing across workspaces is always
        sound); pass a private :class:`CanonicalFormCache` to isolate
        accounting.
    max_memo_entries:
        Bound on retained cross-session dedup memo entries (LRU).
    injector:
        Optional :class:`~repro.reliability.FaultInjector`; when set,
        build paths check their fault sites (``"workspace.language_index"``,
        ``"workspace.neighborhoods"``, ``"workspace.classifier"``) before
        constructing, so chaos tests can exercise the failure-safety
        contract.  ``None`` (the default) leaves every path untouched.
    """

    def __init__(
        self,
        *,
        engine: Optional[QueryEngine] = None,
        canonical: Optional[CanonicalFormCache] = None,
        max_memo_entries: int = 1024,
        injector: Optional[Any] = None,
    ):
        self.engine = engine if engine is not None else QueryEngine()
        self.canonical = canonical if canonical is not None else shared_canonical_cache()
        self.injector = injector
        # registry bookkeeping only — never held across an index build
        self._lock = threading.RLock()
        # key -> lock serialising the (rare, expensive) cold build of key
        self._build_locks: Dict[Hashable, threading.Lock] = {}
        self._language: "weakref.WeakKeyDictionary[LabeledGraph, Dict[int, LanguageIndex]]" = (
            weakref.WeakKeyDictionary()
        )
        self._neighborhoods: "weakref.WeakKeyDictionary[LabeledGraph, NeighborhoodIndex]" = (
            weakref.WeakKeyDictionary()
        )
        # examples -> [(graph, bound, classifier)]; keyed weakly so a
        # finished session's classifier dies with its example set
        self._classifiers: "weakref.WeakKeyDictionary[ExampleSet, List[tuple]]" = (
            weakref.WeakKeyDictionary()
        )
        self._fingerprints: "weakref.WeakKeyDictionary[LabeledGraph, Tuple[int, str]]" = (
            weakref.WeakKeyDictionary()
        )
        self._memo: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._max_memo_entries = max_memo_entries
        # counters surfaced by stats(); the serving tests assert on them
        self._language_builds = 0
        self._language_restrictions = 0
        self._language_refreshes = 0
        self._language_hits = 0
        self._neighborhood_builds = 0
        self._classifier_builds = 0
        self._failed_builds = 0
        self._memo_hits = 0
        self._memo_misses = 0

    def _check_fault(self, site: str) -> None:
        """Fault-injection hook: no-op unless an injector is attached."""
        if self.injector is not None:
            self.injector.check(site)

    def _record_failed_build(self, key: Hashable) -> None:
        """Bookkeeping after a build raised: count it, drop the key's lock.

        Dropping the ``_build_locks`` entry keeps the lock dict from
        accumulating keys that never produced a value; the next caller
        re-creates the lock on its own cold path.  Nothing else is
        touched — by the failure-safety contract, a raising factory must
        have cached nothing.
        """
        with self._lock:
            self._failed_builds += 1
            self._build_locks.pop(key, None)

    # ------------------------------------------------------------------
    # language indexes (build-once under per-key locks)
    # ------------------------------------------------------------------
    def language_index(self, graph: LabeledGraph, max_length: int) -> LanguageIndex:
        """The shared :class:`LanguageIndex` of ``graph`` at ``max_length``.

        Built at most once per ``(graph, version, bound)`` even under
        concurrent access; when a current index at a *larger* bound
        already exists, the smaller one is derived by restriction instead
        of re-walking the graph (the session's path-validation step asks
        for each neighbourhood radius below the session bound).

        Failure-safe: if the build raises, the per-key lock is released,
        nothing is cached, and the next caller retries the build.
        """
        with self._lock:
            index = self._current_language_index(graph, max_length)
            if index is not None:
                self._language_hits += 1
                return index
            key = ("language", id(graph), max_length)
            build_lock = self._build_locks.get(key)
            if build_lock is None:
                build_lock = self._build_locks[key] = threading.Lock()
        with build_lock:
            with self._lock:
                index = self._current_language_index(graph, max_length)
                if index is not None:
                    self._language_hits += 1
                    return index
                per_graph_entries = self._language.get(graph, {})
                larger = [
                    cached
                    for bound, cached in per_graph_entries.items()
                    if bound > max_length and cached.version == graph.version
                ]
                stale = per_graph_entries.get(max_length)
                neighborhoods = self._neighborhoods.get(graph)
            try:
                self._check_fault("workspace.language_index")
                index = None
                kind = "build"
                if stale is not None:
                    # try the delta journal first: rescoring the nodes a
                    # delta can reach is far cheaper than a full walk
                    deltas = graph.deltas_since(stale.version)
                    if deltas:
                        index = stale.refreshed(
                            graph, deltas, neighborhoods=neighborhoods
                        )
                        if index is not None:
                            kind = "refresh"
                if index is None and larger:
                    source = min(larger, key=lambda cached: cached.max_length)
                    index = source.restricted(max_length)
                    kind = "restrict"
                if index is None:
                    index = LanguageIndex(graph, max_length)
            except BaseException:
                self._record_failed_build(key)
                raise
            with self._lock:
                per_graph = self._language.get(graph)
                if per_graph is None:
                    per_graph = self._language.setdefault(graph, {})
                per_graph[max_length] = index
                if kind == "refresh":
                    self._language_refreshes += 1
                elif kind == "restrict":
                    self._language_restrictions += 1
                else:
                    self._language_builds += 1
        return index

    def _current_language_index(
        self, graph: LabeledGraph, max_length: int
    ) -> Optional[LanguageIndex]:
        """Registry lookup (caller holds the lock); ``None`` on miss/stale."""
        per_graph = self._language.get(graph)
        if per_graph is None:
            return None
        index = per_graph.get(max_length)
        if index is None or index.version != graph.version:
            return None
        return index

    # ------------------------------------------------------------------
    # neighbourhood indexes
    # ------------------------------------------------------------------
    def neighborhoods(self, graph: LabeledGraph) -> NeighborhoodIndex:
        """The shared :class:`NeighborhoodIndex` of ``graph``.

        The index is version-aware internally (stale BFS layers are
        dropped on access), so one instance per graph lives for the
        graph's whole lifetime.

        The construction runs under a per-key build lock, *not* the
        registry lock: :class:`NeighborhoodIndex` construction is cheap
        (layers are lazy) but a raising factory held under the registry
        lock would convoy every other workspace accessor behind the
        failure.  Failure-safe like :meth:`language_index`.
        """
        with self._lock:
            index = self._neighborhoods.get(graph)
            if index is not None:
                return index
            key = ("neighborhoods", id(graph))
            build_lock = self._build_locks.get(key)
            if build_lock is None:
                build_lock = self._build_locks[key] = threading.Lock()
        with build_lock:
            with self._lock:
                index = self._neighborhoods.get(graph)
                if index is not None:
                    return index
            try:
                self._check_fault("workspace.neighborhoods")
                index = NeighborhoodIndex(graph)
            except BaseException:
                self._record_failed_build(key)
                raise
            with self._lock:
                existing = self._neighborhoods.get(graph)
                if existing is not None:
                    return existing  # lost a race with another builder
                self._neighborhoods[graph] = index
                self._neighborhood_builds += 1
        return index

    # ------------------------------------------------------------------
    # informativeness classifiers
    # ------------------------------------------------------------------
    def classifier(
        self, graph: LabeledGraph, examples: ExampleSet, *, max_length: int
    ) -> SessionClassifier:
        """The shared :class:`SessionClassifier` of ``(graph, examples, bound)``.

        Classifiers are per-session state (they track one evolving example
        set) but registering them here lets every consumer of the triple —
        the session loop, strategies, propagation, the halt check —
        resolve to one instance, and routes their language-index builds
        through :meth:`language_index` so the workspace accounts for them.
        """
        with self._lock:
            entries = self._classifiers.get(examples)
            if entries is not None:
                for entry_graph, bound, classifier in entries:
                    if entry_graph is graph and bound == max_length:
                        return classifier
        # build outside the registry lock: the constructor builds the
        # language index (guarded by its own per-key lock above).  The
        # registry is only touched after the constructor returns, so a
        # raising build leaves no entry behind — not even an empty list.
        try:
            self._check_fault("workspace.classifier")
            classifier = SessionClassifier(
                graph, examples, max_length=max_length, index_provider=self.language_index
            )
        except BaseException:
            with self._lock:
                self._failed_builds += 1
            raise
        with self._lock:
            entries = self._classifiers.setdefault(examples, [])
            for entry_graph, bound, existing in entries:
                if entry_graph is graph and bound == max_length:
                    return existing  # lost the race: adopt the winner
            entries.append((graph, max_length, classifier))
            self._classifier_builds += 1
        return classifier

    # ------------------------------------------------------------------
    # graph fingerprints
    # ------------------------------------------------------------------
    def graph_fingerprint(self, graph: LabeledGraph) -> str:
        """Content digest of the graph's structure, cached per version.

        Two graphs with equal node and edge sets share the fingerprint
        regardless of insertion order or object identity — it anchors the
        cross-session dedup key.
        """
        with self._lock:
            cached = self._fingerprints.get(graph)
            if cached is not None and cached[0] == graph.version:
                return cached[1]
        digest = hashlib.sha1()
        for node in sorted(graph.nodes(), key=str):
            digest.update(repr(node).encode())
            digest.update(b"\x00")
        for edge in sorted(graph.edges(), key=lambda e: tuple(map(str, e))):
            digest.update(repr(edge).encode())
            digest.update(b"\x01")
        fingerprint = digest.hexdigest()
        with self._lock:
            self._fingerprints[graph] = (graph.version, fingerprint)
        return fingerprint

    # ------------------------------------------------------------------
    # cross-session result memo
    # ------------------------------------------------------------------
    def memo_get(self, key: Hashable) -> Optional[Any]:
        """Cached cross-session value for ``key`` (``None`` on miss)."""
        with self._lock:
            value = self._memo.get(key)
            if value is None:
                self._memo_misses += 1
                return None
            self._memo.move_to_end(key)
            self._memo_hits += 1
            return value

    def memo_put(self, key: Hashable, value: Any) -> None:
        """Store a cross-session value (bounded LRU)."""
        with self._lock:
            self._memo[key] = value
            self._memo.move_to_end(key)
            while len(self._memo) > self._max_memo_entries:
                self._memo.popitem(last=False)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def invalidate(self, graph: Optional[LabeledGraph] = None) -> Dict[str, int]:
        """Drop entries invalidated by graph mutation.

        With a ``graph``, drops exactly the entries built against versions
        older than ``graph.version`` — language indexes, the cached
        fingerprint and the engine's answer cache for that graph; entries
        of other graphs (and current-version entries) are untouched.
        Without one, drops stale entries of every registered graph.

        Returns counters of what was dropped (the serving tests pin
        these).  Invalidation is a memory-hygiene operation, not a
        correctness requirement: all registries are version-checked on
        access anyway.  See :meth:`refresh` for the delta-aware
        alternative that upgrades entries in place instead of dropping
        them.
        """
        dropped = {"language_indexes": 0, "fingerprints": 0}
        with self._lock:
            graphs = [graph] if graph is not None else list(self._language.keys())
            for target in graphs:
                per_graph = self._language.get(target)
                if per_graph is not None:
                    stale = [
                        bound
                        for bound, index in per_graph.items()
                        if index.version != target.version
                    ]
                    for bound in stale:
                        del per_graph[bound]
                    dropped["language_indexes"] += len(stale)
                cached = self._fingerprints.get(target)
                if cached is not None and cached[0] != target.version:
                    del self._fingerprints[target]
                    dropped["fingerprints"] += 1
                self.engine.invalidate(target)
        return dropped

    def refresh(self, graph: Optional[LabeledGraph] = None) -> Dict[str, int]:
        """Upgrade stale entries in place via the graph's delta journal.

        The streaming counterpart of :meth:`invalidate`: where
        ``invalidate`` *drops* entries built against older versions,
        ``refresh`` consults :meth:`LabeledGraph.deltas_since
        <repro.graph.labeled_graph.LabeledGraph.deltas_since>` and

        * **rescopes** each stale :class:`LanguageIndex` to the
          delta-reachable nodes (:meth:`LanguageIndex.refreshed
          <repro.learning.language_index.LanguageIndex.refreshed>`),
          seeding affected sets from cached neighbourhood balls,
        * **retains** every engine answer whose plan the deltas cannot
          have changed (:meth:`QueryEngine.refresh
          <repro.query.engine.QueryEngine.refresh>`),
        * **keeps** every neighbourhood layer structure disjoint from the
          touched nodes (:meth:`NeighborhoodIndex.refresh
          <repro.graph.neighborhood.NeighborhoodIndex.refresh>`), and
        * drops the stale content fingerprint (content changed by
          definition).

        When the journal cannot bridge the gap — window exceeded, opaque
        batch, or a disabled journal — every layer falls back to the
        whole-drop ``invalidate`` has always performed, so ``refresh`` is
        never less correct than ``invalidate``, only warmer.  With a
        ``graph``, only that graph's entries are touched; without one,
        every registered graph is refreshed.

        Returns counters of what was refreshed, retained and dropped.
        """
        counters = {
            "language_indexes_refreshed": 0,
            "language_indexes_dropped": 0,
            "fingerprints_dropped": 0,
            "answers_retained": 0,
            "answers_dropped": 0,
            "neighborhood_states_kept": 0,
            "neighborhood_states_dropped": 0,
        }
        if graph is not None:
            targets = [graph]
        else:
            with self._lock:
                seen: Dict[int, LabeledGraph] = {}
                for registry in (self._language, self._neighborhoods, self._fingerprints):
                    for target in registry.keys():
                        seen[id(target)] = target
                targets = list(seen.values())
        for target in targets:
            self._refresh_graph(target, counters)
        return counters

    def _refresh_graph(self, target: LabeledGraph, counters: Dict[str, int]) -> None:
        """Refresh every structure of one graph (counters updated in place)."""
        with self._lock:
            per_graph = self._language.get(target)
            stale = (
                [
                    (bound, index)
                    for bound, index in per_graph.items()
                    if index.version != target.version
                ]
                if per_graph is not None
                else []
            )
            neighborhoods = self._neighborhoods.get(target)
        # language upgrades happen before neighborhoods.refresh() — each
        # index seeds its affected set from balls cached at its own base
        # version — and outside the registry lock (never hold it across a
        # build); the identity re-check below makes losing a race benign.
        for bound, index in stale:
            deltas = target.deltas_since(index.version)
            fresh = (
                index.refreshed(target, deltas, neighborhoods=neighborhoods)
                if deltas
                else None
            )
            with self._lock:
                registry = self._language.get(target)
                if registry is None or registry.get(bound) is not index:
                    continue  # replaced or dropped by a concurrent caller
                if fresh is None:
                    del registry[bound]
                    counters["language_indexes_dropped"] += 1
                else:
                    registry[bound] = fresh
                    counters["language_indexes_refreshed"] += 1
                    self._language_refreshes += 1
        with self._lock:
            cached = self._fingerprints.get(target)
            if cached is not None and cached[0] != target.version:
                del self._fingerprints[target]
                counters["fingerprints_dropped"] += 1
        engine_counters = self.engine.refresh(target)
        counters["answers_retained"] += engine_counters["answers_retained"]
        counters["answers_dropped"] += engine_counters["answers_dropped"]
        if neighborhoods is not None:
            kept, dropped = neighborhoods.refresh(target)
            counters["neighborhood_states_kept"] += kept
            counters["neighborhood_states_dropped"] += dropped
        # Warm the graph-owned label index while we are already paying
        # for a refresh: label_index() delta-upgrades (or rebuilds) on
        # version mismatch, so the next engine evaluation finds it hot
        # instead of rebuilding on the serving path.  This is also the
        # workspace-side driver of hook 'graph.label_index' (REP310).
        target.label_index()

    def stats(self) -> Dict[str, Any]:
        """Build / hit counters for every registry this workspace owns."""
        with self._lock:
            language_entries = sum(len(per) for per in self._language.values())
            return {
                "language_index_builds": self._language_builds,
                "language_index_restrictions": self._language_restrictions,
                "language_index_refreshes": self._language_refreshes,
                "language_index_hits": self._language_hits,
                "language_index_entries": language_entries,
                "neighborhood_index_builds": self._neighborhood_builds,
                "classifier_builds": self._classifier_builds,
                "failed_builds": self._failed_builds,
                "memo_hits": self._memo_hits,
                "memo_misses": self._memo_misses,
                "memo_entries": len(self._memo),
                "engine": self.engine.stats(),
                "canonical": self.canonical.stats(),
            }

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"<GraphWorkspace {len(self._language)} graphs, "
                f"{self._language_builds} index builds, "
                f"{len(self._memo)} memo entries>"
            )


# ----------------------------------------------------------------------
# the process-wide default workspace
# ----------------------------------------------------------------------
_DEFAULT: Optional[GraphWorkspace] = None
_DEFAULT_LOCK = threading.Lock()


def default_workspace() -> GraphWorkspace:
    """The process-wide :class:`GraphWorkspace`.

    The implicit sharing default: sessions, free functions and CLI
    commands that are not handed an explicit workspace all resolve to
    this one, so they share one set of caches per process.  Servers and
    tests that need isolation construct their own workspace instead.
    """
    global _DEFAULT
    workspace = _DEFAULT
    if workspace is None:
        with _DEFAULT_LOCK:
            workspace = _DEFAULT
            if workspace is None:
                workspace = _DEFAULT = GraphWorkspace()
    return workspace


def reset_default_workspace() -> None:
    """Replace the process-wide workspace with a fresh one (test hygiene)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        _DEFAULT = None
