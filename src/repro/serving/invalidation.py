"""Workspace invalidation hooks: the registry REP302 checks against.

Every structure that snapshots a graph version (``self.version =
graph.version`` and friends) is a version-keyed cache, and the
delta-journal architecture requires each one to be reachable by exactly
one invalidation/refresh path — otherwise a mutation could leave it
serving stale state with nobody responsible for noticing.  Such classes
declare which path owns them via a ``__workspace_hook__`` class
attribute naming an entry of :data:`WORKSPACE_HOOKS`; the ``repro
lint`` rule ``REP302`` enforces the declaration statically, and
``tests/serving/test_invalidation_hooks.py`` cross-validates at runtime
that every declared hook is registered here.

The registry is deliberately import-light: hook names are plain
strings, so declaring one never creates an import cycle (the graph
layer must not import the serving layer).
"""

from __future__ import annotations

from typing import Dict

__all__ = ["WORKSPACE_HOOKS", "hook_names"]

#: hook name -> who drives the refresh/drop of structures declaring it
WORKSPACE_HOOKS: Dict[str, str] = {
    # GraphLabelIndex: owned by the graph itself; LabeledGraph.label_index()
    # performs the delta refresh (untouched-label CSR reuse) or rebuild on
    # every stale access, so no external driver is needed.
    "graph.label_index": (
        "LabeledGraph.label_index() — delta-refreshes via "
        "GraphLabelIndex._refreshed, rebuilding only touched labels"
    ),
    # _GraphCache: the engine's per-graph answer cache; QueryEngine.refresh()
    # upgrades it (alphabet-disjoint answers retained), QueryEngine
    # access paths upgrade lazily, GraphWorkspace.refresh()/invalidate()
    # drive it per graph.
    "engine.answers": (
        "QueryEngine.refresh() / _graph_cache() — retains answers whose "
        "plan alphabet is disjoint from every touched label"
    ),
    # LanguageIndex: GraphWorkspace.language_index() and
    # GraphWorkspace.refresh() call LanguageIndex.refreshed() to rescore
    # only delta-reachable nodes, dropping to a scratch rebuild when the
    # journal cannot bridge.
    "workspace.language_index": (
        "GraphWorkspace.refresh() / language_index() — rescores only "
        "nodes within max_length-1 backward hops of a delta seed"
    ),
    # NeighborhoodIndex: refresh() drops only layer structures whose
    # explored region intersects the touched nodes; driven by its own
    # _state() accessor and by GraphWorkspace.refresh().
    "workspace.neighborhoods": (
        "NeighborhoodIndex.refresh() — drops only BFS layer stacks whose "
        "distance map contains a touched node"
    ),
}


def hook_names() -> frozenset:
    """The set of registered hook names (for validation)."""
    return frozenset(WORKSPACE_HOOKS)
