"""Many-session serving core: shared workspaces and the async manager.

* :mod:`repro.serving.workspace` — :class:`GraphWorkspace`, the explicit
  owner of every read-mostly cache keyed on ``(graph.version, …)``;
* :mod:`repro.serving.manager` — :class:`SessionManager`, the async
  front end admitting / driving / retiring interactive sessions over one
  workspace with cross-session deduplication;
* :mod:`repro.serving.invalidation` — the registry of workspace
  invalidation hooks version-snapshotting structures declare
  (``__workspace_hook__``), enforced by lint rule REP302.
"""

from repro.serving.invalidation import WORKSPACE_HOOKS, hook_names
from repro.serving.manager import SessionHandle, SessionManager, session_dedup_key
from repro.serving.workspace import (
    GraphWorkspace,
    default_workspace,
    reset_default_workspace,
)

__all__ = [
    "GraphWorkspace",
    "WORKSPACE_HOOKS",
    "hook_names",
    "SessionHandle",
    "SessionManager",
    "default_workspace",
    "reset_default_workspace",
    "session_dedup_key",
]
