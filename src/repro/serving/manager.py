"""Async many-session front end: admit / drive / retire over one workspace.

The paper's Figure 2 loop serves one user.  A server multiplexes many:
each admitted session becomes an awaitable state machine — ``drive()``
steps :meth:`~repro.interactive.session.InteractiveSession.step` and
yields control between interactions, where a real deployment would await
the human's answer.  All sessions draw their shared components from one
:class:`~repro.serving.workspace.GraphWorkspace`, so N concurrent
sessions on one graph share one query engine, one language index per
bound and one neighbourhood index.

Cross-session deduplication (the cluster-representative idiom): sessions
whose dedup key — ``(graph fingerprint, example signature, strategy,
halt, session configuration)`` — coincide are provably going to replay
the same interactions and learn the same hypothesis, so only one
*representative* runs the loop; the members adopt its result from the
workspace memo (``deduped=True`` on their :class:`SessionResult`).  A
session is dedup-eligible only when every ingredient of its behaviour is
captured by the key: the oracle must expose a ``dedup_signature()`` (and
return one — unseeded noisy users return ``None``), the strategy and
halt condition must report deterministic signatures, and the example set
must start empty.  Anything unknown disables dedup for that session —
correctness first, savings second.

Supervision (PR 8): pass ``supervision=SupervisionPolicy(...)`` to drive
sessions through component failures — each ``advance()`` step gets a
``time.monotonic`` deadline and a bounded retry budget with seeded-jitter
backoff, and a per-session circuit breaker quarantines sessions whose
oracle keeps failing.  A quarantined session retires gracefully with a
partial-result trace (``SessionResult.quarantined``) that is never
shared through the dedup memo.  Without a policy the driving path is the
exact pre-supervision instruction stream — bit-identical replay.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, replace
from typing import Any, Dict, Hashable, Optional, Tuple

from repro.exceptions import SessionNotFoundError
from repro.graph.labeled_graph import LabeledGraph
from repro.interactive.session import InteractiveSession, SessionResult
from repro.reliability.policy import Deadline
from repro.reliability.supervisor import SupervisionPolicy
from repro.serving.workspace import GraphWorkspace, default_workspace


def session_dedup_key(
    session: InteractiveSession, workspace: GraphWorkspace
) -> Optional[Hashable]:
    """The cross-session dedup key of ``session`` (``None``: not eligible).

    Two sessions with equal keys run the identical interaction sequence:
    the graph content, the oracle's answers, the proposal strategy, the
    halt condition and every loop parameter are all pinned by the key.
    ``None`` from any component (an unseeded random strategy, a noisy
    oracle without a seed, a custom condition without a signature) makes
    the session ineligible rather than wrongly deduped.
    """
    if session.records or session.examples.labeled_nodes:
        return None  # mid-flight or pre-seeded: history is not in the key
    user_signature = getattr(session.user, "dedup_signature", None)
    if user_signature is None:
        return None
    example_signature = user_signature()
    if example_signature is None:
        return None
    strategy_signature = getattr(session.strategy, "signature", lambda: None)()
    if strategy_signature is None:
        return None
    halt_signature = getattr(session.halt_condition, "signature", lambda: None)()
    if halt_signature is None:
        return None
    return (
        "session",
        workspace.graph_fingerprint(session.graph),
        example_signature,
        strategy_signature,
        halt_signature,
        session.path_validation,
        session.max_path_length,
        session.initial_radius,
        session.max_radius,
    )


@dataclass
class SessionHandle:
    """Book-keeping record of one admitted session."""

    session_id: str
    session: InteractiveSession
    dedup_key: Optional[Hashable]
    result: Optional[SessionResult] = None
    deduped: bool = False
    steps_driven: int = 0
    # representative/member coordination; created lazily inside the
    # running event loop (binding an Event outside a loop breaks on 3.9)
    _done: Optional["asyncio.Event"] = None

    def done_event(self) -> "asyncio.Event":
        if self._done is None:
            self._done = asyncio.Event()
        return self._done


class SessionManager:
    """Admits, drives and retires interactive sessions over one workspace.

    Usage::

        manager = SessionManager(workspace)
        for user in users:
            manager.admit(graph, user, max_interactions=30)
        results = manager.run_all()          # or: await manager.drive_all()

    ``drive()`` is cooperative: between steps it awaits ``checkpoint()``
    (by default ``asyncio.sleep(0)``), the seam where a deployment awaits
    the human's answer or yields to other sessions on the event loop.
    """

    def __init__(
        self,
        workspace: Optional[GraphWorkspace] = None,
        *,
        dedup: bool = True,
        max_concurrent: Optional[int] = None,
        checkpoint=None,
        supervision: Optional[SupervisionPolicy] = None,
        injector=None,
    ):
        self.workspace = workspace if workspace is not None else default_workspace()
        self.dedup = dedup
        if max_concurrent is not None and max_concurrent < 1:
            raise ValueError("max_concurrent must be positive")
        self._max_concurrent = max_concurrent
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._checkpoint = checkpoint
        #: optional SupervisionPolicy; None = unsupervised (bit-identical
        #: to the pre-reliability driving path)
        self.supervision = supervision
        #: optional FaultInjector consulted before every supervised step
        #: (site "manager.step:<session_id>")
        self.injector = injector
        self._handles: Dict[str, SessionHandle] = {}
        # dedup key -> session_id of the in-flight representative
        self._representatives: Dict[Hashable, str] = {}
        self._admitted = 0
        self._completed = 0
        self._deduped = 0
        self._quarantined = 0
        self._step_retries = 0
        self._deadline_overruns = 0

    # ------------------------------------------------------------------
    # admission / retirement
    # ------------------------------------------------------------------
    def admit(
        self,
        graph: LabeledGraph,
        user,
        *,
        session_id: Optional[str] = None,
        **session_kwargs,
    ) -> str:
        """Create a session over the manager's workspace and register it.

        ``session_kwargs`` are forwarded to
        :class:`~repro.interactive.session.InteractiveSession` (strategy,
        halt condition, bounds, …).  Returns the session id.
        """
        if session_id is None:
            session_id = f"s{self._admitted:05d}"
        if session_id in self._handles:
            raise ValueError(f"session id {session_id!r} already admitted")
        session = InteractiveSession(
            graph, user, workspace=self.workspace, **session_kwargs
        )
        dedup_key = session_dedup_key(session, self.workspace) if self.dedup else None
        self._handles[session_id] = SessionHandle(session_id, session, dedup_key)
        self._admitted += 1
        return session_id

    def retire(self, session_id: str) -> Optional[SessionResult]:
        """Drop a session from the manager, returning its result if any."""
        handle = self._handles.pop(session_id, None)
        if handle is None:
            raise SessionNotFoundError(session_id)
        if handle.dedup_key is not None:
            if self._representatives.get(handle.dedup_key) == session_id:
                del self._representatives[handle.dedup_key]
        return handle.result

    def session(self, session_id: str) -> InteractiveSession:
        """The live session object behind ``session_id``."""
        return self._handle(session_id).session

    def result(self, session_id: str) -> Optional[SessionResult]:
        """The session's result, or ``None`` while it is still running."""
        return self._handle(session_id).result

    def session_ids(self) -> Tuple[str, ...]:
        """Ids of every admitted (not yet retired) session."""
        return tuple(self._handles)

    def _handle(self, session_id: str) -> SessionHandle:
        handle = self._handles.get(session_id)
        if handle is None:
            raise SessionNotFoundError(session_id)
        return handle

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    async def drive(self, session_id: str) -> SessionResult:
        """Run ``session_id`` to completion, yielding between interactions.

        Dedup-eligible sessions first consult the workspace memo, then
        elect a representative among concurrently admitted twins; only
        the representative executes the loop.
        """
        handle = self._handle(session_id)
        if handle.result is not None:
            return handle.result
        key = handle.dedup_key
        if key is not None:
            memoised = self.workspace.memo_get(("result",) + key[1:])
            if memoised is not None:
                return self._adopt(handle, memoised)
            owner = self._representatives.get(key)
            if owner is not None and owner != session_id:
                return await self._follow(handle, self._handles.get(owner))
            self._representatives[key] = session_id
        try:
            result = await self._run(handle)
        finally:
            handle.done_event().set()
        if key is not None and not result.quarantined:
            # a quarantined partial trace must never be shared: members
            # of the dedup cluster would adopt a result that only
            # reflects where *this* session's faults happened to land
            self.workspace.memo_put(("result",) + key[1:], result)
        return result

    async def drive_all(self) -> Dict[str, SessionResult]:
        """Drive every admitted-but-unfinished session concurrently."""
        pending = [
            handle.session_id
            for handle in self._handles.values()
            if handle.result is None
        ]
        results = await asyncio.gather(
            *(self.drive(session_id) for session_id in pending)
        )
        return dict(zip(pending, results))

    def run_all(self) -> Dict[str, SessionResult]:
        """Synchronous convenience wrapper around :meth:`drive_all`."""
        return asyncio.run(self.drive_all())

    async def _run(self, handle: SessionHandle) -> SessionResult:
        semaphore = self._slots()
        if semaphore is None:
            return await self._step_to_completion(handle)
        async with semaphore:
            return await self._step_to_completion(handle)

    async def _step_to_completion(self, handle: SessionHandle) -> SessionResult:
        if self.supervision is not None:
            return await self._step_supervised(handle)
        session = handle.session
        await self._yield_point()
        while session.advance():
            handle.steps_driven += 1
            # the await seam: a deployment awaits the next oracle answer
            # here; simulated oracles answer synchronously inside step()
            await self._yield_point()
        result = session.finish()
        handle.result = result
        self._completed += 1
        return result

    async def _step_supervised(self, handle: SessionHandle) -> SessionResult:
        """Drive one session through faults: retry, deadline, breaker.

        Each ``advance()`` attempt is gated by the manager's fault
        injector (site ``manager.step:<id>``) and timed against the
        policy's monotonic step deadline.  Retryable failures back off
        (seeded jitter per session) and retry within the policy's
        bounded budget; a deadline overrun is not retried — the step's
        effect already happened — but counts against the breaker.  When
        the breaker trips or a step's retry budget is spent, the session
        is quarantined: sealed via ``session.abort()`` with its partial
        trace.  Non-retryable errors propagate unchanged.
        """
        session = handle.session
        policy = self.supervision
        retry = policy.retry
        breaker = policy.breaker()
        jitter = policy.jitter_rng(handle.session_id)
        fault_site = f"manager.step:{handle.session_id}"
        await self._yield_point()
        advancing = True
        while advancing:
            attempt = 0
            while True:  # bounded: quarantines once attempt reaches retry.max_attempts
                attempt += 1
                deadline = Deadline(policy.step_deadline_seconds)
                try:
                    if self.injector is not None:
                        self.injector.check(fault_site)
                    advancing = session.advance()
                except Exception as error:
                    if not retry.is_retryable(error):
                        raise
                    breaker.record_failure()
                    if breaker.tripped:
                        return self._quarantine(handle, breaker.tripped_by)
                    if attempt >= retry.max_attempts:
                        return self._quarantine(
                            handle,
                            f"retry budget spent: {attempt} attempt(s), "
                            f"last error {error!r}",
                        )
                    self._step_retries += 1
                    await asyncio.sleep(retry.backoff_delay(attempt, jitter))
                    continue
                if deadline.expired():
                    # the step completed but took too long; its effect on
                    # the session stands (advance() is not replayable), so
                    # charge the breaker instead of retrying
                    self._deadline_overruns += 1
                    breaker.record_failure()
                    if breaker.tripped:
                        return self._quarantine(handle, breaker.tripped_by)
                else:
                    breaker.record_success()
                break
            if advancing:
                handle.steps_driven += 1
                await self._yield_point()
        result = session.finish()
        handle.result = result
        self._completed += 1
        return result

    def _quarantine(self, handle: SessionHandle, reason: str) -> SessionResult:
        """Retire a session the breaker gave up on, keeping its partial trace."""
        result = handle.session.abort(f"quarantined: {reason}")
        handle.result = result
        self._completed += 1
        self._quarantined += 1
        return result

    async def _follow(
        self, handle: SessionHandle, owner: Optional[SessionHandle]
    ) -> SessionResult:
        """Wait for the representative, then adopt its result."""
        if owner is not None:
            await owner.done_event().wait()
            if owner.result is not None and not owner.result.quarantined:
                return self._adopt(handle, owner.result)
        # the representative was retired, failed or quarantined: run
        # independently
        if handle.dedup_key is not None:
            self._representatives.setdefault(handle.dedup_key, handle.session_id)
        result = await self._run(handle)
        handle.done_event().set()
        return result

    def _adopt(self, handle: SessionHandle, shared: SessionResult) -> SessionResult:
        """Attach the representative's result to a deduped member."""
        result = replace(shared, records=list(shared.records), deduped=True)
        handle.result = result
        handle.deduped = True
        handle.done_event().set()
        self._completed += 1
        self._deduped += 1
        return result

    async def _yield_point(self) -> None:
        if self._checkpoint is not None:
            value = self._checkpoint()
            if asyncio.iscoroutine(value):
                await value
        else:
            await asyncio.sleep(0)

    def _slots(self) -> Optional[asyncio.Semaphore]:
        if self._max_concurrent is None:
            return None
        if self._semaphore is None:
            # created lazily so the semaphore binds to the running loop
            self._semaphore = asyncio.Semaphore(self._max_concurrent)
        return self._semaphore

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Admission / completion / dedup counters."""
        return {
            "admitted": self._admitted,
            "active": len(self._handles),
            "completed": self._completed,
            "deduped": self._deduped,
            "representatives": len(self._representatives),
            "quarantined": self._quarantined,
            "step_retries": self._step_retries,
            "deadline_overruns": self._deadline_overruns,
        }

    def __repr__(self) -> str:
        return (
            f"<SessionManager {len(self._handles)} sessions, "
            f"{self._completed} completed, {self._deduped} deduped>"
        )
