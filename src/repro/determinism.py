"""Determinism helpers: the one sanctioned source of fresh entropy.

Everything seeded in this repository must draw from an explicit
``random.Random(seed)`` (enforced by ``repro lint`` rule family REP100).
The single place where *fresh* entropy is legitimate is picking a seed
when the caller declined to supply one — a generator invoked with
``seed=None`` still has to produce *some* graph, and that seed must be
reported/recordable so the run stays replayable after the fact.

:func:`entropy_seed` is that escape hatch.  It is the only call site of
unseeded randomness REP100 tolerates (via its inline suppression below);
new code wanting "a random seed" must route through it rather than
touching ``random`` module state, so every entropy draw in the codebase
stays greppable from this one function.
"""

from __future__ import annotations

import random

__all__ = ["entropy_seed"]


def entropy_seed() -> int:
    """A fresh 32-bit seed drawn from OS entropy.

    Use only to *pick* a seed that is subsequently passed around
    explicitly (and ideally logged); never as a substitute for accepting
    a ``seed`` parameter.
    """
    # the sole sanctioned entropy draw; everything downstream is seeded
    return random.Random().randrange(1 << 32)  # repro-lint: disable=REP102 -- sole sanctioned OS-entropy draw, documented module contract
