"""Exception hierarchy for the GPS reproduction.

All library errors derive from :class:`GPSError` so applications can catch
one base class.  Sub-classes are grouped by subsystem (graph, regex,
automata, learning, interactive session).
"""

from __future__ import annotations


class GPSError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class GraphError(GPSError):
    """Base class for graph-database errors."""


class NodeNotFoundError(GraphError):
    """Raised when a node identifier is not present in the graph."""

    def __init__(self, node):
        super().__init__(f"node not found in graph: {node!r}")
        self.node = node


class EdgeNotFoundError(GraphError):
    """Raised when a requested edge does not exist."""

    def __init__(self, source, label, target):
        super().__init__(f"edge not found: {source!r} -[{label}]-> {target!r}")
        self.source = source
        self.label = label
        self.target = target


class DuplicateNodeError(GraphError):
    """Raised when adding a node identifier that already exists (strict mode)."""

    def __init__(self, node):
        super().__init__(f"node already exists: {node!r}")
        self.node = node


class GraphFormatError(GraphError):
    """Raised when parsing a serialised graph fails."""


class RegexError(GPSError):
    """Base class for regular-expression errors."""


class RegexSyntaxError(RegexError):
    """Raised when a regular expression cannot be parsed.

    Carries the offending expression and the position of the error so a
    front-end can point at the problem.
    """

    def __init__(self, message, expression=None, position=None):
        detail = message
        if expression is not None and position is not None:
            detail = f"{message} (in {expression!r} at position {position})"
        super().__init__(detail)
        self.expression = expression
        self.position = position


class AutomatonError(GPSError):
    """Base class for automata errors."""


class InvalidStateError(AutomatonError):
    """Raised when referring to a state that does not belong to the automaton."""

    def __init__(self, state):
        super().__init__(f"state not in automaton: {state!r}")
        self.state = state


class NotDeterministicError(AutomatonError):
    """Raised when a DFA-only operation receives a nondeterministic automaton."""


class LearningError(GPSError):
    """Base class for learning-engine errors."""


class InconsistentExamplesError(LearningError):
    """Raised when the example set admits no consistent query.

    This happens for instance when the same node is labelled both positive
    and negative, or when a positive node has no path that avoids the
    negative nodes' path languages.
    """

    def __init__(self, message, conflicting=None):
        super().__init__(message)
        self.conflicting = tuple(conflicting) if conflicting is not None else ()


class NoConsistentPathError(LearningError):
    """Raised when a positive node has no path uncovered by negative examples."""

    def __init__(self, node, max_length=None):
        detail = f"no consistent path for positive node {node!r}"
        if max_length is not None:
            detail += f" (searched up to length {max_length})"
        super().__init__(detail)
        self.node = node
        self.max_length = max_length


class SessionError(GPSError):
    """Base class for interactive-session errors."""


class SessionFinishedError(SessionError):
    """Raised when interacting with a session that has already halted."""


class NoCandidateNodeError(SessionError):
    """Raised when a strategy cannot propose any informative node."""


class SessionNotFoundError(SessionError):
    """Raised when a session id is unknown to the session manager."""

    def __init__(self, session_id):
        super().__init__(f"unknown session id: {session_id!r}")
        self.session_id = session_id


class OracleError(GPSError):
    """Raised when a simulated user cannot answer a request."""


class ReliabilityError(GPSError):
    """Base class for fault-injection and supervision errors."""


class InjectedFault(ReliabilityError):
    """A deterministic fault fired by a :class:`~repro.reliability.FaultInjector`.

    Carries the fault *site* (e.g. ``"oracle.label"``) and the zero-based
    index of the draw that fired, so tests can assert exactly which
    scheduled fault was hit.  Always retryable: the next draw at the same
    site comes from the same seeded stream and usually succeeds.
    """

    def __init__(self, site, index):
        super().__init__(f"injected fault at {site!r} (draw #{index})")
        self.site = site
        self.index = index

    def __reduce__(self):
        # rebuild from (site, index), not the formatted message — injected
        # faults cross process-pool boundaries when simulating worker
        # crashes, and the default Exception reduction would re-call
        # __init__ with the wrong arguments
        return (type(self), (self.site, self.index))


class DeadlineExceededError(ReliabilityError):
    """A supervised step overran its ``time.monotonic`` deadline."""

    def __init__(self, elapsed, budget):
        super().__init__(
            f"step deadline exceeded: {elapsed:.4f}s elapsed against a "
            f"{budget:.4f}s budget"
        )
        self.elapsed = elapsed
        self.budget = budget


class RetryBudgetExceededError(ReliabilityError):
    """A supervised operation failed on every attempt its policy allowed."""

    def __init__(self, attempts, last_error):
        super().__init__(
            f"retry budget exhausted after {attempts} attempt(s); "
            f"last error: {last_error!r}"
        )
        self.attempts = attempts
        self.last_error = last_error


class SessionQuarantinedError(ReliabilityError):
    """Raised when driving a session the supervisor has quarantined."""

    def __init__(self, session_id, reason):
        super().__init__(f"session {session_id!r} quarantined: {reason}")
        self.session_id = session_id
        self.reason = reason


class ExperimentError(GPSError):
    """Base class for experiment-runner errors."""


class UnitExecutionError(ExperimentError):
    """A run unit failed on every attempt its retry policy allowed.

    Completed units are already persisted in the result store, so the
    campaign can be resumed once the fault is addressed; only the failed
    unit(s) re-execute.
    """

    def __init__(self, unit_id, attempts, last_error):
        super().__init__(
            f"unit {unit_id} failed after {attempts} attempt(s): {last_error!r}; "
            "completed rows are preserved in the store — rerun to resume"
        )
        self.unit_id = unit_id
        self.attempts = attempts
        self.last_error = last_error

    def __reduce__(self):
        return (type(self), (self.unit_id, self.attempts, self.last_error))


class RunPlanMismatchError(ExperimentError):
    """Raised when resuming a result store written by a different run plan.

    The stored manifest's plan id (a content hash of the expanded unit
    ids) does not match the plan about to run, so resuming would mix rows
    from incompatible configurations.
    """

    def __init__(self, stored_plan_id, current_plan_id, directory):
        super().__init__(
            f"result store at {directory} was written by plan {stored_plan_id!r}, "
            f"but the current plan is {current_plan_id!r}; "
            "pass fresh=True (CLI: --fresh) or use a different --run name"
        )
        self.stored_plan_id = stored_plan_id
        self.current_plan_id = current_plan_id
        self.directory = directory
