"""Halt conditions for the interactive loop.

"The interactions continue until a halt condition is satisfied.  A natural
condition is to stop when there is exactly one consistent query with the
current set of examples.  However, we also allow weaker conditions e.g.,
the user may stop the process earlier if she is satisfied by some
candidate query proposed at some intermediary stage."

Conditions are small callable objects combined with :class:`AnyOf` /
:class:`AllOf`.  Each receives the current :class:`SessionState` snapshot
(graph, examples, latest hypothesis) and returns a boolean.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.graph.labeled_graph import LabeledGraph
from repro.learning.examples import ExampleSet
from repro.query.engine import QueryEngine
from repro.query.rpq import PathQuery
from repro.serving.workspace import default_workspace


@dataclass
class HaltContext:
    """Snapshot handed to halt conditions after each interaction."""

    graph: LabeledGraph
    examples: ExampleSet
    hypothesis: Optional[PathQuery]
    interactions: int
    informative_remaining: int
    #: engine answering query-evaluation questions (cached per session)
    engine: Optional[QueryEngine] = None


class HaltCondition(ABC):
    """Base class for halt conditions."""

    name: str = "abstract"

    @abstractmethod
    def satisfied(self, context: HaltContext) -> bool:
        """True when the session should stop."""

    def signature(self) -> Optional[tuple]:
        """Hashable description of the halting behaviour (or ``None``).

        Used by cross-session deduplication: sessions only share a
        result when their halt conditions provably stop at the same
        interaction.  The base default ``None`` marks unknown subclasses
        as not dedup-eligible.
        """
        return None

    def __call__(self, context: HaltContext) -> bool:
        return self.satisfied(context)


class NoInformativeNodeLeft(HaltCondition):
    """Stop when every node is labelled or pruned — the strongest condition.

    At that point the hypothesis is the unique query consistent with the
    examples up to the exploration bound: no further interaction can
    change it.
    """

    name = "no-informative-node"

    def signature(self) -> Optional[tuple]:
        return (self.name,)

    def satisfied(self, context: HaltContext) -> bool:
        return context.informative_remaining == 0


class UserSatisfied(HaltCondition):
    """Stop when the hypothesis' answer equals a target answer set.

    Models the weaker condition "the user is satisfied by the output of a
    candidate query on the instance".  In experiments the target answer is
    the goal query's answer; a real front-end would ask the user.
    """

    name = "user-satisfied"

    def __init__(self, target_answer):
        self.target_answer = frozenset(target_answer)

    def signature(self) -> Optional[tuple]:
        return (self.name, tuple(sorted(self.target_answer, key=str)))

    def satisfied(self, context: HaltContext) -> bool:
        if context.hypothesis is None:
            return False
        engine = context.engine or default_workspace().engine
        return frozenset(engine.evaluate(context.graph, context.hypothesis)) == self.target_answer


class GoalQueryReached(HaltCondition):
    """Stop when the hypothesis is language-equivalent to a known goal query.

    Only available in simulation (the real user does not have a formal
    goal query to compare against); used to measure exact recovery in E4.
    """

    name = "goal-reached"

    def __init__(self, goal: PathQuery):
        self.goal = goal

    def signature(self) -> Optional[tuple]:
        # the rendered expression pins the goal language (conservatively:
        # two spellings of one language get distinct signatures, which
        # only costs a dedup opportunity, never correctness)
        return (self.name, str(self.goal))

    def satisfied(self, context: HaltContext) -> bool:
        if context.hypothesis is None:
            return False
        return context.hypothesis.same_language(self.goal)


class MaxInteractions(HaltCondition):
    """Stop after a fixed budget of user interactions (safety valve)."""

    name = "max-interactions"

    def __init__(self, limit: int):
        if limit <= 0:
            raise ValueError("interaction limit must be positive")
        self.limit = limit

    def signature(self) -> Optional[tuple]:
        return (self.name, self.limit)

    def satisfied(self, context: HaltContext) -> bool:
        return context.interactions >= self.limit


class AnyOf(HaltCondition):
    """Disjunction of halt conditions."""

    name = "any-of"

    def __init__(self, conditions: Sequence[HaltCondition]):
        self.conditions = list(conditions)

    def signature(self) -> Optional[tuple]:
        return _combined_signature(self.name, self.conditions)

    def satisfied(self, context: HaltContext) -> bool:
        return any(condition.satisfied(context) for condition in self.conditions)


class AllOf(HaltCondition):
    """Conjunction of halt conditions."""

    name = "all-of"

    def __init__(self, conditions: Sequence[HaltCondition]):
        self.conditions = list(conditions)

    def signature(self) -> Optional[tuple]:
        return _combined_signature(self.name, self.conditions)

    def satisfied(self, context: HaltContext) -> bool:
        return all(condition.satisfied(context) for condition in self.conditions)


def _combined_signature(
    name: str, conditions: Sequence[HaltCondition]
) -> Optional[tuple]:
    """Signature of a combinator: defined iff every child's is."""
    parts = []
    for condition in conditions:
        part = condition.signature()
        if part is None:
            return None
        parts.append(part)
    return (name, tuple(parts))


def default_halt_condition(max_interactions: Optional[int] = None) -> HaltCondition:
    """The library default: stop when nothing informative remains
    (optionally capped by an interaction budget)."""
    base = NoInformativeNodeLeft()
    if max_interactions is None:
        return base
    return AnyOf([base, MaxInteractions(max_interactions)])
