"""Rendering of neighbourhoods and prefix trees.

The demo's GUI draws small graph fragments and prefix trees; here we emit
the same artefacts as text (for the console front-end and the examples)
and as Graphviz DOT (for anyone who wants pictures).  The renderers
reproduce the visual conventions of Figure 3:

* nodes on the fragment's frontier are suffixed with `` ...`` (parts of
  the graph exist beyond the fragment);
* when rendering a zoom-out delta, newly revealed nodes and edges are
  marked (``[new]`` in text, coloured blue in DOT);
* in the prefix tree, the highlighted candidate path is marked with ``>>``
  (text) or drawn bold (DOT).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from repro.automata.prefix_tree import PathPrefixTree, PathTreeNode
from repro.graph.labeled_graph import Edge, LabeledGraph, Node
from repro.graph.neighborhood import Neighborhood, NeighborhoodDelta


# ----------------------------------------------------------------------
# text rendering
# ----------------------------------------------------------------------
def render_neighborhood_text(
    neighborhood: Neighborhood,
    *,
    new_nodes: Optional[Set[Node]] = None,
    new_edges: Optional[Set[Edge]] = None,
    labels: Optional[dict] = None,
) -> str:
    """Multi-line text rendering of a neighbourhood fragment.

    ``new_nodes`` / ``new_edges`` mark zoom-out additions; ``labels`` maps
    nodes to ``'+'`` / ``'-'`` marks for already-labelled examples.
    """
    new_nodes = new_nodes or set()
    new_edges = new_edges or set()
    labels = labels or {}
    lines: List[str] = [
        f"neighborhood of {neighborhood.center} (radius {neighborhood.radius})"
    ]
    for node in sorted(neighborhood.graph.nodes(), key=str):
        marks = []
        if node == neighborhood.center:
            marks.append("*")
        if node in labels:
            marks.append(labels[node])
        if node in new_nodes:
            marks.append("[new]")
        if node in neighborhood.frontier:
            marks.append("...")
        suffix = (" " + " ".join(marks)) if marks else ""
        lines.append(f"  node {node}{suffix}")
    for edge in sorted(neighborhood.graph.edges(), key=lambda item: (str(item[0]), item[1], str(item[2]))):
        source, label, target = edge
        marker = " [new]" if edge in new_edges else ""
        lines.append(f"  {source} -[{label}]-> {target}{marker}")
    return "\n".join(lines)


def render_zoom_text(delta: NeighborhoodDelta, *, labels: Optional[dict] = None) -> str:
    """Render the enlarged neighbourhood of a zoom-out, new elements marked."""
    return render_neighborhood_text(
        delta.current,
        new_nodes=set(delta.new_nodes),
        new_edges=set(delta.new_edges),
        labels=labels,
    )


def render_prefix_tree_text(tree: PathPrefixTree) -> str:
    """ASCII rendering of the Figure 3(c) prefix tree.

    Each line shows one label step; the highlighted candidate path's final
    step is prefixed with ``>>``.
    """
    lines: List[str] = [f"paths of {tree.origin}"]

    def visit(node: PathTreeNode, depth: int) -> None:
        for symbol in sorted(node.children):
            child = node.children[symbol]
            marker = ">> " if child.highlighted else "   "
            endpoint = f"  -> {', '.join(str(end) for end in child.endpoints)}" if child.endpoints else ""
            lines.append(f"{marker}{'  ' * depth}{symbol}{endpoint}")
            visit(child, depth + 1)

    visit(tree.root, 0)
    return "\n".join(lines)


def render_query_answer_text(graph: LabeledGraph, answer: Iterable[Node]) -> str:
    """One-line rendering of a query answer set."""
    nodes = sorted(answer, key=str)
    return f"{len(nodes)} node(s): " + ", ".join(str(node) for node in nodes)


# ----------------------------------------------------------------------
# DOT rendering
# ----------------------------------------------------------------------
def _dot_escape(value) -> str:
    return str(value).replace('"', '\\"')


def render_graph_dot(
    graph: LabeledGraph,
    *,
    highlight_nodes: Optional[Set[Node]] = None,
    highlight_edges: Optional[Set[Edge]] = None,
    frontier: Optional[Set[Node]] = None,
    name: str = "G",
) -> str:
    """Graphviz DOT for a graph fragment (highlights drawn in blue)."""
    highlight_nodes = highlight_nodes or set()
    highlight_edges = highlight_edges or set()
    frontier = frontier or set()
    lines = [f'digraph "{_dot_escape(name)}" {{', "  rankdir=LR;", "  node [shape=ellipse];"]
    for node in sorted(graph.nodes(), key=str):
        attrs = []
        if node in highlight_nodes:
            attrs.append("color=blue")
            attrs.append("fontcolor=blue")
        label = f"{node} ..." if node in frontier else str(node)
        attrs.append(f'label="{_dot_escape(label)}"')
        lines.append(f'  "{_dot_escape(node)}" [{", ".join(attrs)}];')
    for edge in sorted(graph.edges(), key=lambda item: (str(item[0]), item[1], str(item[2]))):
        source, label, target = edge
        attrs = [f'label="{_dot_escape(label)}"']
        if edge in highlight_edges:
            attrs.append("color=blue")
            attrs.append("fontcolor=blue")
        lines.append(f'  "{_dot_escape(source)}" -> "{_dot_escape(target)}" [{", ".join(attrs)}];')
    lines.append("}")
    return "\n".join(lines)


def render_neighborhood_dot(neighborhood: Neighborhood, *, name: Optional[str] = None) -> str:
    """DOT rendering of a neighbourhood (frontier nodes get ``...`` labels)."""
    return render_graph_dot(
        neighborhood.graph,
        frontier=set(neighborhood.frontier),
        name=name or f"N({neighborhood.center},{neighborhood.radius})",
    )


def render_zoom_dot(delta: NeighborhoodDelta, *, name: Optional[str] = None) -> str:
    """DOT rendering of a zoom-out, newly revealed elements in blue (Figure 3(b))."""
    return render_graph_dot(
        delta.current.graph,
        highlight_nodes=set(delta.new_nodes),
        highlight_edges=set(delta.new_edges),
        frontier=set(delta.current.frontier),
        name=name or f"zoom({delta.current.center},{delta.current.radius})",
    )


def render_prefix_tree_dot(tree: PathPrefixTree, *, name: Optional[str] = None) -> str:
    """DOT rendering of the prefix tree; the highlighted path is bold."""
    lines = [f'digraph "{_dot_escape(name or f"paths({tree.origin})")}" {{', "  rankdir=LR;"]

    def node_id(prefix: Tuple[str, ...]) -> str:
        return "root" if not prefix else "_".join(prefix)

    def visit(node: PathTreeNode) -> None:
        shape = "doublecircle" if node.highlighted else "circle"
        label = str(tree.origin) if not node.prefix else node.prefix[-1]
        lines.append(f'  "{node_id(node.prefix)}" [label="{_dot_escape(label)}", shape={shape}];')
        for symbol in sorted(node.children):
            child = node.children[symbol]
            style = "bold" if child.highlighted else "solid"
            lines.append(
                f'  "{node_id(node.prefix)}" -> "{node_id(child.prefix)}" '
                f'[label="{_dot_escape(symbol)}", style={style}];'
            )
            visit(child)

    visit(tree.root)
    lines.append("}")
    return "\n".join(lines)
