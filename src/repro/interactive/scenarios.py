"""The three demonstration scenarios of Section 3.

* **Static labelling** — the user wanders through the whole graph and
  labels whatever nodes she likes, in her own order; the system only
  checks consistency at the end and proposes a consistent query (or
  reports the labels inconsistent).  Simulated here by labelling nodes in
  a random order with no pruning, which is the work an unassisted user
  would have to do.
* **Interactive labelling without path validation** — the Figure 2 loop,
  but the learner picks the path of each positive node itself; the result
  is guaranteed consistent but not necessarily the goal query (the paper's
  ``bus`` counter-example).
* **Interactive labelling with path validation** — the full GPS loop, the
  core of the system.

Each scenario is a function returning a :class:`ScenarioReport` with the
learned query, the number of user interactions, and quality metrics
against the goal query, so the experiment harness can compare them on the
same (graph, goal) pairs.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.exceptions import InconsistentExamplesError
from repro.graph.labeled_graph import LabeledGraph
from repro.interactive.halt import AnyOf, MaxInteractions, UserSatisfied
from repro.interactive.oracle import SimulatedUser
from repro.interactive.session import InteractiveSession
from repro.interactive.strategies import Strategy
from repro.learning.examples import ExampleSet
from repro.learning.learner import DEFAULT_MAX_PATH_LENGTH, PathQueryLearner
from repro.query.evaluation import selection_metrics
from repro.query.rpq import PathQuery
from repro.regex.ast import Regex

QueryLike = Union[str, Regex, PathQuery]


@dataclass
class ScenarioReport:
    """Comparable outcome of one scenario run."""

    scenario: str
    learned_query: Optional[PathQuery]
    interactions: int
    zooms: int
    exact_goal: bool
    metrics: Dict[str, float] = field(default_factory=dict)
    halted_by: str = ""
    inconsistent: bool = False
    wall_time: float = 0.0
    #: system compute time of each interaction, in order — the paper's
    #: "time-efficient between interactions" quantity; the experiment
    #: harness aggregates these into latency percentiles
    interaction_latencies: List[float] = field(default_factory=list)

    def summary_row(self) -> Dict[str, object]:
        """Flat dictionary for tabular experiment output."""
        return {
            "scenario": self.scenario,
            "interactions": self.interactions,
            "zooms": self.zooms,
            "exact_goal": self.exact_goal,
            "instance_f1": round(self.metrics.get("f1", 0.0), 3),
            "learned": str(self.learned_query) if self.learned_query else "(none)",
            "halted_by": self.halted_by,
            "inconsistent": self.inconsistent,
        }


def _finalize(
    scenario: str,
    graph: LabeledGraph,
    goal: PathQuery,
    learned: Optional[PathQuery],
    interactions: int,
    zooms: int,
    halted_by: str,
    inconsistent: bool,
    wall_time: float,
    interaction_latencies: Optional[List[float]] = None,
) -> ScenarioReport:
    if learned is None:
        metrics = {"precision": 0.0, "recall": 0.0, "f1": 0.0}
        exact = False
    else:
        metrics = selection_metrics(graph, learned, goal)
        exact = learned.same_language(goal)
    return ScenarioReport(
        scenario=scenario,
        learned_query=learned,
        interactions=interactions,
        zooms=zooms,
        exact_goal=exact,
        metrics=metrics,
        halted_by=halted_by,
        inconsistent=inconsistent,
        wall_time=wall_time,
        interaction_latencies=list(interaction_latencies or []),
    )


def run_static_labeling(
    graph: LabeledGraph,
    goal: QueryLike,
    *,
    label_budget: Optional[int] = None,
    max_path_length: int = DEFAULT_MAX_PATH_LENGTH,
    seed: Optional[int] = None,
    workspace=None,
) -> ScenarioReport:
    """Scenario 1: the user labels nodes in her own (random) order.

    The simulated user stops once the consistent query learned from her
    labels returns exactly her intended answer — but since nothing guides
    her node choice or prunes uninformative nodes, she typically needs to
    label a large fraction of the graph to get there.

    ``workspace`` is the :class:`~repro.serving.workspace.GraphWorkspace`
    to draw shared components from (the process default when omitted).
    """
    started = time.perf_counter()
    goal_query = goal if isinstance(goal, PathQuery) else PathQuery(goal)
    user = SimulatedUser(graph, goal_query, workspace=workspace)
    rng = random.Random(seed)
    order = sorted(graph.nodes(), key=str)
    rng.shuffle(order)
    budget = label_budget if label_budget is not None else len(order)

    examples = ExampleSet()
    learner = PathQueryLearner(graph, max_path_length=max_path_length, workspace=workspace)
    learned: Optional[PathQuery] = None
    interactions = 0
    inconsistent = False
    halted_by = "exhausted"
    latencies: List[float] = []
    for node in order[:budget]:
        interaction_started = time.perf_counter()
        positive = user.label(node)
        if positive:
            examples.add_positive(node)
        else:
            examples.add_negative(node)
        interactions += 1
        try:
            learned = learner.learn(examples).query
        except InconsistentExamplesError:
            inconsistent = True
            latencies.append(time.perf_counter() - interaction_started)
            continue
        satisfied = user.satisfied_with(learned)
        latencies.append(time.perf_counter() - interaction_started)
        if satisfied:
            halted_by = "user-satisfied"
            break
    return _finalize(
        "static",
        graph,
        goal_query,
        learned,
        interactions,
        zooms=0,
        halted_by=halted_by,
        inconsistent=inconsistent,
        wall_time=time.perf_counter() - started,
        interaction_latencies=latencies,
    )


def _run_interactive(
    scenario: str,
    graph: LabeledGraph,
    goal: QueryLike,
    *,
    path_validation: bool,
    strategy: Optional[Strategy] = None,
    max_interactions: Optional[int] = None,
    max_path_length: int = DEFAULT_MAX_PATH_LENGTH,
    stop_when_satisfied: bool = True,
    workspace=None,
) -> ScenarioReport:
    started = time.perf_counter()
    goal_query = goal if isinstance(goal, PathQuery) else PathQuery(goal)
    user = SimulatedUser(graph, goal_query, workspace=workspace)
    conditions = []
    if stop_when_satisfied:
        conditions.append(UserSatisfied(user.goal_answer))
    if max_interactions is not None:
        conditions.append(MaxInteractions(max_interactions))
    halt = AnyOf(conditions) if conditions else None
    session = InteractiveSession(
        graph,
        user,
        strategy=strategy,
        halt_condition=halt,
        path_validation=path_validation,
        max_path_length=max_path_length,
        workspace=workspace,
    )
    result = session.run()
    return _finalize(
        scenario,
        graph,
        goal_query,
        result.learned_query,
        result.interactions,
        zooms=result.total_zooms,
        halted_by=result.halted_by,
        inconsistent=result.inconsistent,
        wall_time=time.perf_counter() - started,
        interaction_latencies=[record.duration_seconds for record in result.records],
    )


def run_interactive_without_validation(
    graph: LabeledGraph,
    goal: QueryLike,
    *,
    strategy: Optional[Strategy] = None,
    max_interactions: Optional[int] = None,
    max_path_length: int = DEFAULT_MAX_PATH_LENGTH,
    workspace=None,
) -> ScenarioReport:
    """Scenario 2: interactive labelling, the system picks paths itself."""
    return _run_interactive(
        "interactive",
        graph,
        goal,
        path_validation=False,
        strategy=strategy,
        max_interactions=max_interactions,
        max_path_length=max_path_length,
        workspace=workspace,
    )


def run_interactive_with_validation(
    graph: LabeledGraph,
    goal: QueryLike,
    *,
    strategy: Optional[Strategy] = None,
    max_interactions: Optional[int] = None,
    max_path_length: int = DEFAULT_MAX_PATH_LENGTH,
    workspace=None,
) -> ScenarioReport:
    """Scenario 3: the full GPS loop with path validation (the core system)."""
    return _run_interactive(
        "interactive+validation",
        graph,
        goal,
        path_validation=True,
        strategy=strategy,
        max_interactions=max_interactions,
        max_path_length=max_path_length,
        workspace=workspace,
    )


def run_all_scenarios(
    graph: LabeledGraph,
    goal: QueryLike,
    *,
    max_path_length: int = DEFAULT_MAX_PATH_LENGTH,
    seed: Optional[int] = None,
    max_interactions: Optional[int] = None,
    workspace=None,
) -> Dict[str, ScenarioReport]:
    """Run the three demonstration scenarios on the same (graph, goal) pair."""
    return {
        "static": run_static_labeling(
            graph,
            goal,
            max_path_length=max_path_length,
            seed=seed,
            label_budget=max_interactions,
            workspace=workspace,
        ),
        "interactive": run_interactive_without_validation(
            graph,
            goal,
            max_path_length=max_path_length,
            max_interactions=max_interactions,
            workspace=workspace,
        ),
        "interactive+validation": run_interactive_with_validation(
            graph,
            goal,
            max_path_length=max_path_length,
            max_interactions=max_interactions,
            workspace=workspace,
        ),
    }
