"""Simulated users (oracles).

The demo lets EDBT attendees answer the interactive questions; for an
offline, repeatable evaluation we replace the human with a
:class:`SimulatedUser` that holds a hidden *goal query* and answers
exactly the questions the GPS front-end would ask a person:

* ``label(node)`` — "Yes/No": is the node part of the intended result?
  Answered by evaluating the goal query on the graph.
* ``wants_zoom(node, neighborhood)`` — would the user zoom out before
  answering?  The simulated user zooms while the currently visible
  fragment contains no witness path for her decision (positive nodes) or
  until a configurable patience runs out (negative nodes), mirroring how a
  person keeps zooming until she can see why a node is (not) interesting.
* ``validate_path(node, tree)`` — given the prefix tree of candidate
  words, confirm the highlighted one or pick the word that the goal query
  accepts (the user corrects the system, Figure 3(c)).

A :class:`NoisyUser` wrapper flips labels with a configurable probability
to study robustness (used by an ablation benchmark), and an
:class:`UnreliableUser` wrapper turns any oracle into a *failing* one —
its answers raise :class:`~repro.exceptions.InjectedFault` (and
optionally stall) on a deterministic, seeded schedule, which is how the
chaos harness exercises the supervision layer.
"""

from __future__ import annotations

import random
import time
import zlib
from typing import Callable, Optional, Tuple, Union

from repro.automata.dfa import word_sort_key
from repro.automata.prefix_tree import PathPrefixTree
from repro.exceptions import InjectedFault, OracleError
from repro.graph.labeled_graph import LabeledGraph, Node
from repro.graph.neighborhood import Neighborhood
from repro.query.engine import QueryEngine
from repro.query.evaluation import witness_path
from repro.query.rpq import PathQuery
from repro.regex.ast import Regex
from repro.serving.workspace import default_workspace

Word = Tuple[str, ...]


class SimulatedUser:
    """An oracle answering interactive questions according to a goal query."""

    def __init__(
        self,
        graph: LabeledGraph,
        goal: Union[str, Regex, PathQuery],
        *,
        zoom_patience: int = 2,
        engine: Optional[QueryEngine] = None,
        workspace=None,
    ):
        self.graph = graph
        self.goal = goal if isinstance(goal, PathQuery) else PathQuery(goal)
        self.zoom_patience = zoom_patience
        if engine is None:
            engine = workspace.engine if workspace is not None else default_workspace().engine
        self.engine = engine
        self._answer = frozenset(self.engine.evaluate(graph, self.goal))
        #: statistics the experiment harness reads back
        self.labels_answered = 0
        self.zooms_requested = 0
        self.paths_validated = 0
        self.paths_corrected = 0

    # ------------------------------------------------------------------
    # the three question types
    # ------------------------------------------------------------------
    @property
    def goal_answer(self) -> frozenset:
        """The set of nodes the user ultimately wants."""
        return self._answer

    def label(self, node: Node) -> bool:
        """Positive / negative answer for ``node``."""
        if node not in self.graph:
            raise OracleError(f"asked to label unknown node {node!r}")
        self.labels_answered += 1
        return node in self._answer

    def wants_zoom(self, node: Node, neighborhood: Neighborhood) -> bool:
        """Whether the user asks to zoom out before labelling ``node``.

        For a positive node the user zooms until the visible fragment
        contains a full witness path of the goal query; for a negative node
        she zooms at most ``zoom_patience`` times (modelling "I looked
        around a bit and found nothing of interest").
        """
        if node in self._answer:
            witness = witness_path(self.graph, self.goal, node)
            if witness is None:
                return False
            # membership goes through the fragment's node set, so asking
            # "can I see the witness?" never materialises the subgraph
            visible = all(neighborhood.contains(step_node) for step_node in witness.nodes)
            if not visible and neighborhood.radius < len(witness) :
                self.zooms_requested += 1
                return True
            return False
        if neighborhood.radius < self.zoom_patience:
            self.zooms_requested += 1
            return True
        return False

    def validate_path(self, node: Node, tree: PathPrefixTree) -> Optional[Word]:
        """Pick the path of interest in the prefix tree (Figure 3(c)).

        Returns the highlighted word when the goal query accepts it,
        otherwise the shortest word of the tree accepted by the goal query;
        ``None`` when no word of the tree is accepted (the session will
        then fall back to the shortest uncovered word).
        """
        self.paths_validated += 1
        highlighted = tree.highlighted_word()
        if highlighted is not None and self.goal.accepts_word(highlighted):
            return highlighted
        accepted = [word for word in tree.words() if self.goal.accepts_word(word)]
        if not accepted:
            return None
        accepted.sort(key=lambda word: (len(word), word_sort_key(word)))
        self.paths_corrected += 1
        return accepted[0]

    def satisfied_with(self, hypothesis: PathQuery) -> bool:
        """Instance-level satisfaction: the hypothesis returns her answer set."""
        return frozenset(self.engine.evaluate(self.graph, hypothesis)) == self._answer

    def dedup_signature(self) -> Optional[tuple]:
        """Hashable description of every answer this oracle can give.

        This is the *example signature* of cross-session deduplication:
        together with the graph fingerprint it determines the labels,
        zoom answers and path validations of the whole session, so two
        oracles with equal signatures drive byte-identical sessions.
        ``None`` (e.g. an unseeded :class:`NoisyUser`) disables dedup.
        """
        return (
            type(self).__name__,
            str(self.goal),
            self.zoom_patience,
            tuple(sorted(self._answer, key=str)),
        )

    def statistics(self) -> dict:
        """Interaction counters (for experiment reports)."""
        return {
            "labels": self.labels_answered,
            "zooms": self.zooms_requested,
            "validations": self.paths_validated,
            "corrections": self.paths_corrected,
        }


class NoisyUser(SimulatedUser):
    """A simulated user that flips node labels with probability ``noise``.

    Path validation stays faithful (the user sees the paths in front of
    her); only the quick Yes/No node answers are noisy.  Used to study how
    the learner degrades with labelling mistakes.
    """

    def __init__(
        self,
        graph: LabeledGraph,
        goal: Union[str, Regex, PathQuery],
        *,
        noise: float = 0.1,
        seed: Optional[int] = None,
        zoom_patience: int = 2,
        engine: Optional[QueryEngine] = None,
        workspace=None,
    ):
        super().__init__(
            graph, goal, zoom_patience=zoom_patience, engine=engine, workspace=workspace
        )
        if not 0.0 <= noise <= 1.0:
            raise ValueError("noise must be within [0, 1]")
        self.noise = noise
        self.seed = seed
        self._rng = random.Random(seed)
        self.flipped_labels = 0

    def dedup_signature(self) -> Optional[tuple]:
        if self.seed is None:
            return None  # unseeded flips are not reproducible: never dedup
        base = super().dedup_signature()
        # the rng-state digest distinguishes a fresh oracle from one whose
        # stream was already consumed by an earlier session, so reusing
        # one oracle object across sessions can never dedup incorrectly
        # (crc32, not hash(): builtin hash is PYTHONHASHSEED-salted)
        rng_state = zlib.crc32(repr(self._rng.getstate()).encode("utf-8"))
        return base + (self.noise, self.seed, rng_state)

    def label(self, node: Node) -> bool:
        truthful = super().label(node)
        if self._rng.random() < self.noise:
            self.flipped_labels += 1
            return not truthful
        return truthful


class UnreliableUser:
    """Chaos wrapper: any oracle, but its answers fail on a seeded schedule.

    Label and path-validation calls first consult the
    :class:`~repro.reliability.FaultInjector` (sites ``"oracle.label"``
    and ``"oracle.validate_path"``) and raise
    :class:`~repro.exceptions.InjectedFault` when the site's draw fires —
    *before* delegating, so a failed attempt never consumes the inner
    oracle's state (e.g. a :class:`NoisyUser`'s rng stream).  That is
    what makes retry-until-success produce the same answers, hence the
    same final hypothesis, as the fault-free run.

    ``delay_seconds`` optionally stalls answers whose ``…#delay`` site
    fires, for exercising step deadlines; the sleep function is
    injectable so tests need not actually wait.
    """

    def __init__(
        self,
        inner: SimulatedUser,
        injector,
        *,
        delay_seconds: float = 0.0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.inner = inner
        self.injector = injector
        self.delay_seconds = delay_seconds
        self._sleep = sleep
        self.injected_failures = 0
        self.injected_delays = 0

    def _gate(self, site: str) -> None:
        """Fault check, then the optional deterministic stall."""
        if self.injector is None:
            return
        try:
            self.injector.check(site)
        except InjectedFault:
            self.injected_failures += 1
            raise
        if self.delay_seconds > 0.0 and self.injector.fires(site + "#delay"):
            self.injected_delays += 1
            self._sleep(self.delay_seconds)

    def label(self, node: Node) -> bool:
        """The inner oracle's label, behind the ``oracle.label`` fault gate."""
        self._gate("oracle.label")
        return self.inner.label(node)

    def wants_zoom(self, node: Node, neighborhood: Neighborhood) -> bool:
        """Zoom decisions pass through unfaulted (they are UI, not answers)."""
        return self.inner.wants_zoom(node, neighborhood)

    def validate_path(self, node: Node, tree: PathPrefixTree) -> Optional[Word]:
        """The inner validation, behind the ``oracle.validate_path`` gate."""
        self._gate("oracle.validate_path")
        return self.inner.validate_path(node, tree)

    def satisfied_with(self, hypothesis: PathQuery) -> bool:
        """Satisfaction checks delegate unfaulted (used by halt conditions)."""
        return self.inner.satisfied_with(hypothesis)

    def dedup_signature(self) -> Optional[tuple]:
        """Always ``None``: a faulty oracle's session must never be shared."""
        return None

    def statistics(self) -> dict:
        """Inner counters plus the injected failure/delay counts."""
        stats = dict(self.inner.statistics())
        stats["injected_failures"] = self.injected_failures
        stats["injected_delays"] = self.injected_delays
        return stats

    def __getattr__(self, name: str):
        # everything else (graph, goal, goal_answer, engine, …) reads
        # through to the wrapped oracle
        return getattr(self.inner, name)
