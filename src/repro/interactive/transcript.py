"""Session transcripts: recording, serialisation, and replay.

A front-end (or an experiment) often needs to persist what happened in an
interactive session — which nodes were proposed, how the user answered,
which paths she validated — and to replay it later, e.g. to reproduce a
bug report, to resume a session, or to re-learn with a different learner
configuration without asking the user again.

* :func:`record_session` converts a finished
  :class:`~repro.interactive.session.SessionResult` into a
  :class:`SessionTranscript`;
* :class:`SessionTranscript` serialises to / from JSON;
* :func:`replay_transcript` re-runs the recorded answers through a fresh
  :class:`~repro.interactive.session.InteractiveSession` (via a
  :class:`~repro.interactive.console.TranscriptUser` and a fixed-order
  strategy) and returns the new result, which must agree with the original
  when the graph and learner configuration are unchanged.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.exceptions import NoCandidateNodeError
from repro.graph.labeled_graph import LabeledGraph, Node
from repro.interactive.session import InteractiveSession, SessionResult
from repro.interactive.strategies import Strategy
from repro.learning.examples import Word

PathLike = Union[str, Path]


@dataclass(frozen=True)
class TranscriptEntry:
    """One recorded interaction."""

    node: Node
    positive: bool
    zooms: int
    validated_word: Optional[Word] = None

    def as_dict(self) -> dict:
        return {
            "node": self.node,
            "positive": self.positive,
            "zooms": self.zooms,
            "validated_word": list(self.validated_word) if self.validated_word else None,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TranscriptEntry":
        word = payload.get("validated_word")
        return cls(
            node=payload["node"],
            positive=bool(payload["positive"]),
            zooms=int(payload.get("zooms", 0)),
            validated_word=tuple(word) if word else None,
        )


@dataclass
class SessionTranscript:
    """A serialisable record of a whole session."""

    graph_name: str
    entries: List[TranscriptEntry] = field(default_factory=list)
    learned_expression: Optional[str] = None
    halted_by: str = ""

    # -- (de)serialisation ------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "graph": self.graph_name,
                "halted_by": self.halted_by,
                "learned": self.learned_expression,
                "entries": [entry.as_dict() for entry in self.entries],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "SessionTranscript":
        payload = json.loads(text)
        return cls(
            graph_name=payload.get("graph", "graph"),
            entries=[TranscriptEntry.from_dict(entry) for entry in payload.get("entries", [])],
            learned_expression=payload.get("learned"),
            halted_by=payload.get("halted_by", ""),
        )

    def save(self, path: PathLike) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: PathLike) -> "SessionTranscript":
        return cls.from_json(Path(path).read_text())

    # -- convenience -------------------------------------------------------
    def interaction_count(self) -> int:
        """Number of recorded interactions."""
        return len(self.entries)

    def positive_nodes(self) -> List[Node]:
        """Nodes the user labelled positive, in order."""
        return [entry.node for entry in self.entries if entry.positive]

    def negative_nodes(self) -> List[Node]:
        """Nodes the user labelled negative, in order."""
        return [entry.node for entry in self.entries if not entry.positive]


def record_session(result: SessionResult, *, graph_name: str = "graph") -> SessionTranscript:
    """Build a transcript from a finished session result."""
    entries = [
        TranscriptEntry(
            node=record.node,
            positive=record.positive,
            zooms=record.zooms,
            validated_word=record.validated_word,
        )
        for record in result.records
    ]
    return SessionTranscript(
        graph_name=graph_name,
        entries=entries,
        learned_expression=str(result.learned_query) if result.learned_query else None,
        halted_by=result.halted_by,
    )


class _FixedOrderStrategy(Strategy):
    """Proposes exactly the recorded nodes, in the recorded order."""

    name = "transcript-order"

    def __init__(self, order: Sequence[Node], *, max_path_length: int = 4):
        super().__init__(max_path_length=max_path_length)
        self._queue = list(order)

    def propose(self, graph: LabeledGraph, examples) -> Node:
        while self._queue:
            node = self._queue.pop(0)
            if node not in examples.labeled_nodes:
                return node
        raise NoCandidateNodeError("transcript exhausted")


class _ReplayUser:
    """Answers session questions from a transcript's per-node record.

    Unlike :class:`~repro.interactive.console.TranscriptUser` (which checks
    an exact question sequence), the replay user is keyed by node, so it
    tolerates the session asking one fewer zoom question than was recorded
    (which happens when the neighbourhood radius cap is reached).
    """

    def __init__(self, transcript: SessionTranscript):
        self._labels = {entry.node: entry.positive for entry in transcript.entries}
        self._zooms = {entry.node: entry.zooms for entry in transcript.entries}
        self._words = {
            entry.node: entry.validated_word
            for entry in transcript.entries
            if entry.validated_word is not None
        }

    def wants_zoom(self, node, neighborhood) -> bool:
        remaining = self._zooms.get(node, 0)
        if remaining > 0:
            self._zooms[node] = remaining - 1
            return True
        return False

    def label(self, node) -> bool:
        if node not in self._labels:
            raise ValueError(f"replay asked about a node absent from the transcript: {node!r}")
        return self._labels[node]

    def validate_path(self, node, tree) -> Optional[Word]:
        word = self._words.get(node)
        if word is not None and tree.contains(word):
            return word
        return word if word is not None else None


def replay_transcript(
    graph: LabeledGraph,
    transcript: SessionTranscript,
    *,
    path_validation: bool = True,
    max_path_length: int = 4,
) -> SessionResult:
    """Re-run a recorded session against ``graph`` and return the new result.

    The replayed session visits the recorded nodes in the recorded order,
    re-applies the recorded labels / zooms / validated words, and re-learns
    from scratch; with an unchanged graph and learner configuration the
    learned query selects the same nodes as the original session's.
    """
    user = _ReplayUser(transcript)
    session = InteractiveSession(
        graph,
        user,
        strategy=_FixedOrderStrategy(
            [entry.node for entry in transcript.entries], max_path_length=max_path_length
        ),
        path_validation=path_validation,
        max_path_length=max_path_length,
        max_interactions=len(transcript.entries),
    )
    return session.run()
