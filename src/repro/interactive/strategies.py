"""Node-proposal strategies Υ.

A strategy is "a function that takes as input a graph G and a set of
examples S, and returns a node from G" (Section 2).  A good practical
strategy must (i) be time-efficient between interactions and (ii) minimise
the number of interactions by proposing only the most informative nodes.

Implemented strategies:

* :class:`RandomStrategy` — uniform choice among *unlabelled* nodes
  (ignores informativeness; the weakest baseline, models static labelling
  where the user wanders through the graph);
* :class:`RandomInformativeStrategy` — uniform choice among informative
  nodes (pruning on, ranking off);
* :class:`BreadthStrategy` — nearest informative node to the already
  labelled ones (locality heuristic: the user keeps looking around the
  same area of the graph);
* :class:`MostInformativePathsStrategy` — the paper's practical strategy:
  rank informative nodes by the number of short uncovered words they have
  ("nodes having an important number of paths that are shorter than a
  fixed bound and not covered by any negative node").

All informativeness lookups resolve to the shared incremental
:class:`~repro.learning.informativeness.SessionClassifier` of the
``(graph, examples, max_path_length)`` triple, so a strategy proposing
inside a session re-ranks from bitset deltas instead of re-enumerating
every node's path language per interaction.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections import deque
from typing import List, Optional

from repro.exceptions import NoCandidateNodeError
from repro.graph.labeled_graph import LabeledGraph, Node
from repro.graph.neighborhood import NeighborhoodIndex
from repro.learning.examples import ExampleSet
from repro.learning.informativeness import (
    SessionClassifier,
    classify_all,
    informative_nodes,
)
from repro.query.engine import QueryEngine
from repro.serving.workspace import default_workspace


class Strategy(ABC):
    """Base class for node-proposal strategies."""

    #: short identifier used in experiment tables
    name: str = "abstract"

    def __init__(
        self,
        *,
        max_path_length: int = 4,
        engine: Optional[QueryEngine] = None,
        neighborhood_index: Optional[NeighborhoodIndex] = None,
    ):
        self.max_path_length = max_path_length
        #: query engine for strategies that rank candidates by answer
        #: sets.  None of the built-in strategies evaluates queries (they
        #: rank by informativeness, which is path enumeration), but the
        #: session threads its engine here so subclasses that do evaluate
        #: share the session's plan and answer caches.
        self.engine = engine or default_workspace().engine
        #: optional pre-resolved neighbourhood/zoom index; the session
        #: threads its own here so strategies that rank by locality
        #: reuse the BFS layers the zoom ladder already paid for
        self._neighborhood_index = neighborhood_index
        #: the session's incremental classifier (threaded via
        #: :meth:`use_classifier`); informativeness lookups go through it
        #: so a workspace-backed session never touches module registries
        self._classifier: Optional[SessionClassifier] = None

    def use_classifier(self, classifier: SessionClassifier) -> None:
        """Thread the session's classifier into this strategy.

        The classifier is only consulted when it tracks exactly the
        ``(graph, examples, max_path_length)`` triple being ranked, so
        binding is always safe; mismatching calls fall back to the shared
        registry.
        """
        self._classifier = classifier

    def _informative(self, graph: LabeledGraph, examples: ExampleSet) -> List[Node]:
        """Ranked informative nodes via the bound classifier when it fits."""
        return informative_nodes(
            graph, examples, max_length=self.max_path_length, classifier=self._classifier
        )

    def _statuses(self, graph: LabeledGraph, examples: ExampleSet):
        """Per-node statuses via the bound classifier when it fits."""
        return classify_all(
            graph, examples, max_length=self.max_path_length, classifier=self._classifier
        )

    def signature(self) -> Optional[tuple]:
        """Hashable description of this strategy's proposal behaviour.

        Used by cross-session deduplication: two strategies with equal
        signatures propose identical node sequences on identical session
        states.  ``None`` (the base default for unknown subclasses, and
        unseeded random strategies) means "not reproducible — never
        dedup".  Deterministic built-ins return ``(name, bound)``.
        """
        return None

    def neighborhoods(self, graph: LabeledGraph) -> NeighborhoodIndex:
        """The shared :class:`NeighborhoodIndex` of ``graph``.

        Returns the index the session threaded in when it belongs to
        ``graph``, and the process-wide shared index otherwise.
        """
        index = self._neighborhood_index
        if index is not None and index.owns(graph):
            return index
        return default_workspace().neighborhoods(graph)

    @abstractmethod
    def propose(self, graph: LabeledGraph, examples: ExampleSet) -> Node:
        """Return the next node to show to the user.

        Raises :class:`NoCandidateNodeError` when no candidate remains.
        """

    def _unlabeled(self, graph: LabeledGraph, examples: ExampleSet) -> List[Node]:
        return sorted(
            (node for node in graph.nodes() if node not in examples.labeled_nodes), key=str
        )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} max_path_length={self.max_path_length}>"


class RandomStrategy(Strategy):
    """Uniformly random unlabelled node (no pruning, no ranking)."""

    name = "random"

    def __init__(
        self,
        *,
        seed: Optional[int] = None,
        max_path_length: int = 4,
        engine: Optional[QueryEngine] = None,
        neighborhood_index: Optional[NeighborhoodIndex] = None,
    ):
        super().__init__(
            max_path_length=max_path_length,
            engine=engine,
            neighborhood_index=neighborhood_index,
        )
        self.seed = seed
        self._rng = random.Random(seed)

    def signature(self) -> Optional[tuple]:
        if self.seed is None:
            return None  # unseeded: proposals are not reproducible
        return (self.name, self.max_path_length, self.seed)

    def propose(self, graph: LabeledGraph, examples: ExampleSet) -> Node:
        candidates = self._unlabeled(graph, examples)
        if not candidates:
            raise NoCandidateNodeError("every node is already labelled")
        return self._rng.choice(candidates)


class RandomInformativeStrategy(Strategy):
    """Uniformly random *informative* node (pruning on, ranking off)."""

    name = "random-informative"

    def __init__(
        self,
        *,
        seed: Optional[int] = None,
        max_path_length: int = 4,
        engine: Optional[QueryEngine] = None,
        neighborhood_index: Optional[NeighborhoodIndex] = None,
    ):
        super().__init__(
            max_path_length=max_path_length,
            engine=engine,
            neighborhood_index=neighborhood_index,
        )
        self.seed = seed
        self._rng = random.Random(seed)

    def signature(self) -> Optional[tuple]:
        if self.seed is None:
            return None  # unseeded: proposals are not reproducible
        return (self.name, self.max_path_length, self.seed)

    def propose(self, graph: LabeledGraph, examples: ExampleSet) -> Node:
        candidates = self._informative(graph, examples)
        if not candidates:
            raise NoCandidateNodeError("no informative node remains")
        return self._rng.choice(sorted(candidates, key=str))


class BreadthStrategy(Strategy):
    """Nearest informative node to the labelled region (undirected BFS)."""

    name = "breadth"

    def signature(self) -> Optional[tuple]:
        return (self.name, self.max_path_length)

    def propose(self, graph: LabeledGraph, examples: ExampleSet) -> Node:
        candidates = set(self._informative(graph, examples))
        if not candidates:
            raise NoCandidateNodeError("no informative node remains")
        seeds = sorted(examples.labeled_nodes & frozenset(graph.nodes()), key=str)
        if not seeds:
            return sorted(candidates, key=str)[0]
        seen = set(seeds)
        queue = deque(seeds)
        while queue:
            node = queue.popleft()
            if node in candidates:
                return node
            neighbors = sorted(graph.successors(node) | graph.predecessors(node), key=str)
            for other in neighbors:
                if other not in seen:
                    seen.add(other)
                    queue.append(other)
        # labelled region does not reach any candidate: fall back to global order
        return sorted(candidates, key=str)[0]


class MostInformativePathsStrategy(Strategy):
    """The paper's practical strategy: most short uncovered words first."""

    name = "most-informative"

    def signature(self) -> Optional[tuple]:
        return (self.name, self.max_path_length)

    def propose(self, graph: LabeledGraph, examples: ExampleSet) -> Node:
        ranked = self._informative(graph, examples)
        if not ranked:
            raise NoCandidateNodeError("no informative node remains")
        return ranked[0]


class DegreeStrategy(Strategy):
    """Highest out-degree informative node (cheap proxy for informativeness).

    Included as an ablation point between random and most-informative: it
    needs no path enumeration at all, so it is the fastest ranking
    strategy, but it ignores how many of a node's paths are already
    covered by negatives.
    """

    name = "degree"

    def signature(self) -> Optional[tuple]:
        return (self.name, self.max_path_length)

    def propose(self, graph: LabeledGraph, examples: ExampleSet) -> Node:
        statuses = self._statuses(graph, examples)
        candidates = [node for node, status in statuses.items() if status.informative]
        if not candidates:
            raise NoCandidateNodeError("no informative node remains")
        return max(sorted(candidates, key=str), key=lambda node: graph.out_degree(node))


#: Registry used by experiments and the console front-end.
STRATEGY_REGISTRY = {
    cls.name: cls
    for cls in (
        RandomStrategy,
        RandomInformativeStrategy,
        BreadthStrategy,
        MostInformativePathsStrategy,
        DegreeStrategy,
    )
}


def make_strategy(
    name: str,
    *,
    seed: Optional[int] = None,
    max_path_length: int = 4,
    engine: Optional[QueryEngine] = None,
) -> Strategy:
    """Instantiate a strategy by registry name."""
    if name not in STRATEGY_REGISTRY:
        raise ValueError(f"unknown strategy {name!r}; known: {sorted(STRATEGY_REGISTRY)}")
    cls = STRATEGY_REGISTRY[name]
    if cls in (RandomStrategy, RandomInformativeStrategy):
        return cls(seed=seed, max_path_length=max_path_length, engine=engine)
    return cls(max_path_length=max_path_length, engine=engine)
