"""Interactive query specification: strategies, sessions, oracles, scenarios."""

from repro.interactive.strategies import (
    STRATEGY_REGISTRY,
    BreadthStrategy,
    DegreeStrategy,
    MostInformativePathsStrategy,
    RandomInformativeStrategy,
    RandomStrategy,
    Strategy,
    make_strategy,
)
from repro.interactive.halt import (
    AllOf,
    AnyOf,
    GoalQueryReached,
    HaltCondition,
    HaltContext,
    MaxInteractions,
    NoInformativeNodeLeft,
    UserSatisfied,
    default_halt_condition,
)
from repro.interactive.oracle import NoisyUser, SimulatedUser
from repro.interactive.session import (
    DEFAULT_INITIAL_RADIUS,
    DEFAULT_MAX_RADIUS,
    InteractionRecord,
    InteractiveSession,
    SessionResult,
)
from repro.interactive.scenarios import (
    ScenarioReport,
    run_all_scenarios,
    run_interactive_with_validation,
    run_interactive_without_validation,
    run_static_labeling,
)
from repro.interactive.console import ConsoleUser, TranscriptUser
from repro.interactive.transcript import (
    SessionTranscript,
    TranscriptEntry,
    record_session,
    replay_transcript,
)
from repro.interactive import visualization

__all__ = [
    "STRATEGY_REGISTRY",
    "BreadthStrategy",
    "DegreeStrategy",
    "MostInformativePathsStrategy",
    "RandomInformativeStrategy",
    "RandomStrategy",
    "Strategy",
    "make_strategy",
    "AllOf",
    "AnyOf",
    "GoalQueryReached",
    "HaltCondition",
    "HaltContext",
    "MaxInteractions",
    "NoInformativeNodeLeft",
    "UserSatisfied",
    "default_halt_condition",
    "NoisyUser",
    "SimulatedUser",
    "DEFAULT_INITIAL_RADIUS",
    "DEFAULT_MAX_RADIUS",
    "InteractionRecord",
    "InteractiveSession",
    "SessionResult",
    "ScenarioReport",
    "run_all_scenarios",
    "run_interactive_with_validation",
    "run_interactive_without_validation",
    "run_static_labeling",
    "ConsoleUser",
    "TranscriptUser",
    "SessionTranscript",
    "TranscriptEntry",
    "record_session",
    "replay_transcript",
    "visualization",
]
