"""A minimal console front-end for GPS.

The demo paper's GUI asks a human attendee the three kinds of question
(label a node, zoom out, validate a path).  :class:`ConsoleUser` adapts a
terminal user to the same oracle protocol the
:class:`~repro.interactive.session.InteractiveSession` expects, so the
full interactive system can be driven from a shell::

    python -m repro.interactive.console        # runs on the Figure 1 graph

:class:`TranscriptUser` replays a scripted sequence of answers — handy for
tests of the console pathway and for reproducible walkthroughs in the
examples.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from repro.automata.prefix_tree import PathPrefixTree
from repro.exceptions import OracleError
from repro.graph.labeled_graph import LabeledGraph, Node
from repro.graph.neighborhood import Neighborhood
from repro.interactive.visualization import render_neighborhood_text, render_prefix_tree_text
from repro.learning.examples import Word


class ConsoleUser:
    """Oracle protocol implementation backed by ``input()`` / ``print()``.

    ``input_fn`` and ``output_fn`` are injectable for testing.
    """

    def __init__(
        self,
        graph: LabeledGraph,
        *,
        input_fn: Callable[[str], str] = input,
        output_fn: Callable[[str], None] = print,
    ):
        self.graph = graph
        self._input = input_fn
        self._output = output_fn
        self._pending_neighborhood: Optional[Neighborhood] = None

    # -- oracle protocol ----------------------------------------------------
    def wants_zoom(self, node: Node, neighborhood: Neighborhood) -> bool:
        self._output(render_neighborhood_text(neighborhood))
        answer = self._ask(f"zoom out around {node}? [y/N] ")
        return answer.strip().lower().startswith("y")

    def label(self, node: Node) -> bool:
        while True:
            answer = self._ask(f"is {node} part of your intended result? [y/n] ").strip().lower()
            if answer.startswith("y"):
                return True
            if answer.startswith("n"):
                return False
            self._output("please answer 'y' or 'n'")

    def validate_path(self, node: Node, tree: PathPrefixTree) -> Optional[Word]:
        self._output(render_prefix_tree_text(tree))
        highlighted = tree.highlighted_word()
        prompt = "validate the highlighted path (enter), type another path as dot-separated labels, or 'skip': "
        while True:
            answer = self._ask(prompt).strip()
            if not answer:
                return highlighted
            if answer.lower() == "skip":
                return None
            word = tuple(part for part in answer.split(".") if part)
            if tree.contains(word):
                return word
            self._output(f"'{answer}' is not a path of the tree, try again")

    # -- helpers --------------------------------------------------------
    def _ask(self, prompt: str) -> str:
        try:
            return self._input(prompt)
        except EOFError as error:
            raise OracleError("console input closed") from error


class TranscriptUser:
    """Replays scripted answers; raises when the script runs out.

    The script is a sequence of items, consumed in order:

    * ``("label", node, True/False)``
    * ``("zoom", node, True/False)``
    * ``("validate", node, word_or_None)``

    The node component is checked against the session's actual question so
    transcripts fail loudly when the strategy changes.
    """

    def __init__(self, script: Iterable[Tuple]):
        self._script: Iterator[Tuple] = iter(list(script))
        self.consumed: List[Tuple] = []

    def _next(self, expected_kind: str, node: Node) -> Tuple:
        try:
            item = next(self._script)
        except StopIteration:
            raise OracleError(
                f"transcript exhausted while answering {expected_kind!r} for {node!r}"
            ) from None
        kind, scripted_node = item[0], item[1]
        if kind != expected_kind or scripted_node != node:
            raise OracleError(
                f"transcript mismatch: expected {expected_kind!r} for {node!r}, "
                f"script has {kind!r} for {scripted_node!r}"
            )
        self.consumed.append(item)
        return item

    def wants_zoom(self, node: Node, neighborhood: Neighborhood) -> bool:
        return bool(self._next("zoom", node)[2])

    def label(self, node: Node) -> bool:
        return bool(self._next("label", node)[2])

    def validate_path(self, node: Node, tree: PathPrefixTree) -> Optional[Word]:
        answer = self._next("validate", node)[2]
        return tuple(answer) if answer is not None else None


def run_console_demo(graph: Optional[LabeledGraph] = None) -> None:  # pragma: no cover - interactive
    """Entry point: run the full interactive loop on a console."""
    from repro.graph.datasets import motivating_example
    from repro.interactive.session import InteractiveSession

    graph = graph or motivating_example()
    user = ConsoleUser(graph)
    session = InteractiveSession(graph, user, max_interactions=20)
    result = session.run()
    if result.learned_query is None:
        print("no query could be learned")
    else:
        print(f"learned query: {result.learned_query}")


if __name__ == "__main__":  # pragma: no cover
    run_console_demo()
