"""The interactive loop of Figure 2.

One :class:`InteractiveSession` wires together everything the paper
describes:

1. start from an empty example set;
2. until the halt condition is satisfied:
   a. choose a node ν with the strategy Υ;
   b. build its neighbourhood (distance ≤ 2 initially) and let the user
      zoom out as long as she wants;
   c. ask the user to label ν positive or negative;
   d. when positive (and path validation is enabled) show the prefix tree
      of ν's uncovered paths — bounded by the size of the last
      neighbourhood — with a highlighted candidate, and let her validate
      or correct it;
   e. propagate labels and prune uninformative nodes;
   f. learn a query consistent with all labels;
3. return the latest learned query.

The session is driven by a *user* object implementing the oracle protocol
(:class:`~repro.interactive.oracle.SimulatedUser` or a real front-end
adapter), so the same loop serves both experiments and the console demo.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.exceptions import (
    InconsistentExamplesError,
    NoCandidateNodeError,
    SessionFinishedError,
)
from repro.graph.labeled_graph import LabeledGraph, Node
from repro.graph.neighborhood import Neighborhood
from repro.interactive.halt import HaltCondition, HaltContext, default_halt_condition
from repro.interactive.oracle import SimulatedUser
from repro.interactive.strategies import MostInformativePathsStrategy, Strategy
from repro.learning.examples import ExampleSet, Word
from repro.learning.learner import DEFAULT_MAX_PATH_LENGTH, PathQueryLearner
from repro.learning.path_selection import candidate_prefix_tree
from repro.learning.propagation import propagate_to_fixpoint
from repro.query.engine import QueryEngine
from repro.query.rpq import PathQuery

#: Initial neighbourhood radius shown to the user (Figure 3(a)).
DEFAULT_INITIAL_RADIUS = 2
#: Hard cap on zooming, to keep neighbourhoods small even on large graphs.
DEFAULT_MAX_RADIUS = 6


@dataclass
class InteractionRecord:
    """Everything that happened during one interaction (one proposed node)."""

    index: int
    node: Node
    positive: bool
    zooms: int
    final_radius: int
    validated_word: Optional[Word]
    propagated_positive: int
    propagated_negative: int
    hypothesis: Optional[PathQuery]
    hypothesis_consistent: bool
    informative_remaining: int
    duration_seconds: float


@dataclass
class SessionResult:
    """Outcome of a full interactive session."""

    learned_query: Optional[PathQuery]
    records: List[InteractionRecord] = field(default_factory=list)
    halted_by: str = "exhausted"
    inconsistent: bool = False
    #: True when this result was adopted from an identical session's run
    #: (cross-session deduplication) instead of executing the loop itself
    deduped: bool = False
    #: True when the supervisor quarantined the session (its oracle kept
    #: failing); the result then carries the partial trace up to the last
    #: completed interaction and is never shared through the dedup memo
    quarantined: bool = False

    @property
    def interactions(self) -> int:
        """Number of node-labelling interactions performed."""
        return len(self.records)

    @property
    def total_zooms(self) -> int:
        """Total zoom-out requests across all interactions."""
        return sum(record.zooms for record in self.records)

    @property
    def total_time(self) -> float:
        """Total wall-clock time spent computing between interactions."""
        return sum(record.duration_seconds for record in self.records)

    def interaction_trace(self) -> List[Tuple[Node, str]]:
        """Compact ``(node, '+'/'-')`` trace for transcripts and tests."""
        return [(record.node, "+" if record.positive else "-") for record in self.records]


class InteractiveSession:
    """Drives the Figure 2 loop on one graph with one (simulated) user.

    Shared, read-mostly components — the query engine, language indexes,
    the neighbourhood index, the informativeness classifier registry —
    are drawn from a :class:`~repro.serving.workspace.GraphWorkspace`.
    Pass ``workspace=`` to make sharing explicit (a
    :class:`~repro.serving.manager.SessionManager` admits every session
    over its own workspace); without one the session uses the process
    default workspace, so single-session scripts share caches exactly as
    before.

    Per-session state is only the :class:`ExampleSet`, the current
    hypothesis and the interaction records.

    Migration note: ``engine=`` is deprecated.  Where you previously
    isolated a session with ``InteractiveSession(graph, user,
    engine=QueryEngine())``, pass
    ``workspace=GraphWorkspace(engine=QueryEngine())`` instead — the
    workspace isolates the language/neighbourhood indexes along with the
    engine, which is almost always what isolation was meant to achieve.
    ``engine=`` still works (wrapping itself in an ad-hoc workspace) but
    emits a :class:`DeprecationWarning`.
    """

    def __init__(
        self,
        graph: LabeledGraph,
        user: SimulatedUser,
        *,
        strategy: Optional[Strategy] = None,
        halt_condition: Optional[HaltCondition] = None,
        path_validation: bool = True,
        max_path_length: int = DEFAULT_MAX_PATH_LENGTH,
        initial_radius: int = DEFAULT_INITIAL_RADIUS,
        max_radius: int = DEFAULT_MAX_RADIUS,
        max_interactions: Optional[int] = None,
        engine: Optional[QueryEngine] = None,
        workspace=None,
    ):
        from repro.serving.workspace import GraphWorkspace, default_workspace

        self.graph = graph
        self.user = user
        if engine is not None:
            warnings.warn(
                "repro.interactive.session.InteractiveSession(engine=...) is "
                "deprecated; pass workspace=GraphWorkspace(engine=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if workspace is None:
                workspace = GraphWorkspace(engine=engine)
            elif workspace.engine is not engine:
                raise ValueError(
                    "conflicting engine= and workspace= (the workspace owns its engine)"
                )
        if workspace is None:
            workspace = default_workspace()
        #: the GraphWorkspace every shared component is drawn from
        self.workspace = workspace
        #: query engine shared by the learner, halt conditions and metrics
        #: of this session — one answer cache for the whole loop
        self.engine = workspace.engine
        #: incremental neighbourhood/zoom index shared by the session's
        #: zoom ladder, the eccentricity cap and the figure harness —
        #: one BFS per (version, center, directed) for the whole loop
        self.neighborhoods = workspace.neighborhoods(graph)
        self.strategy = strategy or MostInformativePathsStrategy(
            max_path_length=max_path_length,
            engine=self.engine,
            neighborhood_index=self.neighborhoods,
        )
        self.halt_condition = halt_condition or default_halt_condition(max_interactions)
        self.path_validation = path_validation
        self.max_path_length = max_path_length
        self.initial_radius = initial_radius
        self.max_radius = max_radius
        self.examples = ExampleSet()
        #: incremental informativeness classifier shared by the session,
        #: the proposal strategy, propagation and the halt check — one
        #: language index and one per-node status table for the whole
        #: loop, updated per interaction delta (the informativeness
        #: counterpart of threading one QueryEngine everywhere)
        self.classifier = workspace.classifier(
            graph, self.examples, max_length=self.strategy.max_path_length
        )
        # strategies rank through the session's classifier (and therefore
        # the workspace's language index) instead of the module registry
        self.strategy.use_classifier(self.classifier)
        self.learner = PathQueryLearner(
            graph, max_path_length=max_path_length, workspace=workspace
        )
        self.hypothesis: Optional[PathQuery] = None
        self.records: List[InteractionRecord] = []
        self._finished = False
        self._halted_by = "exhausted"
        self._inconsistent = False

    # ------------------------------------------------------------------
    # loop control
    # ------------------------------------------------------------------
    def _informative_remaining(self) -> int:
        return self.classifier.informative_count()

    def _halt_context(self) -> HaltContext:
        return HaltContext(
            graph=self.graph,
            examples=self.examples,
            hypothesis=self.hypothesis,
            interactions=len(self.records),
            informative_remaining=self._informative_remaining(),
            engine=self.engine,
        )

    def should_halt(self) -> bool:
        """Evaluate the halt condition on the current state."""
        context = self._halt_context()
        if context.informative_remaining == 0:
            self._halted_by = "no-informative-node"
            return True
        if self.halt_condition.satisfied(context):
            self._halted_by = self.halt_condition.name
            return True
        return False

    def run(self) -> SessionResult:
        """Run interactions until the halt condition is satisfied."""
        if self._finished:
            raise SessionFinishedError("this session has already been run")
        while self.advance():
            pass
        return self.finish()

    def advance(self) -> bool:
        """Perform one interaction; ``False`` when the session has halted.

        This is the unit the async :class:`~repro.serving.manager
        .SessionManager` drives — one ``advance()`` per scheduler slot,
        with an await point in between.  Halting by candidate exhaustion
        (the strategy has nothing left to propose) is absorbed here, like
        in :meth:`run`.
        """
        if self._finished:
            raise SessionFinishedError("this session has already been run")
        if self.should_halt():
            return False
        try:
            self.step()
        except NoCandidateNodeError:
            self._halted_by = "no-candidate"
            return False
        return True

    def finish(self) -> SessionResult:
        """Seal the session and return its :class:`SessionResult`.

        Idempotent once the loop is over; :meth:`run` is exactly
        ``while self.advance(): pass`` followed by ``finish()``.
        """
        self._finished = True
        return SessionResult(
            learned_query=self.hypothesis,
            records=self.records,
            halted_by=self._halted_by,
            inconsistent=self._inconsistent,
        )

    def abort(self, reason: str = "aborted") -> SessionResult:
        """Seal the session early with a partial-result trace.

        Graceful degradation for supervised serving: when the
        :class:`~repro.serving.manager.SessionManager` quarantines a
        session whose oracle keeps failing, the session still returns
        every interaction completed so far plus the latest hypothesis,
        flagged ``quarantined`` so downstream consumers (and the dedup
        memo) can tell it apart from a clean run.  Safe to call even on
        an already-finished session (the reason then updates the trace).
        """
        self._finished = True
        self._halted_by = reason
        return SessionResult(
            learned_query=self.hypothesis,
            records=self.records,
            halted_by=reason,
            inconsistent=self._inconsistent,
            quarantined=True,
        )

    # ------------------------------------------------------------------
    # one interaction
    # ------------------------------------------------------------------
    def step(self) -> InteractionRecord:
        """Perform one interaction (steps 3–6 of Figure 2)."""
        if self._finished:
            raise SessionFinishedError("this session has already been run")
        started = time.perf_counter()

        node = self.strategy.propose(self.graph, self.examples)
        neighborhood, zooms = self._present_neighborhood(node)
        positive = self.user.label(node)

        validated_word: Optional[Word] = None
        if positive:
            if self.path_validation:
                validated_word = self._validate_path(node, neighborhood)
            self.examples.add_positive(node, validated_word=validated_word)
        else:
            self.examples.add_negative(node)

        propagation_rounds = propagate_to_fixpoint(
            self.graph,
            self.examples,
            max_length=self.strategy.max_path_length,
            classifier=self.classifier,
        )
        propagated_positive = sum(len(round_.implied_positive) for round_ in propagation_rounds)
        propagated_negative = sum(len(round_.implied_negative) for round_ in propagation_rounds)

        hypothesis_consistent = True
        try:
            outcome = self.learner.learn(self.examples)
            self.hypothesis = outcome.query
            hypothesis_consistent = outcome.consistent
        except InconsistentExamplesError:
            # keep the previous hypothesis; flag the session (can only
            # happen with noisy users or static labelling)
            hypothesis_consistent = False
            self._inconsistent = True

        record = InteractionRecord(
            index=len(self.records) + 1,
            node=node,
            positive=positive,
            zooms=zooms,
            final_radius=neighborhood.radius,
            validated_word=validated_word,
            propagated_positive=propagated_positive,
            propagated_negative=propagated_negative,
            hypothesis=self.hypothesis,
            hypothesis_consistent=hypothesis_consistent,
            informative_remaining=self._informative_remaining(),
            duration_seconds=time.perf_counter() - started,
        )
        self.records.append(record)
        return record

    # ------------------------------------------------------------------
    # sub-steps
    # ------------------------------------------------------------------
    def _present_neighborhood(self, node: Node) -> Tuple[Neighborhood, int]:
        """Show neighbourhoods of increasing radius while the user asks to zoom.

        The whole ladder (eccentricity cap + every zoom level) runs on
        the session's shared :class:`NeighborhoodIndex`, so it costs one
        BFS per proposed node instead of one per zoom level.
        """
        index = self.neighborhoods
        radius_cap = min(
            self.max_radius, max(self.initial_radius, index.eccentricity_bound(node))
        )
        radius = min(self.initial_radius, radius_cap)
        neighborhood = index.neighborhood(node, radius)
        zooms = 0
        while radius < radius_cap and self.user.wants_zoom(node, neighborhood):
            radius += 1
            neighborhood = index.neighborhood(node, radius)
            zooms += 1
        return neighborhood, zooms

    def _validate_path(self, node: Node, neighborhood: Neighborhood) -> Optional[Word]:
        """Build the Figure 3(c) prefix tree and let the user validate a path.

        The word-length bound is the size (radius) of the last neighbourhood
        the user saw; when no word of the tree satisfies the user, the
        bound is raised to the learner's maximum once before giving up.
        """
        for bound in (neighborhood.radius, self.max_path_length):
            tree = candidate_prefix_tree(
                self.graph,
                node,
                self.examples.negative_nodes,
                max_length=bound,
                preferred_length=neighborhood.radius,
                index=self.workspace.language_index(self.graph, bound),
            )
            choice = self.user.validate_path(node, tree)
            if choice is not None:
                return choice
            if bound >= self.max_path_length:
                break
        return None
