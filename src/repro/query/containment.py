"""Query comparison: language level and instance level.

Two different notions matter in the interactive scenario:

* **language equivalence / containment** — graph-independent, decided on
  the minimal DFAs; this is the halt condition "exactly one consistent
  query" in its strongest form, and the success criterion of experiment
  E4 (did we recover the *goal query*, not merely a consistent one);
* **instance equivalence** — two queries returning the same answer set on
  the current database; this is what the user actually observes, and the
  paper's weaker halt condition ("the user is satisfied by the output of
  some candidate query") only looks at this level.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from repro.automata.dfa import DFA
from repro.automata.equivalence import counterexample, equivalent, included, inclusion_counterexample
from repro.graph.labeled_graph import LabeledGraph, Node
from repro.serving.workspace import default_workspace
from repro.query.rpq import PathQuery
from repro.regex.ast import Regex

QueryLike = Union[str, Regex, PathQuery, DFA]


def _as_query(query: QueryLike) -> PathQuery:
    if isinstance(query, PathQuery):
        return query
    if isinstance(query, DFA):
        return PathQuery.from_dfa(query)
    return PathQuery(query)


def language_equivalent(first: QueryLike, second: QueryLike) -> bool:
    """True when the two queries denote the same language."""
    return equivalent(_as_query(first).dfa, _as_query(second).dfa)


def language_included(first: QueryLike, second: QueryLike) -> bool:
    """True when ``L(first) ⊆ L(second)``."""
    return included(_as_query(first).dfa, _as_query(second).dfa)


def language_counterexample(first: QueryLike, second: QueryLike) -> Optional[Tuple[str, ...]]:
    """A shortest word distinguishing the two query languages (or ``None``)."""
    return counterexample(_as_query(first).dfa, _as_query(second).dfa)


def containment_counterexample(first: QueryLike, second: QueryLike) -> Optional[Tuple[str, ...]]:
    """A word of ``L(first) \\ L(second)`` (or ``None`` when contained)."""
    return inclusion_counterexample(_as_query(first).dfa, _as_query(second).dfa)


def instance_equivalent(graph: LabeledGraph, first: QueryLike, second: QueryLike) -> bool:
    """True when the two queries select the same nodes of ``graph``."""
    engine = default_workspace().engine
    return engine.evaluate(graph, first) == engine.evaluate(graph, second)


def instance_difference(
    graph: LabeledGraph, first: QueryLike, second: QueryLike
) -> Tuple[frozenset, frozenset]:
    """Nodes selected only by ``first`` and only by ``second`` on ``graph``."""
    engine = default_workspace().engine
    first_answer = engine.evaluate(graph, first)
    second_answer = engine.evaluate(graph, second)
    return (first_answer - second_answer, second_answer - first_answer)


def distinguishing_node(
    graph: LabeledGraph, first: QueryLike, second: QueryLike
) -> Optional[Node]:
    """A node on which the two queries disagree (or ``None``).

    Such a node is exactly what the interactive strategy would like to
    present to the user next when both queries are still consistent with
    the current examples.
    """
    only_first, only_second = instance_difference(graph, first, second)
    candidates = sorted(only_first | only_second, key=str)
    return candidates[0] if candidates else None
