"""Regular path queries (RPQs) with the paper's node-selection semantics.

A path query is a regular expression ``q`` over the edge-label alphabet.
On a graph database ``G``, ``q`` *selects* a node ``v`` iff there exists a
path starting at ``v`` whose sequence of edge labels spells a word of
``L(q)`` (Section 1 of the paper: "a node is selected if it has a path in
the language of a given regular expression").

:class:`PathQuery` wraps the expression together with its compiled
minimal DFA and caches both, since the same query object is evaluated
against many graphs (and many times against the same graph) during an
interactive session.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.automata.canonical import canonical_form
from repro.automata.determinize import regex_to_dfa
from repro.automata.dfa import DFA
from repro.automata.equivalence import equivalent
from repro.automata.minimize import minimize
from repro.regex.ast import Regex
from repro.regex.parser import parse
from repro.regex.printer import to_string


class PathQuery:
    """A regular path query: expression + compiled minimal DFA.

    Instances are immutable; the compiled automaton is built lazily on
    first use and cached.
    """

    __slots__ = ("_expression", "_dfa", "_name", "_plan")

    def __init__(self, expression: Union[str, Regex], *, name: Optional[str] = None):
        self._expression = parse(expression)
        self._dfa: Optional[DFA] = None
        self._name = name
        #: compiled QueryPlan, populated lazily by repro.query.engine
        self._plan = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dfa(cls, dfa: DFA, *, name: Optional[str] = None, cache=None) -> "PathQuery":
        """Wrap a learned DFA as a query (the expression is synthesised).

        Minimisation and synthesis are served from the canonical-form
        cache — the process-wide one by default, or the
        :class:`~repro.automata.canonical.CanonicalFormCache` passed via
        ``cache`` (a :class:`~repro.serving.workspace.GraphWorkspace`
        threads its own) — so wrapping the same hypothesis again, the
        common case between interactions, costs one structural
        fingerprint.
        """
        if cache is not None:
            minimal, expression = cache.canonical_form(dfa)
        else:
            minimal, expression = canonical_form(dfa)
        query = cls(expression, name=name)
        query._dfa = minimal
        return query

    @classmethod
    def from_word(cls, word: Sequence[str], *, name: Optional[str] = None) -> "PathQuery":
        """Query matching exactly one word (used for per-path sub-queries)."""
        from repro.regex.ast import word_to_regex

        return cls(word_to_regex(tuple(word)), name=name)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def expression(self) -> Regex:
        """The regular-expression AST."""
        return self._expression

    @property
    def name(self) -> str:
        """A short human-readable name (defaults to the rendered expression)."""
        return self._name if self._name is not None else to_string(self._expression)

    @property
    def dfa(self) -> DFA:
        """The minimal DFA of the query (compiled lazily, cached)."""
        if self._dfa is None:
            self._dfa = minimize(regex_to_dfa(self._expression))
        return self._dfa

    def alphabet(self) -> frozenset:
        """Symbols appearing in the expression."""
        return self._expression.alphabet()

    # ------------------------------------------------------------------
    # language-level operations
    # ------------------------------------------------------------------
    def accepts_word(self, word: Sequence[str]) -> bool:
        """True when ``word`` belongs to the query language."""
        return self.dfa.accepts(word)

    def is_empty(self) -> bool:
        """True when the query language is empty (selects nothing anywhere)."""
        return self.dfa.is_empty()

    def same_language(self, other: Union["PathQuery", str, Regex]) -> bool:
        """Language equivalence with another query (graph-independent).

        ``other`` may be another :class:`PathQuery`, an expression string or
        a regex AST.
        """
        if not isinstance(other, PathQuery):
            other = PathQuery(other)
        return equivalent(self.dfa, other.dfa)

    def __str__(self) -> str:
        return to_string(self._expression)

    def __repr__(self) -> str:
        return f"PathQuery({to_string(self._expression)!r})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, PathQuery):
            return NotImplemented
        return self.same_language(other)

    def __hash__(self) -> int:
        # hash on the canonical minimal DFA size + alphabet; cheap and
        # consistent with the (coarser) language-equality above
        return hash((self.dfa.state_count(), self.alphabet()))
