"""Evaluation of regular path queries on graph databases.

A node ``v`` is selected by query ``q`` iff some path starting at ``v``
spells a word of ``L(q)``.  Evaluating all nodes at once is a single
fixed-point computation on the *product* of the graph with the query DFA:

* a product state ``(v, s)`` is *successful* when from it one can reach a
  pair whose DFA state is accepting;
* ``v`` is selected iff ``(v, initial_state)`` is successful.

We compute the successful product states backwards (from accepting pairs,
following reversed product edges), which evaluates the query for **all**
nodes in ``O(|G| · |A|)`` — the standard RPQ evaluation bound — instead of
running a forward search per node.

Since the engine refactor the functions in this module are thin wrappers
over the engine of the process default
:class:`~repro.serving.workspace.GraphWorkspace`, which adds a
label-indexed graph representation, compiled query plans, a
shared-frontier batch evaluator and an answer cache keyed on
``(graph.version, fingerprint)``.  The semantics documented here are
unchanged.  Full answer sets are computed via
``workspace.engine.evaluate(graph, query)`` on a workspace you hold.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple, Union

from repro.automata.dfa import DFA, symbol_sort_key
from repro.graph.labeled_graph import LabeledGraph, Node
from repro.graph.paths import Path
from repro.query.rpq import PathQuery
from repro.regex.ast import Regex

QueryLike = Union[str, Regex, PathQuery, DFA]


def _workspace_engine():
    """The process workspace's engine.

    Imported lazily: this module sits in ``repro.query``'s package init,
    which runs long before the serving package can finish importing.
    """
    from repro.serving.workspace import default_workspace

    return default_workspace().engine


def _as_dfa(query: QueryLike) -> DFA:
    """Normalise the accepted query spellings into a DFA."""
    if isinstance(query, DFA):
        return query
    if isinstance(query, PathQuery):
        return query.dfa
    return PathQuery(query).dfa


def selects(graph: LabeledGraph, query: QueryLike, node: Node) -> bool:
    """True when ``query`` selects ``node`` in ``graph``.

    For single-node checks a forward search over the product restricted
    to what is reachable from ``(node, initial)`` is cheaper than the
    global evaluation; when the shared engine already holds the full
    answer set for this graph version, membership is answered from the
    cache instead.
    """
    return _workspace_engine().selects(graph, query, node)


def witness_path(
    graph: LabeledGraph, query: QueryLike, node: Node, *, max_length: Optional[int] = None
) -> Optional[Path]:
    """A shortest path witnessing that ``query`` selects ``node`` (or ``None``).

    The witness is what the demo shows to the user to explain *why* a node
    is in the answer (e.g. ``N2 -bus-> N1 -tram-> N4 -cinema-> C1``).
    """
    dfa = _as_dfa(query)
    if node not in graph:
        from repro.exceptions import NodeNotFoundError

        raise NodeNotFoundError(node)
    start_pair = (node, dfa.initial_state)
    if dfa.is_accepting(dfa.initial_state):
        return Path(node)
    seen: Set[Tuple[Node, object]] = {start_pair}
    queue: deque = deque([(start_pair, Path(node))])
    while queue:
        (graph_node, state), path = queue.popleft()
        if max_length is not None and len(path) >= max_length:
            continue
        for symbol, target_node in sorted(
            graph.out_edges(graph_node),
            key=lambda step: (symbol_sort_key(step[0]), symbol_sort_key(step[1])),
        ):
            dfa_target = dfa.target(state, symbol)
            if dfa_target is None:
                continue
            extended = path.extend(symbol, target_node)
            if dfa.is_accepting(dfa_target):
                return extended
            pair = (target_node, dfa_target)
            if pair not in seen:
                seen.add(pair)
                queue.append((pair, extended))
    return None


def evaluate_many(
    graph: LabeledGraph, queries: Iterable[QueryLike]
) -> List[FrozenSet[Node]]:
    """Evaluate several queries on the same graph.

    The candidate set is deduplicated by plan fingerprint and every cache
    miss is answered in **one** shared-frontier backward product pass
    (the candidates run as a disjoint union automaton), instead of one
    independent pass per query.
    """
    return _workspace_engine().evaluate_many(graph, queries)


def answer_signature(graph: LabeledGraph, query: QueryLike) -> Tuple[Node, ...]:
    """Sorted tuple of selected nodes — a hashable answer fingerprint.

    Used by the halt condition "the user is satisfied with the output of
    an intermediary query" and by experiment metrics.
    """
    return _workspace_engine().answer_signature(graph, query)


def selection_metrics(
    graph: LabeledGraph, learned: QueryLike, goal: QueryLike
) -> Dict[str, float]:
    """Precision / recall / F1 of the learned query against the goal query
    *on this instance* (the relevant notion for the user: does the answer
    set match what she wanted on her database)."""
    return _workspace_engine().selection_metrics(graph, learned, goal)
