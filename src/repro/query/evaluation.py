"""Evaluation of regular path queries on graph databases.

A node ``v`` is selected by query ``q`` iff some path starting at ``v``
spells a word of ``L(q)``.  Evaluating all nodes at once is a single
fixed-point computation on the *product* of the graph with the query DFA:

* a product state ``(v, s)`` is *successful* when from it one can reach a
  pair whose DFA state is accepting;
* ``v`` is selected iff ``(v, initial_state)`` is successful.

We compute the successful product states backwards (from accepting pairs,
following reversed product edges), which evaluates the query for **all**
nodes in ``O(|G| · |A|)`` — the standard RPQ evaluation bound — instead of
running a forward search per node.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.automata.dfa import DFA
from repro.graph.labeled_graph import LabeledGraph, Node
from repro.graph.paths import Path
from repro.query.rpq import PathQuery
from repro.regex.ast import Regex

QueryLike = Union[str, Regex, PathQuery, DFA]


def _as_dfa(query: QueryLike) -> DFA:
    """Normalise the accepted query spellings into a DFA."""
    if isinstance(query, DFA):
        return query
    if isinstance(query, PathQuery):
        return query.dfa
    return PathQuery(query).dfa


def evaluate(graph: LabeledGraph, query: QueryLike) -> FrozenSet[Node]:
    """Return the set of nodes of ``graph`` selected by ``query``.

    This is the core semantics used everywhere else (oracle answers,
    consistency checks, learned-query quality metrics).
    """
    dfa = _as_dfa(query)
    if dfa.is_empty():
        return frozenset()

    # Build reverse product adjacency lazily: for backward reachability we
    # need, for each product state (v, s), its predecessors (u, t) such
    # that u -a-> v in the graph and t -a-> s in the DFA.
    accepting = dfa.accepting_states

    # Seed: every pair (v, s) with s accepting is successful.
    successful: Set[Tuple[Node, object]] = set()
    queue: deque = deque()
    for node in graph.nodes():
        for state in accepting:
            pair = (node, state)
            successful.add(pair)
            queue.append(pair)

    # Pre-index DFA transitions by target: target_state -> list of (symbol, source_state)
    dfa_reverse: Dict[object, List[Tuple[str, object]]] = {}
    for source, symbol, target in dfa.transitions():
        dfa_reverse.setdefault(target, []).append((symbol, source))

    while queue:
        node, state = queue.popleft()
        for symbol, dfa_source in dfa_reverse.get(state, ()):
            for graph_source in graph.predecessors(node, symbol):
                pair = (graph_source, dfa_source)
                if pair not in successful:
                    successful.add(pair)
                    queue.append(pair)

    initial = dfa.initial_state
    return frozenset(node for node in graph.nodes() if (node, initial) in successful)


def selects(graph: LabeledGraph, query: QueryLike, node: Node) -> bool:
    """True when ``query`` selects ``node`` in ``graph``.

    For single-node checks a forward BFS over the product restricted to
    what is reachable from ``(node, initial)`` is cheaper than the global
    evaluation, so this does not call :func:`evaluate`.
    """
    dfa = _as_dfa(query)
    if node not in graph:
        from repro.exceptions import NodeNotFoundError

        raise NodeNotFoundError(node)
    start = (node, dfa.initial_state)
    if dfa.is_accepting(dfa.initial_state):
        return True
    seen: Set[Tuple[Node, object]] = {start}
    queue: deque = deque([start])
    while queue:
        graph_node, state = queue.popleft()
        for symbol, target_node in graph.out_edges(graph_node):
            dfa_target = dfa.target(state, symbol)
            if dfa_target is None:
                continue
            if dfa.is_accepting(dfa_target):
                return True
            pair = (target_node, dfa_target)
            if pair not in seen:
                seen.add(pair)
                queue.append(pair)
    return False


def witness_path(
    graph: LabeledGraph, query: QueryLike, node: Node, *, max_length: Optional[int] = None
) -> Optional[Path]:
    """A shortest path witnessing that ``query`` selects ``node`` (or ``None``).

    The witness is what the demo shows to the user to explain *why* a node
    is in the answer (e.g. ``N2 -bus-> N1 -tram-> N4 -cinema-> C1``).
    """
    dfa = _as_dfa(query)
    if node not in graph:
        from repro.exceptions import NodeNotFoundError

        raise NodeNotFoundError(node)
    start_pair = (node, dfa.initial_state)
    if dfa.is_accepting(dfa.initial_state):
        return Path(node)
    seen: Set[Tuple[Node, object]] = {start_pair}
    queue: deque = deque([(start_pair, Path(node))])
    while queue:
        (graph_node, state), path = queue.popleft()
        if max_length is not None and len(path) >= max_length:
            continue
        for symbol, target_node in sorted(
            graph.out_edges(graph_node), key=lambda step: (step[0], str(step[1]))
        ):
            dfa_target = dfa.target(state, symbol)
            if dfa_target is None:
                continue
            extended = path.extend(symbol, target_node)
            if dfa.is_accepting(dfa_target):
                return extended
            pair = (target_node, dfa_target)
            if pair not in seen:
                seen.add(pair)
                queue.append((pair, extended))
    return None


def evaluate_many(
    graph: LabeledGraph, queries: Iterable[QueryLike]
) -> List[FrozenSet[Node]]:
    """Evaluate several queries on the same graph (one product pass each)."""
    return [evaluate(graph, query) for query in queries]


def answer_signature(graph: LabeledGraph, query: QueryLike) -> Tuple[Node, ...]:
    """Sorted tuple of selected nodes — a hashable answer fingerprint.

    Used by the halt condition "the user is satisfied with the output of
    an intermediary query" and by experiment metrics.
    """
    return tuple(sorted(evaluate(graph, query), key=str))


def selection_metrics(
    graph: LabeledGraph, learned: QueryLike, goal: QueryLike
) -> Dict[str, float]:
    """Precision / recall / F1 of the learned query against the goal query
    *on this instance* (the relevant notion for the user: does the answer
    set match what she wanted on her database)."""
    learned_answer = set(evaluate(graph, learned))
    goal_answer = set(evaluate(graph, goal))
    true_positives = len(learned_answer & goal_answer)
    precision = true_positives / len(learned_answer) if learned_answer else (1.0 if not goal_answer else 0.0)
    recall = true_positives / len(goal_answer) if goal_answer else 1.0
    f1 = (2 * precision * recall / (precision + recall)) if (precision + recall) else 0.0
    return {
        "precision": precision,
        "recall": recall,
        "f1": f1,
        "learned_size": float(len(learned_answer)),
        "goal_size": float(len(goal_answer)),
    }
