"""Indexed, cached RPQ evaluation engine.

The interactive loop of the paper evaluates the *same* handful of queries
against the *same* graph over and over: every consistency check, oracle
answer, halt test and quality metric re-runs the product fixed point from
scratch.  This module concentrates all of that work behind one subsystem,
:class:`QueryEngine`, built from three layers:

**Graph index** — evaluation runs on the integer-id, per-label CSR
snapshot provided by :meth:`LabeledGraph.label_index
<repro.graph.labeled_graph.LabeledGraph.label_index>`.  The snapshot is
built once per graph :attr:`~repro.graph.labeled_graph.LabeledGraph.version`
and shared by every query.

**Query plans** — a :class:`QueryPlan` is the canonical, trimmed, minimal
DFA of a query relabelled to dense integer states, together with its
reverse transition table and a *fingerprint* (a stable hash of the
canonical automaton).  Two language-equivalent queries — however their
regexes are spelled — compile to plans with the same fingerprint, so they
share cache entries.  Plans are compiled once per :class:`PathQuery`
instance (cached on the object), once per DFA object (weak cache) and
once per expression string (bounded cache).

**Answer cache** — evaluated answer sets are memoised per graph under the
key ``(graph.version, plan.fingerprint)``.  A structural mutation bumps
the graph's version; when the graph's delta journal can bridge the gap
(see :meth:`LabeledGraph.deltas_since
<repro.graph.labeled_graph.LabeledGraph.deltas_since>`), the engine
*upgrades* the cache instead of dropping it — an answer survives when
its plan's alphabet is disjoint from every touched label and, if the
plan accepts the empty word, the node set did not change (an RPQ answer
can only move when an edge carrying one of its labels moves, or — for
empty-word-accepting plans — when nodes appear or disappear).  Opaque or
out-of-window deltas fall back to the historical whole-drop.  Dropping
the graph garbage-collects its cache (the engine holds graphs weakly).

On top of these the engine offers a *shared-frontier batch evaluator*:
:meth:`QueryEngine.evaluate_many` compiles a whole candidate set,
deduplicates it by fingerprint, and answers all cache misses in **one**
backward product pass over the indexed graph (the candidate DFAs are run
as a disjoint union automaton), instead of one independent pass per
query.

The public helpers of :mod:`repro.query.evaluation` are thin wrappers
over the engine of the process default
:class:`~repro.serving.workspace.GraphWorkspace`, so free-function call
sites get the indexed + cached path for free; code that wants isolated
caches (or cache statistics) holds its own workspace/engine.
"""

from __future__ import annotations

import hashlib
import weakref
from collections import OrderedDict, deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from repro.automata.dfa import DFA, symbol_sort_key
from repro.automata.minimize import minimize
from repro.graph.labeled_graph import GraphLabelIndex, LabeledGraph, Node
from repro.query.rpq import PathQuery
from repro.regex.ast import Regex

QueryLike = Union[str, Regex, PathQuery, DFA]

__all__ = ["QueryPlan", "QueryEngine", "compile_plan"]


class QueryPlan:
    """A compiled, canonical evaluation plan for one regular path query.

    The plan holds the trimmed minimal DFA of the query with states
    relabelled to ``0..state_count-1`` in canonical BFS order, plus the
    derived structures the evaluator needs:

    * :attr:`rev_by_state` — for each state ``s``, the tuple of
      ``(label, source_state)`` pairs such that ``source -label-> s``;
    * :attr:`fingerprint` — a stable hexadecimal digest of the canonical
      automaton.  Language-equivalent queries produce identical
      fingerprints (the trim minimal DFA of a regular language is unique
      up to isomorphism, and the BFS relabelling fixes the isomorphism).

    Plans are immutable and graph-independent: the same plan evaluates
    against any number of graphs.
    """

    __slots__ = (
        "fingerprint",
        "state_count",
        "initial",
        "accepting",
        "rev_by_state",
        "transitions",
        "alphabet",
        "is_empty",
        "accepts_empty_word",
    )

    def __init__(self, dfa: DFA, *, assume_minimal: bool = False):
        if not assume_minimal:
            dfa = minimize(dfa)
        canonical = _canonical_trim(dfa)
        if canonical is None:
            # empty language: nothing to run, constant-time evaluation
            self.state_count = 0
            self.initial = 0
            self.accepting: Tuple[int, ...] = ()
            self.rev_by_state: Tuple[Tuple[Tuple[str, int], ...], ...] = ()
            self.transitions: Tuple[Tuple[int, str, int], ...] = ()
            self.alphabet: FrozenSet[str] = frozenset()
            self.is_empty = True
            self.accepts_empty_word = False
            self.fingerprint = "empty"
            return

        self.state_count = canonical.state_count()
        self.initial = canonical.initial_state
        self.accepting = tuple(sorted(canonical.accepting_states))
        self.transitions = tuple(
            sorted(
                canonical.transitions(),
                key=lambda arc: (arc[0], symbol_sort_key(arc[1]), arc[2]),
            )
        )
        self.alphabet = frozenset(
            symbol for _, symbol, _ in self.transitions
        )
        self.is_empty = False
        self.accepts_empty_word = canonical.is_accepting(self.initial)

        rev: List[List[Tuple[str, int]]] = [[] for _ in range(self.state_count)]
        for source, symbol, target in self.transitions:
            rev[target].append((symbol, source))
        self.rev_by_state = tuple(tuple(arcs) for arcs in rev)

        payload = repr(
            (self.state_count, self.initial, self.accepting, self.transitions)
        ).encode()
        self.fingerprint = hashlib.sha1(payload).hexdigest()

    def __repr__(self) -> str:
        return (
            f"<QueryPlan {self.fingerprint[:10]} {self.state_count} states, "
            f"{len(self.transitions)} transitions>"
        )


def _canonical_trim(dfa: DFA) -> Optional[DFA]:
    """The canonical evaluation automaton of ``dfa`` (``None`` if empty).

    Keeps only states that are both reachable and productive — dead
    states (e.g. a completion sink, or branches over symbols absent from
    the language) never contribute to an answer set, and dropping them
    makes the fingerprint depend on the language alone, not on the
    declared alphabet of the source expression.
    """
    keep = dfa.reachable_states() & dfa.productive_states()
    if dfa.initial_state not in keep:
        return None
    trimmed = DFA(dfa.initial_state)
    for state in keep:
        trimmed.add_state(state)
    trimmed.set_initial(dfa.initial_state)
    for state in keep:
        if dfa.is_accepting(state):
            trimmed.set_accepting(state)
        for symbol, target in dfa.outgoing(state).items():
            if target in keep:
                trimmed.add_transition(state, symbol, target)
    return trimmed.relabeled()


class _GraphCache:
    """Per-graph answer cache: built for exactly one graph version.

    ``meta`` remembers, per fingerprint, the plan facts needed to decide
    delta retention without the plan object: its alphabet and whether it
    accepts the empty word.
    """

    __slots__ = ("version", "answers", "meta")

    #: upgraded/dropped through QueryEngine.refresh(), which
    #: GraphWorkspace.refresh()/invalidate() drive per graph.
    __workspace_hook__ = "engine.answers"

    def __init__(self, version: int):
        self.version = version
        self.answers: Dict[str, FrozenSet[Node]] = {}
        self.meta: Dict[str, Tuple[FrozenSet[str], bool]] = {}


class QueryEngine:
    """Compiles, batches and caches RPQ evaluation over labelled graphs.

    One engine instance owns a plan cache (query → :class:`QueryPlan`)
    and an answer cache (graph × plan → answer set).  All methods are
    semantically identical to the naive helpers in
    :mod:`repro.query.evaluation`; only the cost model changes.

    Parameters
    ----------
    max_cached_answers_per_graph:
        Upper bound on memoised answer sets per graph snapshot (oldest
        entries are evicted first).
    max_cached_expression_plans:
        Upper bound on plans cached for raw string expressions.
    """

    def __init__(
        self,
        *,
        max_cached_answers_per_graph: int = 512,
        max_cached_expression_plans: int = 1024,
    ):
        self._max_answers = max_cached_answers_per_graph
        self._max_expression_plans = max_cached_expression_plans
        self._answer_caches: "weakref.WeakKeyDictionary[LabeledGraph, _GraphCache]" = (
            weakref.WeakKeyDictionary()
        )
        # DFA plans are keyed per object and remembered with the DFA's
        # version at compile time: DFAs are mutable, so a stale entry is
        # recompiled instead of served.
        self._dfa_plans: "weakref.WeakKeyDictionary[DFA, Tuple[int, QueryPlan]]" = (
            weakref.WeakKeyDictionary()
        )
        # LRU: hits move entries to the back, eviction pops the front —
        # a hot plan survives arbitrary eviction pressure
        self._expression_plans: "OrderedDict[str, QueryPlan]" = OrderedDict()
        #: cache statistics, exposed through :meth:`stats`
        self._answer_hits = 0
        self._answer_misses = 0
        self._plan_hits = 0
        self._plan_misses = 0
        self._batch_passes = 0
        self._answers_retained = 0
        self._answers_dropped = 0
        self._delta_refreshes = 0

    # ------------------------------------------------------------------
    # plan compilation
    # ------------------------------------------------------------------
    def plan(self, query: QueryLike) -> QueryPlan:
        """Compile ``query`` into its canonical :class:`QueryPlan`.

        Compilation (parse → DFA → minimise → trim → fingerprint) runs at
        most once per query object / expression string; afterwards the
        cached plan is returned.
        """
        if isinstance(query, PathQuery):
            plan = query._plan
            if plan is None:
                self._plan_misses += 1
                plan = QueryPlan(query.dfa, assume_minimal=True)
                query._plan = plan
            else:
                self._plan_hits += 1
            return plan
        if isinstance(query, DFA):
            cached = self._dfa_plans.get(query)
            if cached is not None and cached[0] == query.version:
                self._plan_hits += 1
                return cached[1]
            self._plan_misses += 1
            plan = QueryPlan(query)
            self._dfa_plans[query] = (query.version, plan)
            return plan
        if isinstance(query, str):
            plan = self._expression_plans.get(query)
            if plan is None:
                self._plan_misses += 1
                plan = QueryPlan(PathQuery(query).dfa, assume_minimal=True)
                if len(self._expression_plans) >= self._max_expression_plans:
                    self._expression_plans.popitem(last=False)
                self._expression_plans[query] = plan
            else:
                self._plan_hits += 1
                self._expression_plans.move_to_end(query)
            return plan
        # Regex AST (rare; not identity-cached — wrap in a PathQuery to reuse)
        self._plan_misses += 1
        return QueryPlan(PathQuery(query).dfa, assume_minimal=True)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, graph: LabeledGraph, query: QueryLike) -> FrozenSet[Node]:
        """The set of nodes of ``graph`` selected by ``query`` (cached)."""
        return self.evaluate_many(graph, (query,))[0]

    def evaluate_many(
        self, graph: LabeledGraph, queries: Iterable[QueryLike]
    ) -> List[FrozenSet[Node]]:
        """Evaluate a whole candidate set in one shared product pass.

        Plans are deduplicated by fingerprint and answers are served from
        the cache where possible; all remaining distinct plans run as a
        single disjoint-union automaton in **one** backward pass over the
        indexed graph.  The returned list is aligned with ``queries`` and
        identical to calling :meth:`evaluate` per query.
        """
        plans = [self.plan(query) for query in queries]
        if not plans:
            return []
        cache = self._graph_cache(graph)

        answers: Dict[str, FrozenSet[Node]] = {}
        missing: List[QueryPlan] = []
        pending: set = set()
        for plan in plans:
            if plan.fingerprint in answers or plan.fingerprint in pending:
                continue
            if plan.is_empty:
                answers[plan.fingerprint] = frozenset()
                continue
            cached = cache.answers.get(plan.fingerprint)
            if cached is not None:
                self._answer_hits += 1
                answers[plan.fingerprint] = cached
            else:
                self._answer_misses += 1
                pending.add(plan.fingerprint)
                missing.append(plan)

        if missing:
            index = graph.label_index()
            for plan, answer in zip(missing, self._batch_backward(index, missing)):
                answers[plan.fingerprint] = answer
                self._remember(cache, plan, answer)

        return [answers[plan.fingerprint] for plan in plans]

    def selects(self, graph: LabeledGraph, query: QueryLike, node: Node) -> bool:
        """True when ``query`` selects ``node`` in ``graph``.

        Served from the answer cache when the full answer is already
        known; otherwise a forward product search restricted to what is
        reachable from ``node`` runs on the graph index (cheaper than a
        global evaluation for one-off automata such as the learner's
        merge candidates).
        """
        if node not in graph:
            from repro.exceptions import NodeNotFoundError

            raise NodeNotFoundError(node)

        cached_plan = self._peek_plan(query)
        if cached_plan is not None:
            cache = self._answer_caches.get(graph)
            if cache is not None:
                if cache.version != graph.version:
                    # delta-upgrade (or drop) before consulting the entry
                    cache = self._graph_cache(graph)
                answer = cache.answers.get(cached_plan.fingerprint)
                if answer is not None:
                    self._answer_hits += 1
                    return node in answer

        dfa = query.dfa if isinstance(query, PathQuery) else query
        if not isinstance(dfa, DFA):
            # strings / ASTs: compile fully — the plan cache makes repeats free
            return node in self.evaluate(graph, query)
        return self._forward_selects(graph.label_index(), dfa, node)

    def answer_signature(self, graph: LabeledGraph, query: QueryLike) -> Tuple[Node, ...]:
        """Sorted tuple of selected nodes — a hashable answer fingerprint."""
        return tuple(sorted(self.evaluate(graph, query), key=str))

    def selection_metrics(
        self, graph: LabeledGraph, learned: QueryLike, goal: QueryLike
    ) -> Dict[str, float]:
        """Precision / recall / F1 of ``learned`` against ``goal`` on ``graph``."""
        learned_answer, goal_answer = self.evaluate_many(graph, (learned, goal))
        true_positives = len(learned_answer & goal_answer)
        precision = (
            true_positives / len(learned_answer)
            if learned_answer
            else (1.0 if not goal_answer else 0.0)
        )
        recall = true_positives / len(goal_answer) if goal_answer else 1.0
        f1 = (2 * precision * recall / (precision + recall)) if (precision + recall) else 0.0
        return {
            "precision": precision,
            "recall": recall,
            "f1": f1,
            "learned_size": float(len(learned_answer)),
            "goal_size": float(len(goal_answer)),
        }

    # ------------------------------------------------------------------
    # cache management
    # ------------------------------------------------------------------
    def invalidate(self, graph: Optional[LabeledGraph] = None) -> None:
        """Drop cached answers (for ``graph``, or everywhere when ``None``).

        Normally unnecessary — version bumps invalidate automatically —
        but useful to bound memory in long-running processes.
        """
        if graph is None:
            self._answer_caches.clear()
        else:
            self._answer_caches.pop(graph, None)

    def refresh(self, graph: Optional[LabeledGraph] = None) -> Dict[str, int]:
        """Delta-upgrade stale answer caches instead of waiting for a miss.

        For ``graph`` (or every tracked graph when ``None``): if its cache
        is stale and the graph's delta journal can bridge the gap, retain
        every answer whose plan the deltas cannot have changed and drop
        the rest; when the journal cannot bridge (window exceeded, opaque
        step, disabled journal), fall back to the whole-drop the
        pre-journal engine always performed.

        Returns the counters for this call:
        ``{"answers_retained", "answers_dropped", "delta_refreshes"}``.
        """
        retained_before = self._answers_retained
        dropped_before = self._answers_dropped
        refreshes_before = self._delta_refreshes
        targets = (graph,) if graph is not None else tuple(self._answer_caches)
        for target in targets:
            cache = self._answer_caches.get(target)
            if cache is not None and cache.version != target.version:
                self._answer_caches[target] = self._upgrade_cache(target, cache)
        return {
            "answers_retained": self._answers_retained - retained_before,
            "answers_dropped": self._answers_dropped - dropped_before,
            "delta_refreshes": self._delta_refreshes - refreshes_before,
        }

    def stats(self) -> Dict[str, int]:
        """Cache counters: answer/plan hits and misses, batch passes."""
        return {
            "answer_hits": self._answer_hits,
            "answer_misses": self._answer_misses,
            "plan_hits": self._plan_hits,
            "plan_misses": self._plan_misses,
            "batch_passes": self._batch_passes,
            "answers_retained": self._answers_retained,
            "answers_dropped": self._answers_dropped,
            "delta_refreshes": self._delta_refreshes,
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _graph_cache(self, graph: LabeledGraph) -> _GraphCache:
        cache = self._answer_caches.get(graph)
        if cache is None:
            cache = _GraphCache(graph.version)
            self._answer_caches[graph] = cache
        elif cache.version != graph.version:
            cache = self._upgrade_cache(graph, cache)
            self._answer_caches[graph] = cache
        return cache

    def _upgrade_cache(self, graph: LabeledGraph, cache: _GraphCache) -> _GraphCache:
        """A cache at ``graph.version`` keeping every answer the journal
        proves untouched (empty when the journal cannot bridge)."""
        deltas = graph.deltas_since(cache.version)
        if deltas == ():  # already current (raced by a concurrent upgrade)
            return cache
        fresh = _GraphCache(graph.version)
        if deltas is None:
            self._answers_dropped += len(cache.answers)
            return fresh
        touched: set = set()
        nodes_changed = False
        for delta in deltas:
            touched.update(delta.labels_touched)
            nodes_changed = nodes_changed or delta.nodes_changed
        for fingerprint, answer in cache.answers.items():
            meta = cache.meta.get(fingerprint)
            if (
                meta is None
                or not meta[0].isdisjoint(touched)
                or (meta[1] and nodes_changed)
            ):
                self._answers_dropped += 1
                continue
            fresh.answers[fingerprint] = answer
            fresh.meta[fingerprint] = meta
            self._answers_retained += 1
        self._delta_refreshes += 1
        return fresh

    def _remember(self, cache: _GraphCache, plan: QueryPlan, answer: FrozenSet[Node]) -> None:
        if len(cache.answers) >= self._max_answers:
            evicted = next(iter(cache.answers))
            cache.answers.pop(evicted)
            cache.meta.pop(evicted, None)
        cache.answers[plan.fingerprint] = answer
        cache.meta[plan.fingerprint] = (plan.alphabet, plan.accepts_empty_word)

    def _peek_plan(self, query: QueryLike) -> Optional[QueryPlan]:
        """Return the plan of ``query`` only if it is already compiled."""
        if isinstance(query, PathQuery):
            return query._plan
        if isinstance(query, DFA):
            cached = self._dfa_plans.get(query)
            if cached is not None and cached[0] == query.version:
                return cached[1]
            return None
        if isinstance(query, str):
            return self._expression_plans.get(query)
        return None

    def _batch_backward(
        self, index: GraphLabelIndex, plans: Sequence[QueryPlan]
    ) -> List[FrozenSet[Node]]:
        """One backward fixed-point pass for a disjoint union of plans.

        Product states are encoded as ``global_state * n + node_id`` into
        a flat bytearray, where ``global_state`` offsets each plan's
        states into one shared space — a single frontier serves every
        query of the batch.
        """
        self._batch_passes += 1
        n = index.node_count
        offsets: List[int] = []
        total_states = 0
        for plan in plans:
            offsets.append(total_states)
            total_states += plan.state_count

        if n == 0 or total_states == 0:
            return [frozenset() for _ in plans]

        # reverse arcs per global state, with graph-side CSR resolved up
        # front; labels absent from the graph are dropped here once
        # instead of being tested in the inner loop.
        rev_global: List[List[Tuple[List[int], List[int], int]]] = [
            [] for _ in range(total_states)
        ]
        for plan, offset in zip(plans, offsets):
            for target, arcs in enumerate(plan.rev_by_state):
                resolved = rev_global[offset + target]
                for label, source in arcs:
                    csr = index.reverse_csr(label)
                    if csr is not None:
                        resolved.append((csr[0], csr[1], offset + source))

        # Fixed point by per-state frontiers: `pending[s]` holds node ids
        # newly proved successful in state ``s`` and not yet propagated.
        # Processing a whole frontier at once keeps the hot loop free of
        # per-pair queue traffic.
        successful = bytearray(total_states * n)
        one_row = b"\x01" * n
        pending: List[Iterable[int]] = [() for _ in range(total_states)]
        queued = bytearray(total_states)
        active: deque = deque()
        for plan, offset in zip(plans, offsets):
            for accepting in plan.accepting:
                state = offset + accepting
                if not queued[state]:
                    successful[state * n : (state + 1) * n] = one_row
                    pending[state] = range(n)
                    queued[state] = 1
                    active.append(state)

        while active:
            state = active.popleft()
            queued[state] = 0
            frontier = pending[state]
            pending[state] = ()
            for indptr, indices, source_state in rev_global[state]:
                base = source_state * n
                grown = pending[source_state]
                if not isinstance(grown, list):
                    grown = list(grown)
                before = len(grown)
                for node_id in frontier:
                    for predecessor in indices[indptr[node_id] : indptr[node_id + 1]]:
                        candidate = base + predecessor
                        if not successful[candidate]:
                            successful[candidate] = 1
                            grown.append(predecessor)
                if len(grown) > before:
                    pending[source_state] = grown
                    if not queued[source_state]:
                        queued[source_state] = 1
                        active.append(source_state)

        nodes = index.nodes
        answers: List[FrozenSet[Node]] = []
        for plan, offset in zip(plans, offsets):
            base = (offset + plan.initial) * n
            row = successful[base : base + n]
            answers.append(frozenset(nodes[i] for i in range(n) if row[i]))
        return answers

    @staticmethod
    def _forward_selects(index: GraphLabelIndex, dfa: DFA, node: Node) -> bool:
        """Forward product search from ``(node, initial)`` with early exit."""
        initial = dfa.initial_state
        if dfa.is_accepting(initial):
            return True
        transitions = dfa._transitions
        accepting = dfa._accepting
        out_pairs = index.out_pairs
        start = index.node_ids[node]
        n = index.node_count
        state_ids = {initial: 0}
        seen = {0 * n + start}
        queue: deque = deque([(start, initial)])
        while queue:
            node_id, state = queue.popleft()
            moves = transitions[state]
            for label, target_id in out_pairs(node_id):
                target_state = moves.get(label)
                if target_state is None:
                    continue
                if target_state in accepting:
                    return True
                state_id = state_ids.setdefault(target_state, len(state_ids))
                encoded = state_id * n + target_id
                if encoded not in seen:
                    seen.add(encoded)
                    queue.append((target_id, target_state))
        return False


def compile_plan(query: QueryLike) -> QueryPlan:
    """Compile ``query`` with the process workspace's engine (convenience)."""
    from repro.serving.workspace import default_workspace

    return default_workspace().engine.plan(query)
