"""Regular path queries: semantics, evaluation, and comparison."""

from repro.query.rpq import PathQuery
from repro.query.engine import QueryEngine, QueryPlan, compile_plan
from repro.query.evaluation import (
    answer_signature,
    evaluate_many,
    selection_metrics,
    selects,
    witness_path,
)
from repro.query.containment import (
    containment_counterexample,
    distinguishing_node,
    instance_difference,
    instance_equivalent,
    language_counterexample,
    language_equivalent,
    language_included,
)

__all__ = [
    "PathQuery",
    "QueryEngine",
    "QueryPlan",
    "compile_plan",
    "answer_signature",
    "evaluate_many",
    "selection_metrics",
    "selects",
    "witness_path",
    "containment_counterexample",
    "distinguishing_node",
    "instance_difference",
    "instance_equivalent",
    "language_counterexample",
    "language_equivalent",
    "language_included",
]
