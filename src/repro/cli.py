"""Command-line interface to the GPS reproduction.

Four sub-commands cover the typical workflows without writing Python::

    python -m repro.cli evaluate --graph city.json --query "(tram + bus)* . cinema"
    python -m repro.cli learn    --graph city.json --positive N2 N6 --negative N5
    python -m repro.cli simulate --dataset figure-1 --goal "(tram + bus)* . cinema"
    python -m repro.cli figures
    python -m repro.cli datasets
    python -m repro.cli bench --suite quick --workers 4
    python -m repro.cli lint src/repro --format json

* ``evaluate`` — run a path query on a graph (JSON or TSV edge list) and
  print the selected nodes (optionally with a witness path each);
* ``learn`` — one-shot learning from explicit positive / negative nodes;
* ``simulate`` — run the full interactive loop with a simulated user whose
  goal query is given, and print the session transcript;
* ``figures`` — regenerate the paper's figures;
* ``datasets`` — list the built-in dataset generators with their statistics;
* ``bench`` — run the E1–E5 experiment suite through the deterministic,
  parallel, resumable runner; results stream into a JSONL result store
  under ``--results-dir`` and interrupted runs resume automatically;
* ``chaos`` — smoke-test the reliability layer: drive a fleet of
  sessions under seeded fault injection and verify that every session
  terminates, that the chaos run replays bit-identically under the same
  seed, and that disabling faults reproduces the fault-free traces;
* ``lint`` — run the project's invariant checker (``repro.devtools``)
  over source trees; exits non-zero on any unsuppressed diagnostic.

The CLI is intentionally thin: every sub-command maps onto one documented
library call, so scripting against the library directly is always an
option.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.exceptions import GPSError
from repro.graph import io as graph_io
from repro.graph.datasets import dataset_catalog, list_datasets
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.statistics import compute_statistics
from repro.interactive.oracle import SimulatedUser
from repro.interactive.session import InteractiveSession
from repro.interactive.strategies import STRATEGY_REGISTRY, make_strategy
from repro.interactive.transcript import record_session
from repro.learning.learner import learn_query
from repro.query.evaluation import witness_path
from repro.query.rpq import PathQuery
from repro.serving.workspace import default_workspace


def _load_graph(path: Optional[str], dataset: Optional[str]) -> LabeledGraph:
    """Load a graph from ``--graph`` (JSON / TSV by extension) or ``--dataset``."""
    if (path is None) == (dataset is None):
        raise SystemExit("exactly one of --graph and --dataset is required")
    if dataset is not None:
        catalog = dataset_catalog()
        if dataset not in catalog:
            raise SystemExit(f"unknown dataset {dataset!r}; available: {', '.join(list_datasets())}")
        return catalog[dataset]
    file_path = Path(path)
    if not file_path.exists():
        raise SystemExit(f"graph file not found: {file_path}")
    if file_path.suffix.lower() == ".json":
        return graph_io.load_json(file_path)
    return graph_io.load_edge_list(file_path)


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--graph", help="path to a graph file (.json or tab-separated edge list)")
    parser.add_argument(
        "--dataset", help=f"name of a built-in dataset ({', '.join(list_datasets())})"
    )


def _cmd_evaluate(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph, args.dataset)
    query = PathQuery(args.query)
    answer = sorted(default_workspace().engine.evaluate(graph, query), key=str)
    print(f"query   : {query}")
    print(f"answer  : {len(answer)} node(s)")
    for node in answer:
        if args.witness:
            print(f"  {node}  via {witness_path(graph, query, node)}")
        else:
            print(f"  {node}")
    return 0


def _cmd_learn(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph, args.dataset)
    positive = {node: None for node in args.positive}
    learned = learn_query(
        graph,
        positive=positive,
        negative=list(args.negative),
        max_path_length=args.max_path_length,
    )
    answer = sorted(default_workspace().engine.evaluate(graph, learned), key=str)
    print(f"learned query : {learned}")
    print(f"selects       : {', '.join(str(node) for node in answer) or '(nothing)'}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph, args.dataset)
    user = SimulatedUser(graph, args.goal)
    strategy = make_strategy(args.strategy, seed=args.seed, max_path_length=args.max_path_length)
    session = InteractiveSession(
        graph,
        user,
        strategy=strategy,
        path_validation=not args.no_validation,
        max_path_length=args.max_path_length,
        max_interactions=args.max_interactions,
    )
    result = session.run()
    print(f"goal query      : {args.goal}")
    print(f"strategy        : {args.strategy}")
    print(f"interactions    : {result.interactions}")
    print(f"halted by       : {result.halted_by}")
    print(f"learned query   : {result.learned_query}")
    learned_answer = (
        sorted(default_workspace().engine.evaluate(graph, result.learned_query), key=str)
        if result.learned_query
        else []
    )
    print(f"learned answer  : {', '.join(str(node) for node in learned_answer) or '(nothing)'}")
    print(f"goal answer     : {', '.join(str(node) for node in sorted(user.goal_answer, key=str))}")
    print("transcript:")
    for record in result.records:
        validated = ".".join(record.validated_word) if record.validated_word else "-"
        print(
            f"  #{record.index} {record.node} -> {'+' if record.positive else '-'}"
            f" (zooms={record.zooms}, validated={validated})"
        )
    if args.save_transcript:
        transcript = record_session(result, graph_name=graph.name)
        transcript.save(args.save_transcript)
        print(f"transcript saved to {args.save_transcript}")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments.figures import all_figures

    for name, rendering in all_figures().items():
        print(f"===== {name} =====")
        print(rendering)
        print()
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    for name, graph in dataset_catalog().items():
        stats = compute_statistics(graph).as_dict()
        print(f"{name:16s} {stats}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments.runner import DEFAULT_EXPERIMENTS, ExperimentRunner, ResultStore

    experiments = list(args.experiments if args.experiments else DEFAULT_EXPERIMENTS)
    if args.churn and "churn" not in experiments:
        experiments.append("churn")
    runner = ExperimentRunner(
        suite=args.suite,
        experiments=experiments,
        datasets=args.datasets,
        seed=args.seed,
        per_family=args.per_family,
        workers=args.workers,
    )
    run_name = args.run or f"{args.suite}-{runner.plan_id[:8]}"
    store_dir = Path(args.results_dir) / run_name
    runner.store = ResultStore(store_dir)

    def progress(unit, record, done, total):
        if args.verbose:
            print(f"[{done}/{total}] {unit.label} ({record['seconds']}s)")

    result = runner.run(fresh=args.fresh, progress=progress)
    print(f"run       : {run_name} (plan {runner.plan_id})")
    print(f"store     : {store_dir}")
    print(
        f"units     : {len(result.units)} planned, {len(result.executed_unit_ids)} executed, "
        f"{len(result.resumed_unit_ids)} resumed from store"
    )
    print(f"workers   : {runner.workers}")
    print(f"wall time : {result.seconds}s")
    tables = result.tables
    tables_dir = store_dir / "tables"
    tables_dir.mkdir(parents=True, exist_ok=True)
    for name, table in tables.items():
        (tables_dir / f"{name}.txt").write_text(table.render() + "\n")
    print()
    for name in sorted(tables):
        if name.endswith("_detail") and not args.detail:
            continue
        print(tables[name].render())
        print()
    latency = _latency_report(result)
    if latency:
        import json as _json

        (store_dir / "latency.json").write_text(_json.dumps(latency, indent=2, sort_keys=True))
        print("per-interaction latency percentiles, worst cell per group (seconds):")
        for group, summary in sorted(latency.items()):
            print(
                f"  {group:28s} worst_p50={summary['worst_p50_seconds']:.4f} "
                f"worst_p95={summary['worst_p95_seconds']:.4f} "
                f"worst_max={summary['worst_max_seconds']:.4f} (rows={summary['rows']})"
            )
        print(f"latency summary written to {store_dir / 'latency.json'}")
        print()
    print(f"tables written to {tables_dir}")
    return 0


def _chaos_fleet(args: argparse.Namespace, *, rate: float) -> dict:
    """Drive one fleet of supervised sessions; returns traces + counters.

    Each session gets its *own* injector seeded from ``(seed, index)``,
    so its fault schedule is independent of how the event loop
    interleaves sessions — the property the replay check relies on.
    """
    from repro.interactive.oracle import UnreliableUser
    from repro.reliability import FaultInjector, FaultPlan, RetryPolicy, SupervisionPolicy
    from repro.serving.manager import SessionManager
    from repro.serving.workspace import GraphWorkspace

    graph = dataset_catalog(seed=args.seed).get(args.dataset)
    if graph is None:
        raise SystemExit(
            f"unknown dataset {args.dataset!r}; available: {', '.join(list_datasets())}"
        )
    supervision = SupervisionPolicy(
        retry=RetryPolicy(max_attempts=args.max_attempts, backoff_base=0.0001),
        breaker_consecutive_limit=args.breaker_limit,
        jitter_seed=args.seed,
    )
    manager = SessionManager(
        GraphWorkspace(), dedup=False, supervision=supervision if rate > 0.0 else None
    )
    users = []
    for index in range(args.sessions):
        user = SimulatedUser(graph, args.goal)
        if rate > 0.0:
            plan = FaultPlan(args.seed + index, default_rate=rate)
            user = UnreliableUser(user, FaultInjector(plan))
        users.append(user)
        manager.admit(graph, user, max_interactions=args.max_interactions)
    results = manager.run_all()
    traces = {
        session_id: (
            str(result.learned_query),
            [(str(record.node), record.positive) for record in result.records],
            result.halted_by,
            result.quarantined,
        )
        for session_id, result in sorted(results.items())
    }
    stats = manager.stats()
    return {
        "traces": traces,
        "completed": stats["completed"],
        "quarantined": stats["quarantined"],
        "step_retries": stats["step_retries"],
        "injected_failures": sum(
            getattr(user, "injected_failures", 0) for user in users
        ),
    }


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json as _json

    baseline = _chaos_fleet(args, rate=0.0)
    chaos_a = _chaos_fleet(args, rate=args.rate)
    chaos_b = _chaos_fleet(args, rate=args.rate)
    disabled = _chaos_fleet(args, rate=0.0)

    checks = {
        # every session terminated (retired or quarantined; none hung):
        # run_all returning with a result per admitted session is the proof
        "all_terminated": len(chaos_a["traces"]) == args.sessions
        and chaos_a["completed"] == args.sessions,
        # same seed, same fleet -> bit-identical run including quarantines
        "replay_identical": chaos_a["traces"] == chaos_b["traces"],
        # faults disabled -> the supervised machinery is invisible
        "disabled_identical": disabled["traces"] == baseline["traces"],
        "faults_fired": chaos_a["injected_failures"] > 0 or args.rate == 0.0,
    }
    report = {
        "sessions": args.sessions,
        "rate": args.rate,
        "seed": args.seed,
        "dataset": args.dataset,
        "goal": args.goal,
        "quarantined": chaos_a["quarantined"],
        "step_retries": chaos_a["step_retries"],
        "injected_failures": chaos_a["injected_failures"],
        "checks": checks,
        "ok": all(checks.values()),
    }
    print(f"sessions          : {args.sessions} at {args.rate:.0%} fault rate (seed {args.seed})")
    print(f"quarantined       : {report['quarantined']}")
    print(f"step retries      : {report['step_retries']}")
    print(f"injected failures : {report['injected_failures']}")
    for name, passed in checks.items():
        print(f"check {name:18s}: {'ok' if passed else 'FAILED'}")
    if args.json_output:
        Path(args.json_output).write_text(_json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"report written to {args.json_output}")
    return 0 if report["ok"] else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.devtools import (
        LintConfig,
        error_count,
        lint_paths,
        project_config,
        render_json,
        render_text,
    )

    config = (
        LintConfig.from_file(args.config) if args.config else project_config()
    )
    if args.select:
        config.select = tuple(
            code.strip() for item in args.select for code in item.split(",") if code.strip()
        )
    paths = list(args.paths)
    if args.include_tests and not any(
        str(path).rstrip("/").endswith("tests") for path in paths
    ):
        paths.append("tests")
    diagnostics = lint_paths(
        paths,
        config=config,
        semantic=not args.no_semantic,
        cache_dir=None if args.no_cache else args.cache_dir,
    )
    report = render_json(diagnostics)
    if args.output:
        Path(args.output).write_text(report + "\n")
    if args.format == "json":
        print(report)
    else:
        print(render_text(diagnostics))
    return 1 if error_count(diagnostics) else 0


def _latency_report(result) -> dict:
    """Aggregate per-interaction latency percentile columns per experiment group.

    Any row carrying ``p50_seconds`` (E1 strategy cells, E3 graph sizes)
    contributes.  Aggregation over a group's cells is worst-case (max of
    each percentile across rows) so a latency regression in *any* cell is
    visible in the ``latency.json`` artifact CI uploads; the ``worst_``
    key prefix makes that explicit — these are not percentiles of the
    pooled sample.
    """
    grouped: dict = {}
    for experiment in ("e1", "e3"):
        for row in result.rows(experiment):
            if "p50_seconds" not in row:
                continue
            if experiment == "e1":
                group = f"e1 [{row.get('strategy', '?')}]"
            else:
                group = f"e3 nodes={row.get('nodes', '?')}"
            summary = grouped.setdefault(
                group,
                {
                    "worst_p50_seconds": 0.0,
                    "worst_p95_seconds": 0.0,
                    "worst_max_seconds": 0.0,
                    "rows": 0,
                },
            )
            summary["worst_p50_seconds"] = max(
                summary["worst_p50_seconds"], float(row["p50_seconds"])
            )
            summary["worst_p95_seconds"] = max(
                summary["worst_p95_seconds"], float(row["p95_seconds"])
            )
            summary["worst_max_seconds"] = max(
                summary["worst_max_seconds"], float(row.get("max_seconds", 0.0))
            )
            summary["rows"] += 1
    return grouped


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GPS — interactive path query specification on graph databases",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    evaluate_parser = subparsers.add_parser("evaluate", help="evaluate a path query on a graph")
    _add_graph_arguments(evaluate_parser)
    evaluate_parser.add_argument("--query", required=True, help="regular path query, e.g. '(tram + bus)* . cinema'")
    evaluate_parser.add_argument("--witness", action="store_true", help="also print a witness path per selected node")
    evaluate_parser.set_defaults(handler=_cmd_evaluate)

    learn_parser = subparsers.add_parser("learn", help="learn a query from node examples")
    _add_graph_arguments(learn_parser)
    learn_parser.add_argument("--positive", nargs="+", required=True, help="positive example nodes")
    learn_parser.add_argument("--negative", nargs="*", default=[], help="negative example nodes")
    learn_parser.add_argument("--max-path-length", type=int, default=6)
    learn_parser.set_defaults(handler=_cmd_learn)

    simulate_parser = subparsers.add_parser(
        "simulate", help="run the interactive loop with a simulated user"
    )
    _add_graph_arguments(simulate_parser)
    simulate_parser.add_argument("--goal", required=True, help="the simulated user's goal query")
    simulate_parser.add_argument(
        "--strategy", default="most-informative", choices=sorted(STRATEGY_REGISTRY)
    )
    simulate_parser.add_argument("--no-validation", action="store_true", help="disable path validation")
    simulate_parser.add_argument("--max-interactions", type=int, default=50)
    simulate_parser.add_argument("--max-path-length", type=int, default=6)
    simulate_parser.add_argument("--seed", type=int, default=None)
    simulate_parser.add_argument("--save-transcript", help="write the session transcript to this JSON file")
    simulate_parser.set_defaults(handler=_cmd_simulate)

    figures_parser = subparsers.add_parser("figures", help="regenerate the paper's figures")
    figures_parser.set_defaults(handler=_cmd_figures)

    datasets_parser = subparsers.add_parser("datasets", help="list the built-in datasets")
    datasets_parser.set_defaults(handler=_cmd_datasets)

    from repro.experiments.runner import DEFAULT_EXPERIMENTS, EXPERIMENTS

    bench_parser = subparsers.add_parser(
        "bench",
        help="run the experiment suite through the parallel, resumable runner",
    )
    bench_parser.add_argument("--suite", choices=("quick", "standard"), default="quick")
    bench_parser.add_argument(
        "--experiments", nargs="+", choices=EXPERIMENTS, default=None,
        help="subset of experiments to run (default: all but the churn family)",
    )
    bench_parser.add_argument(
        "--churn", action="store_true",
        help="include the streaming churn family (sliding-window edge streams)",
    )
    bench_parser.add_argument(
        "--datasets", nargs="+", default=None,
        help=f"restrict workload cases to these datasets ({', '.join(list_datasets())})",
    )
    bench_parser.add_argument("--workers", type=int, default=1, help="process-pool size (1 = inline)")
    bench_parser.add_argument("--seed", type=int, default=11, help="base seed for suites and units")
    bench_parser.add_argument(
        "--per-family", type=int, default=2, help="goal queries per family (standard suite)"
    )
    bench_parser.add_argument(
        "--run", default=None,
        help="result-store name under --results-dir (default: <suite>-<plan hash>)",
    )
    bench_parser.add_argument(
        "--results-dir", default="benchmarks/results",
        help="root directory for JSONL result stores",
    )
    bench_parser.add_argument(
        "--fresh", action="store_true",
        help="clear the result store first instead of resuming completed units",
    )
    bench_parser.add_argument("--detail", action="store_true", help="also print the detail tables")
    bench_parser.add_argument("--verbose", action="store_true", help="print one line per executed unit")
    bench_parser.set_defaults(handler=_cmd_bench)

    chaos_parser = subparsers.add_parser(
        "chaos",
        help="smoke-test fault injection + supervision on a session fleet",
    )
    chaos_parser.add_argument("--sessions", type=int, default=16, help="fleet size")
    chaos_parser.add_argument(
        "--rate", type=float, default=0.05, help="injected fault probability per oracle call"
    )
    chaos_parser.add_argument("--seed", type=int, default=20150323, help="base fault-plan seed")
    chaos_parser.add_argument("--dataset", default="figure-1", help="dataset the fleet learns on")
    chaos_parser.add_argument(
        "--goal", default="(tram + bus)* . cinema", help="the simulated users' goal query"
    )
    chaos_parser.add_argument("--max-interactions", type=int, default=15)
    chaos_parser.add_argument(
        "--max-attempts", type=int, default=6, help="retry budget per session step"
    )
    chaos_parser.add_argument(
        "--breaker-limit", type=int, default=10, help="consecutive step failures before quarantine"
    )
    chaos_parser.add_argument(
        "--json-output", default=None, help="also write the JSON report to this file"
    )
    chaos_parser.set_defaults(handler=_cmd_chaos)

    lint_parser = subparsers.add_parser(
        "lint",
        help="check the project's determinism/workspace/cache/lock/API invariants",
    )
    lint_parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to check (default: src/repro)",
    )
    lint_parser.add_argument("--format", choices=("text", "json"), default="text")
    lint_parser.add_argument(
        "--select", action="append", default=None, metavar="REPx00",
        help="restrict to these rule families; repeat or comma-separate (default: all)",
    )
    lint_parser.add_argument(
        "--config", default=None,
        help="JSON overlay merged over the project lint config",
    )
    lint_parser.add_argument(
        "--output", default=None,
        help="also write the JSON report to this file (the CI artifact)",
    )
    lint_parser.add_argument(
        "--include-tests", action="store_true",
        help="also lint tests/ (findings there are warn-only: reported, "
        "never exit-code-failing)",
    )
    lint_parser.add_argument(
        "--no-semantic", action="store_true",
        help="skip the interprocedural pass (REP110/REP310/REP70x)",
    )
    lint_parser.add_argument(
        "--cache-dir", default=".repro-lint-cache",
        help="content-hash cache for per-module semantic summaries "
        "(default: .repro-lint-cache)",
    )
    lint_parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the semantic summary cache for this run",
    )
    lint_parser.set_defaults(handler=_cmd_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except GPSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
