"""``repro.devtools`` — the project's own static-analysis toolkit.

Five PRs of optimisation turned correctness into unwritten invariants:
explicit RNGs on every seeded path, version/fingerprint keys on every
memo, workspace-resolved shared state, locks never held across builds,
a documented public surface.  ``repro lint`` (this package) makes the
machine check them; see the README's "Invariants" section for the rule
table and the suppression workflow.

Programmatic entry points::

    from repro.devtools import lint_paths, lint_source, project_config

    diagnostics = lint_paths(["src/repro"])
    for diagnostic in diagnostics:
        print(diagnostic.render())
"""

from repro.devtools.config import ALL_FAMILIES, LintConfig, project_config
from repro.devtools.diagnostics import (
    Diagnostic,
    Suppression,
    apply_suppressions,
    family_of,
    scan_suppressions,
)
from repro.devtools.registry import (
    FileContext,
    RuleInfo,
    SemanticRuleInfo,
    registered_rules,
    registered_semantic_rules,
    rule,
    semantic_rule,
)
from repro.devtools.runner import (
    error_count,
    iter_python_files,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)

__all__ = [
    "ALL_FAMILIES",
    "Diagnostic",
    "FileContext",
    "LintConfig",
    "RuleInfo",
    "SemanticRuleInfo",
    "Suppression",
    "apply_suppressions",
    "error_count",
    "family_of",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "project_config",
    "registered_rules",
    "registered_semantic_rules",
    "render_json",
    "render_text",
    "rule",
    "scan_suppressions",
    "semantic_rule",
]
