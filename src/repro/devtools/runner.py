"""File walking, rule dispatch and report rendering for ``repro lint``.

The pipeline per file: parse → scan suppression pragmas → run every
enabled rule family → drop allowlisted diagnostics → apply suppressions
(collecting hygiene findings about the pragmas themselves) → sort.
Unparseable files produce a single ``REP003`` diagnostic instead of
crashing the run — the tier-1 suite is what guards syntax.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.devtools.config import LintConfig, project_config
from repro.devtools.diagnostics import (
    PARSE_ERROR,
    Diagnostic,
    apply_suppressions,
    scan_suppressions,
)
from repro.devtools.registry import FileContext, registered_rules


def lint_source(
    source: str, path: str = "<memory>", config: Optional[LintConfig] = None
) -> List[Diagnostic]:
    """Lint one source string as if it lived at ``path``.

    The entry point the fixture tests drive; :func:`lint_paths` reduces
    to this per file.
    """
    if config is None:
        config = project_config()
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [
            Diagnostic(
                path,
                error.lineno or 1,
                (error.offset or 0) + 1,
                PARSE_ERROR,
                f"file does not parse: {error.msg}",
            )
        ]
    ctx = FileContext(path=path, source=source, tree=tree)
    suppressions, pragma_problems = scan_suppressions(source, path)
    diagnostics: List[Diagnostic] = []
    for info in registered_rules():
        if not config.enabled(info.family):
            continue
        for diagnostic in info.check(ctx, config):
            if not config.is_allowed(diagnostic):
                diagnostics.append(diagnostic)
    kept = apply_suppressions(
        diagnostics,
        suppressions,
        path,
        report_unused=config.report_unused_suppressions,
        enabled=config.enabled,
    )
    kept.extend(pragma_problems)
    return sorted(kept, key=Diagnostic.sort_key)


def iter_python_files(paths: Sequence["Path | str"]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths`` (files pass through directly)."""
    for entry in paths:
        entry_path = Path(entry)
        if entry_path.is_dir():
            for found in sorted(entry_path.rglob("*.py")):
                if "__pycache__" not in found.parts:
                    yield found
        elif entry_path.suffix == ".py":
            yield entry_path


def lint_paths(
    paths: Sequence["Path | str"],
    config: Optional[LintConfig] = None,
    root: Optional["Path | str"] = None,
) -> List[Diagnostic]:
    """Lint every Python file under ``paths``.

    Diagnostics carry repo-root-relative posix paths (``root`` defaults
    to the working directory) so allowlist patterns written as
    ``src/repro/...`` match regardless of how the target was spelled.
    """
    if config is None:
        config = project_config()
    base = (Path(root) if root is not None else Path.cwd()).resolve()
    diagnostics: List[Diagnostic] = []
    for file_path in iter_python_files(paths):
        try:
            relative = file_path.resolve().relative_to(base).as_posix()
        except ValueError:
            relative = file_path.as_posix()
        diagnostics.extend(
            lint_source(file_path.read_text(), path=relative, config=config)
        )
    return sorted(diagnostics, key=Diagnostic.sort_key)


def render_text(diagnostics: Iterable[Diagnostic]) -> str:
    """Human report: one line per diagnostic plus a per-rule summary."""
    listed = list(diagnostics)
    lines = [diagnostic.render() for diagnostic in listed]
    if listed:
        by_rule: dict = {}
        for diagnostic in listed:
            by_rule[diagnostic.rule_id] = by_rule.get(diagnostic.rule_id, 0) + 1
        summary = ", ".join(
            f"{rule_id}: {count}" for rule_id, count in sorted(by_rule.items())
        )
        lines.append(f"-- {len(listed)} diagnostic(s) ({summary})")
    else:
        lines.append("-- clean (0 diagnostics)")
    return "\n".join(lines)


def render_json(diagnostics: Iterable[Diagnostic]) -> str:
    """Machine report (the CI ``LINT_report.json`` artifact)."""
    listed = list(diagnostics)
    by_rule: dict = {}
    for diagnostic in listed:
        by_rule[diagnostic.rule_id] = by_rule.get(diagnostic.rule_id, 0) + 1
    return json.dumps(
        {
            "count": len(listed),
            "by_rule": dict(sorted(by_rule.items())),
            "diagnostics": [diagnostic.as_dict() for diagnostic in listed],
        },
        indent=2,
        sort_keys=False,
    )
