"""File walking, rule dispatch and report rendering for ``repro lint``.

Two passes share one walk:

* **syntactic**, per file: parse → scan suppression pragmas → run every
  enabled rule family → drop allowlisted diagnostics;
* **semantic**, per tree: extract (or cache-load) a module summary per
  file, link them into a project model, run the interprocedural rules
  (REP110/REP310/REP70x).

Suppressions are applied *after* both passes, per file, so one pragma
accounting covers syntactic and semantic findings alike (a waiver that
only matches a semantic finding is used, not stale).  Unparseable files
produce a single ``REP003`` diagnostic instead of crashing the run —
the tier-1 suite is what guards syntax.
"""

from __future__ import annotations

import ast
import dataclasses
import json
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.devtools.config import LintConfig, project_config
from repro.devtools.diagnostics import (
    PARSE_ERROR,
    Diagnostic,
    Suppression,
    apply_suppressions,
    family_of,
    scan_suppressions,
)
from repro.devtools.registry import FileContext, registered_rules


def lint_source(
    source: str, path: str = "<memory>", config: Optional[LintConfig] = None
) -> List[Diagnostic]:
    """Lint one source string as if it lived at ``path``.

    The entry point the fixture tests drive; :func:`lint_paths` reduces
    to this per file.
    """
    if config is None:
        config = project_config()
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [
            Diagnostic(
                path,
                error.lineno or 1,
                (error.offset or 0) + 1,
                PARSE_ERROR,
                f"file does not parse: {error.msg}",
            )
        ]
    ctx = FileContext(path=path, source=source, tree=tree)
    suppressions, pragma_problems = scan_suppressions(source, path)
    diagnostics: List[Diagnostic] = []
    for info in registered_rules():
        if not config.enabled(info.family):
            continue
        for diagnostic in info.check(ctx, config):
            if not config.is_allowed(diagnostic):
                diagnostics.append(diagnostic)
    kept = apply_suppressions(
        diagnostics,
        suppressions,
        path,
        report_unused=config.report_unused_suppressions,
        enabled=config.enabled,
    )
    kept.extend(pragma_problems)
    return sorted(kept, key=Diagnostic.sort_key)


def iter_python_files(paths: Sequence["Path | str"]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths`` (files pass through directly).

    Directories named ``fixtures`` are lint *corpora* — deliberately
    violating files the fixture tests lint explicitly (by passing the
    fixture directory itself) — so the recursive walk skips them; a
    ``fixtures`` component already present in the given path is the
    caller opting in.
    """
    for entry in paths:
        entry_path = Path(entry)
        if entry_path.is_dir():
            for found in sorted(entry_path.rglob("*.py")):
                if "__pycache__" in found.parts:
                    continue
                if "fixtures" in found.relative_to(entry_path).parts[:-1]:
                    continue
                yield found
        elif entry_path.suffix == ".py":
            yield entry_path


def lint_paths(
    paths: Sequence["Path | str"],
    config: Optional[LintConfig] = None,
    root: Optional["Path | str"] = None,
    *,
    semantic: bool = True,
    cache_dir: Optional["Path | str"] = None,
) -> List[Diagnostic]:
    """Lint every Python file under ``paths`` (both passes).

    Diagnostics carry repo-root-relative posix paths (``root`` defaults
    to the working directory) so allowlist patterns written as
    ``src/repro/...`` match regardless of how the target was spelled.
    ``semantic=False`` skips the interprocedural pass; ``cache_dir``
    enables the content-hash summary cache (cold runs populate it,
    warm runs skip extraction entirely).
    """
    from repro.devtools.semantic import (
        SummaryCache,
        extract_module,
        semantic_pass,
    )

    if config is None:
        config = project_config()
    base = (Path(root) if root is not None else Path.cwd()).resolve()
    cache = SummaryCache(cache_dir) if (semantic and cache_dir) else None
    knobs = config.extraction_knobs() if semantic else None
    per_file: Dict[str, Tuple[List[Suppression], List[Diagnostic], List[Diagnostic]]] = {}
    summaries: Dict[str, "object"] = {}
    for file_path in iter_python_files(paths):
        try:
            relative = file_path.resolve().relative_to(base).as_posix()
        except ValueError:
            relative = file_path.as_posix()
        source = file_path.read_text()
        try:
            tree = ast.parse(source)
        except SyntaxError as error:
            per_file[relative] = (
                [],
                [],
                [
                    Diagnostic(
                        relative,
                        error.lineno or 1,
                        (error.offset or 0) + 1,
                        PARSE_ERROR,
                        f"file does not parse: {error.msg}",
                    )
                ],
            )
            continue
        ctx = FileContext(path=relative, source=source, tree=tree)
        suppressions, pragma_problems = scan_suppressions(source, relative)
        diagnostics: List[Diagnostic] = []
        for info in registered_rules():
            if not config.enabled(info.family):
                continue
            for diagnostic in info.check(ctx, config):
                if not config.is_allowed(diagnostic):
                    diagnostics.append(diagnostic)
        per_file[relative] = (suppressions, pragma_problems, diagnostics)
        if semantic and knobs is not None:
            summary = cache.load(source, relative, knobs) if cache else None
            if summary is None:
                summary = extract_module(source, relative, knobs, tree=tree)
                if cache is not None:
                    cache.store(source, relative, knobs, summary)
            summaries[relative] = summary
    if summaries:
        for diagnostic in semantic_pass(summaries, config):  # type: ignore[arg-type]
            if diagnostic.path in per_file:
                per_file[diagnostic.path][2].append(diagnostic)
    results: List[Diagnostic] = []
    for relative in sorted(per_file):
        suppressions, pragma_problems, diagnostics = per_file[relative]
        kept = apply_suppressions(
            diagnostics,
            suppressions,
            relative,
            report_unused=config.report_unused_suppressions,
            enabled=config.enabled,
        )
        kept.extend(pragma_problems)
        results.extend(kept)
    results = [_apply_severity(diagnostic, config) for diagnostic in results]
    return sorted(results, key=Diagnostic.sort_key)


def _apply_severity(diagnostic: Diagnostic, config: LintConfig) -> Diagnostic:
    """Downgrade findings under the warn-only path prefixes."""
    if diagnostic.severity == "error" and any(
        diagnostic.path.startswith(prefix) for prefix in config.warn_path_prefixes
    ):
        return dataclasses.replace(diagnostic, severity="warning")
    return diagnostic


def error_count(diagnostics: Iterable[Diagnostic]) -> int:
    """Diagnostics that gate the exit code (warnings don't)."""
    return sum(1 for diagnostic in diagnostics if diagnostic.severity == "error")


def render_text(diagnostics: Iterable[Diagnostic]) -> str:
    """Human report: one line per diagnostic plus a per-rule summary."""
    listed = list(diagnostics)
    lines = [diagnostic.render() for diagnostic in listed]
    if listed:
        by_rule: dict = {}
        for diagnostic in listed:
            by_rule[diagnostic.rule_id] = by_rule.get(diagnostic.rule_id, 0) + 1
        summary = ", ".join(
            f"{rule_id}: {count}" for rule_id, count in sorted(by_rule.items())
        )
        lines.append(f"-- {len(listed)} diagnostic(s) ({summary})")
    else:
        lines.append("-- clean (0 diagnostics)")
    return "\n".join(lines)


def render_json(diagnostics: Iterable[Diagnostic]) -> str:
    """Machine report (the CI ``LINT_report.json`` artifact).

    Byte-identical across runs over the same tree: every aggregate is
    rebuilt from the sorted diagnostic list and nothing run-dependent
    (timings, absolute paths, cache hit rates) is included.
    """
    listed = list(diagnostics)
    by_rule: dict = {}
    by_family: dict = {}
    for diagnostic in listed:
        by_rule[diagnostic.rule_id] = by_rule.get(diagnostic.rule_id, 0) + 1
        family = family_of(diagnostic.rule_id)
        by_family[family] = by_family.get(family, 0) + 1
    return json.dumps(
        {
            "count": len(listed),
            "errors": error_count(listed),
            "warnings": sum(
                1 for diagnostic in listed if diagnostic.severity == "warning"
            ),
            "by_rule": dict(sorted(by_rule.items())),
            "by_family": dict(sorted(by_family.items())),
            "diagnostics": [diagnostic.as_dict() for diagnostic in listed],
        },
        indent=2,
        sort_keys=False,
    )
