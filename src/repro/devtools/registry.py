"""The rule-plugin registry behind ``repro lint``.

A rule family is one function ``(FileContext, LintConfig) ->
Iterable[Diagnostic]`` registered under its family id with the
:func:`rule` decorator.  The runner looks families up here, so adding a
family is: write the module under :mod:`repro.devtools.rules`, decorate
the entry point, import the module from ``rules/__init__``.  Nothing
else changes — the CLI, suppression handling, allowlists and output
formats are family-agnostic.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Tuple

from repro.devtools.config import LintConfig
from repro.devtools.diagnostics import Diagnostic


@dataclass
class FileContext:
    """Everything a rule may inspect about one source file."""

    path: str  # posix relpath used in diagnostics and allowlists
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    def segment(self, node: ast.AST) -> str:
        """Best-effort source text of ``node`` (for symbols/messages)."""
        try:
            return ast.get_source_segment(self.source, node) or ""
        except Exception:
            return ""


RuleFunc = Callable[[FileContext, LintConfig], Iterable[Diagnostic]]


@dataclass(frozen=True)
class RuleInfo:
    """Registry record: the entry point plus report metadata."""

    family: str
    title: str
    check: RuleFunc


RULES: Dict[str, RuleInfo] = {}


def rule(family: str, title: str) -> Callable[[RuleFunc], RuleFunc]:
    """Register ``fn`` as the checker of rule ``family``."""

    def decorator(fn: RuleFunc) -> RuleFunc:
        if family in RULES:
            raise ValueError(f"rule family {family} registered twice")
        RULES[family] = RuleInfo(family, title, fn)
        return fn

    return decorator


def registered_rules() -> Tuple[RuleInfo, ...]:
    """Every registered family, in family-id order (import side effect:
    loading :mod:`repro.devtools.rules` populates the registry)."""
    from repro.devtools import rules  # noqa: F401  -- registration import

    return tuple(RULES[family] for family in sorted(RULES))


# ----------------------------------------------------------------------
# semantic (whole-program) rules
# ----------------------------------------------------------------------
# A semantic rule sees the linked ProjectModel instead of one file:
# ``(ProjectModel, LintConfig) -> Iterable[Diagnostic]``, registered
# per rule id (not per family — the interprocedural checks are distinct
# algorithms, unlike the syntactic families' shared single walk).

SemanticRuleFunc = Callable[[object, LintConfig], Iterable[Diagnostic]]


@dataclass(frozen=True)
class SemanticRuleInfo:
    """Registry record for one whole-program rule."""

    rule_id: str
    family: str
    title: str
    check: SemanticRuleFunc


SEMANTIC_RULES: Dict[str, SemanticRuleInfo] = {}


def semantic_rule(
    rule_id: str, family: str, title: str
) -> Callable[[SemanticRuleFunc], SemanticRuleFunc]:
    """Register ``fn`` as the checker of semantic rule ``rule_id``."""

    def decorator(fn: SemanticRuleFunc) -> SemanticRuleFunc:
        if rule_id in SEMANTIC_RULES:
            raise ValueError(f"semantic rule {rule_id} registered twice")
        SEMANTIC_RULES[rule_id] = SemanticRuleInfo(rule_id, family, title, fn)
        return fn

    return decorator


def registered_semantic_rules() -> Tuple[SemanticRuleInfo, ...]:
    """Every registered semantic rule, in rule-id order (importing the
    rule modules populates the registry)."""
    from repro.devtools.semantic import (  # noqa: F401  -- registration imports
        rules_concurrency,
        rules_invalidation,
        rules_taint,
    )

    return tuple(SEMANTIC_RULES[rule_id] for rule_id in sorted(SEMANTIC_RULES))
