"""Data model of the semantic pass: per-module summaries, JSON-stable.

The semantic layer splits cleanly in two:

* **extraction** (:mod:`repro.devtools.semantic.extract`) — a pure
  function of one module's source producing a :class:`ModuleSummary`:
  every function's call sites (with the locks lexically held at each),
  lock acquisitions, awaits, entropy sources/sinks and the local
  dataflow that connects them, plus the module's classes, imports and
  ``__workspace_hook__`` declarations.  Because extraction sees one file
  at a time and nothing else, summaries are cacheable by content hash
  (:mod:`repro.devtools.semantic.cache`).
* **resolution** (:mod:`repro.devtools.semantic.callgraph`) — links the
  summaries into a project-wide call graph and computes the transitive
  closures the interprocedural rules consume (locks a call may acquire,
  builds it may reach, entropy a return value may carry).  Resolution is
  cheap (no parsing) and re-runs on every lint.

Everything here is a frozen dataclass of primitives and tuples so the
summaries round-trip losslessly through JSON (``to_dict``/``from_dict``)
— the property the content-hash cache and the byte-identical-report
guarantee both rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, Tuple

#: bump when extraction output changes shape or meaning; stale cache
#: entries written by an older analyzer are ignored, never misread
SCHEMA_VERSION = 2

#: an unresolved reference to a call: (kind, name, receiver) where kind
#: is "name" (bare call), "self" (``self.m()``), "attr" (method call on
#: an opaque receiver) or "module" (``alias.f()`` with ``alias`` an
#: imported module)
CallRef = Tuple[str, str, str]


@dataclass(frozen=True)
class ArgDep:
    """What one positional argument of a call derives from, locally."""

    position: int
    #: the argument expression contains a direct entropy source
    tainted: bool = False
    #: line of the local entropy source feeding it (0: none recorded)
    taint_line: int = 0
    #: calls whose return value feeds the argument expression
    dep_calls: Tuple[CallRef, ...] = ()
    #: caller parameter indices feeding the argument expression
    dep_params: Tuple[int, ...] = ()


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    kind: str  # "name" | "self" | "attr" | "module"
    name: str
    receiver: str  # module alias for kind="module", else ""
    line: int
    col: int
    #: lock labels lexically held (``with``-stack) at the call
    locks_held: Tuple[str, ...] = ()
    #: argument dependencies worth recording (taint/call/param deps only)
    arg_deps: Tuple[ArgDep, ...] = ()
    awaited: bool = False

    @property
    def ref(self) -> CallRef:
        return (self.kind, self.name, self.receiver)


@dataclass(frozen=True)
class LockEvent:
    """One lock acquisition (``with <lock>:``) inside a function body."""

    name: str
    #: lock labels already held when this one is acquired
    held: Tuple[str, ...]
    line: int
    col: int


@dataclass(frozen=True)
class AwaitEvent:
    """One ``await`` expression and the lock labels held around it."""

    held: Tuple[str, ...]
    line: int
    col: int


@dataclass(frozen=True)
class Sink:
    """One entropy-sensitive position: memo key, fingerprint, result row."""

    kind: str  # "memo-key" | "fingerprint" | "result-row"
    detail: str  # the memo attribute / fingerprint name / store receiver
    line: int
    col: int
    #: the sink expression contains a direct entropy source
    tainted: bool = False
    taint_line: int = 0
    #: calls whose return value feeds the sink expression
    dep_calls: Tuple[CallRef, ...] = ()
    #: function parameters feeding the sink expression
    dep_params: Tuple[int, ...] = ()


@dataclass(frozen=True)
class FunctionSummary:
    """Everything the semantic rules need to know about one function."""

    module: str
    qualname: str  # "pkg.mod::Class.method" / "pkg.mod::func"
    name: str
    class_name: str  # "" for module-level functions
    line: int
    col: int
    is_async: bool
    params: Tuple[str, ...]
    calls: Tuple[CallSite, ...] = ()
    acquisitions: Tuple[LockEvent, ...] = ()
    awaits: Tuple[AwaitEvent, ...] = ()
    #: a direct entropy source flows into this function's return value
    entropy_return: bool = False
    entropy_line: int = 0
    #: calls whose return value feeds this function's return value
    return_dep_calls: Tuple[CallRef, ...] = ()
    #: parameters that flow through into the return value
    return_dep_params: Tuple[int, ...] = ()
    sinks: Tuple[Sink, ...] = ()


@dataclass(frozen=True)
class ModuleSummary:
    """The cacheable per-module analysis result."""

    module: str  # dotted module name derived from the relpath
    path: str  # repo-root-relative posix path (diagnostic anchor)
    functions: Tuple[FunctionSummary, ...] = ()
    #: (class name, tuple of method names) per class defined here
    classes: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()
    #: (class name, hook string, line, col) per ``__workspace_hook__``
    hooks: Tuple[Tuple[str, str, int, int], ...] = ()
    #: keys of a module-level ``WORKSPACE_HOOKS`` dict literal, if any
    registry_keys: Tuple[str, ...] = ()
    #: ``import x.y as z`` → (z, "x.y")
    import_modules: Tuple[Tuple[str, str], ...] = ()
    #: ``from m import f as g`` → (g, "m", "f")
    import_objects: Tuple[Tuple[str, str, str], ...] = ()


# ----------------------------------------------------------------------
# JSON round-trip
# ----------------------------------------------------------------------
# Summaries are encoded *positionally*: a dataclass becomes
# ``["\x00TypeName", field0, field1, ...]`` in declared-field order, a
# tuple becomes a plain list.  The NUL sigil keeps the type tag out of
# the space of real string values (identifiers and dotted names never
# contain NUL), and dropping per-field keys roughly halves both the
# entry size and the decode time — the cache-load path is what the
# warm-lint speed guarantee rests on.

_TYPES: Dict[str, Any] = {}
_FIELD_NAMES: Dict[type, Tuple[str, ...]] = {}


def _register_types() -> Dict[str, Any]:
    if not _TYPES:
        for cls in (ArgDep, CallSite, LockEvent, AwaitEvent, Sink, FunctionSummary, ModuleSummary):
            _TYPES[cls.__name__] = cls
            _FIELD_NAMES[cls] = tuple(f.name for f in fields(cls))
    return _TYPES


def _to_jsonable(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_to_jsonable(item) for item in value]
    if hasattr(value, "__dataclass_fields__"):
        _register_types()
        return [
            "\x00" + type(value).__name__,
            *(
                _to_jsonable(getattr(value, name))
                for name in _FIELD_NAMES[type(value)]
            ),
        ]
    return value


def _from_jsonable(value: Any) -> Any:
    if isinstance(value, list):
        if not value:
            return ()
        head = value[0]
        if isinstance(head, str) and head.startswith("\x00"):
            cls = _register_types()[head[1:]]
            # frozen-dataclass __init__ pays one object.__setattr__ per
            # field; on the cache-load hot path we build the instance
            # directly (the summaries are plain value objects)
            instance = object.__new__(cls)
            instance.__dict__.update(
                zip(_FIELD_NAMES[cls], (_from_jsonable(item) for item in value[1:]))
            )
            return instance
        return tuple(_from_jsonable(item) for item in value)
    return value


def summary_to_payload(summary: ModuleSummary) -> Any:
    """JSON-serialisable (positional) form of a :class:`ModuleSummary`."""
    return _to_jsonable(summary)


def summary_from_payload(payload: Any) -> ModuleSummary:
    """Inverse of :func:`summary_to_payload`."""
    restored = _from_jsonable(payload)
    if not isinstance(restored, ModuleSummary):
        raise ValueError("payload does not encode a ModuleSummary")
    return restored


@dataclass
class ExtractionKnobs:
    """The config knobs extraction depends on (part of the cache key).

    Resolution-only knobs (build-call names, guard locks, hop bounds,
    invalidation roots) are deliberately absent: changing them re-runs
    resolution but never invalidates cached extraction.
    """

    memo_name_pattern: str = r"cache|memo|plans|answers|entries"
    lock_name_pattern: str = r"lock"
    fingerprint_name_pattern: str = r"fingerprint|digest|signature"
    result_store_pattern: str = r"store"

    def digest_parts(self) -> Tuple[str, ...]:
        return (
            str(SCHEMA_VERSION),
            self.memo_name_pattern,
            self.lock_name_pattern,
            self.fingerprint_name_pattern,
            self.result_store_pattern,
        )


@dataclass
class ProjectModel:
    """The resolved whole-program view handed to semantic rules."""

    #: relpath -> summary, in sorted-path order
    modules: Dict[str, ModuleSummary] = field(default_factory=dict)
    #: qualname -> summary
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    #: (module, function name) -> qualname (module-level defs)
    module_functions: Dict[Tuple[str, str], str] = field(default_factory=dict)
    #: method name -> sorted qualnames across every class
    methods_by_name: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: class name -> {method name -> qualname} (merged across modules)
    class_methods: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: class name -> defining module (first seen wins, sorted order)
    class_modules: Dict[str, str] = field(default_factory=dict)
    #: union of every module's WORKSPACE_HOOKS keys
    registry_keys: frozenset = frozenset()
    #: True when some linted module defines WORKSPACE_HOOKS at all
    has_registry: bool = False
    #: dotted module name -> repo-relative path (diagnostic anchoring)
    module_paths: Dict[str, str] = field(default_factory=dict)

    def modules_path(self, module: str) -> str:
        """The relpath of ``module`` (falls back to the dotted name)."""
        return self.module_paths.get(module, module)
