"""REP110 — interprocedural entropy taint into identity-bearing sinks.

The syntactic determinism family (REP101–104) flags entropy *sources*;
this rule follows the *value*: wall-clock time, unseeded ``random``
draws and builtin ``hash()`` results that travel through at most
``taint_max_hops`` call-graph edges into a **memo key**, a
**fingerprint-named binding** or a **result-store row**.  Those three
positions are where nondeterminism stops being a local wart and
becomes corrupted identity: a memo keyed on ``time.time()`` never hits,
a fingerprint seeded from ``hash()`` differs across processes, a result
row carrying entropy breaks byte-identical reruns.

Hop accounting (bounded to keep the fixpoint cheap and the findings
explainable): a value crossing one call edge — either *returned from* a
callee or *passed into* one — costs one hop; reaching the sink inside
the same function costs zero.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.devtools.config import LintConfig
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import semantic_rule
from repro.devtools.semantic.callgraph import resolve
from repro.devtools.semantic.model import CallRef, ProjectModel


def _entropy_return_depth(
    model: ProjectModel, max_hops: int
) -> Dict[str, int]:
    """Fixpoint: minimal hops for entropy to reach each function's
    return value (0 = a source appears in the return expression)."""
    depth: Dict[str, int] = {
        qualname: 0
        for qualname, function in model.functions.items()
        if function.entropy_return
    }
    changed = True
    while changed:
        changed = False
        for qualname in sorted(model.functions):
            function = model.functions[qualname]
            for ref in function.return_dep_calls:
                for callee in resolve(model, function, ref):
                    through = depth.get(callee)
                    if through is None or through + 1 > max_hops:
                        continue
                    if through + 1 < depth.get(qualname, max_hops + 1):
                        depth[qualname] = through + 1
                        changed = True
    return depth


def _sink_param_depth(
    model: ProjectModel, max_hops: int
) -> Dict[str, Dict[int, Tuple[int, str]]]:
    """Fixpoint: per function, parameters that flow into a sink —
    ``param index -> (hops to the sink, sink description)``."""
    depth: Dict[str, Dict[int, Tuple[int, str]]] = {}
    for qualname in sorted(model.functions):
        function = model.functions[qualname]
        table: Dict[int, Tuple[int, str]] = {}
        for sink in function.sinks:
            for position in sink.dep_params:
                label = f"{sink.kind} '{sink.detail}' ({function.qualname})"
                if position not in table:
                    table[position] = (0, label)
        depth[qualname] = table
    changed = True
    while changed:
        changed = False
        for qualname in sorted(model.functions):
            function = model.functions[qualname]
            table = depth[qualname]
            for call in function.calls:
                for callee in resolve(model, function, call.ref):
                    callee_table = depth.get(callee, {})
                    for arg in call.arg_deps:
                        reached = callee_table.get(arg.position)
                        if reached is None or reached[0] + 1 > max_hops:
                            continue
                        for position in arg.dep_params:
                            hops = reached[0] + 1
                            if position not in table or hops < table[position][0]:
                                table[position] = (hops, reached[1])
                                changed = True
    return depth


def _entropy_of_refs(
    model: ProjectModel,
    function,
    refs: Iterable[CallRef],
    depth: Dict[str, int],
    max_hops: int,
) -> Optional[Tuple[int, str]]:
    """Cheapest entropy-carrying callee among ``refs``: (hops, who)."""
    best: Optional[Tuple[int, str]] = None
    for ref in refs:
        for callee in resolve(model, function, ref):
            through = depth.get(callee)
            if through is None or through + 1 > max_hops:
                continue
            if best is None or through + 1 < best[0]:
                best = (through + 1, callee)
    return best


@semantic_rule("REP110", "REP100", "entropy flows into a memo key, fingerprint or result row")
def check_entropy_taint(
    model: ProjectModel, config: LintConfig
) -> Iterable[Diagnostic]:
    max_hops = config.taint_max_hops
    return_depth = _entropy_return_depth(model, max_hops)
    sink_depth = _sink_param_depth(model, max_hops)
    seen: Set[Tuple[str, int, str]] = set()
    results: List[Diagnostic] = []

    def emit(path: str, line: int, col: int, message: str, symbol: str) -> None:
        key = (path, line, symbol)
        if key in seen:
            return
        seen.add(key)
        results.append(Diagnostic(path, line, col, "REP110", message, symbol=symbol))

    for qualname in sorted(model.functions):
        function = model.functions[qualname]
        path = model.modules_path(function.module)
        for sink in function.sinks:
            if sink.tainted:
                emit(
                    path,
                    sink.line,
                    sink.col,
                    f"entropy source (line {sink.taint_line}) flows directly "
                    f"into {sink.kind} '{sink.detail}'; derive the value from "
                    "stable inputs (versions, fingerprints, seeded RNGs)",
                    sink.detail,
                )
                continue
            carried = _entropy_of_refs(
                model, function, sink.dep_calls, return_depth, max_hops
            )
            if carried is not None:
                hops, source = carried
                emit(
                    path,
                    sink.line,
                    sink.col,
                    f"value returned by {source} carries entropy "
                    f"({hops} hop(s)) into {sink.kind} '{sink.detail}'",
                    sink.detail,
                )
        for call in function.calls:
            for callee in resolve(model, function, call.ref):
                callee_sinks = sink_depth.get(callee, {})
                for arg in call.arg_deps:
                    reached = callee_sinks.get(arg.position)
                    if reached is None:
                        continue
                    sink_hops, sink_label = reached
                    if arg.tainted and sink_hops + 1 <= max_hops:
                        emit(
                            path,
                            call.line,
                            call.col,
                            f"entropy source (line {arg.taint_line}) is passed "
                            f"into {call.name}() and reaches {sink_label} "
                            f"({sink_hops + 1} hop(s))",
                            call.name,
                        )
                        continue
                    carried = _entropy_of_refs(
                        model, function, arg.dep_calls, return_depth, max_hops
                    )
                    if (
                        carried is not None
                        and carried[0] + sink_hops + 1 <= max_hops
                    ):
                        emit(
                            path,
                            call.line,
                            call.col,
                            f"value from {carried[1]} carries entropy into "
                            f"{call.name}() and reaches {sink_label} "
                            f"({carried[0] + sink_hops + 1} hop(s))",
                            call.name,
                        )
    return results
