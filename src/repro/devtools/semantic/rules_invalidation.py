"""REP310 — invalidation wiring: declared hooks must be *driven*.

REP302 (syntactic) forces every version-snapshotting class to declare a
``__workspace_hook__``; the runtime test cross-checks the declaration
against :data:`repro.serving.invalidation.WORKSPACE_HOOKS`.  Neither
catches the third failure mode: a hook that is declared *and*
registered but whose class is never actually reached from the
workspace's refresh/invalidate paths — the cache exists, the paperwork
is in order, and nobody ever refreshes it.  That is precisely the
silent-staleness bug the hook system was built to prevent, so this rule
closes the loop over the call graph:

* the hook string must be a key of a ``WORKSPACE_HOOKS`` literal
  somewhere in the linted tree, and
* the declaring class must be reachable (method call or construction,
  transitively) from the configured invalidation roots
  (``GraphWorkspace.refresh`` / ``GraphWorkspace.invalidate`` by
  default).

The rule stands down when the linted tree contains no registry or none
of the roots — linting a fixture package or a partial tree must not
produce phantom wiring findings.
"""

from __future__ import annotations

from typing import Iterable

from repro.devtools.config import LintConfig
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import semantic_rule
from repro.devtools.semantic.callgraph import find_roots, reachable
from repro.devtools.semantic.model import ProjectModel


@semantic_rule("REP310", "REP300", "workspace hook declared but not driven")
def check_hook_wiring(
    model: ProjectModel, config: LintConfig
) -> Iterable[Diagnostic]:
    if not model.has_registry:
        return
    roots = find_roots(model, config.invalidation_roots)
    if not roots:
        return
    _functions, reached_classes = reachable(model, roots)
    root_names = ", ".join(config.invalidation_roots)
    for path in sorted(model.modules):
        summary = model.modules[path]
        for class_name, hook, line, col in summary.hooks:
            if hook not in model.registry_keys:
                yield Diagnostic(
                    path,
                    line,
                    col,
                    "REP310",
                    f"{class_name} declares __workspace_hook__ = '{hook}', "
                    "which is not a key of WORKSPACE_HOOKS; register the "
                    "hook (serving/invalidation.py) or fix the name",
                    symbol=class_name,
                )
            elif class_name not in reached_classes:
                yield Diagnostic(
                    path,
                    line,
                    col,
                    "REP310",
                    f"{class_name} (hook '{hook}') is not reachable from "
                    f"{root_names}; a registered hook nobody drives is a "
                    "silent staleness bug — wire the class into a refresh "
                    "path or retire the hook",
                    symbol=class_name,
                )
