"""Per-module extraction: one source file → one :class:`ModuleSummary`.

Extraction is a pure function of ``(source, path, knobs)`` — it never
looks at another file — which is what makes the content-hash cache
sound.  The walk is deliberately heuristic in the same spirit as the
syntactic families: it tracks the direct dataflow shapes that occur in
this codebase (straight-line assignments, ``with`` lock stacks,
self-attribute memos) and leaves opaque flows to the conservative side
of whichever rule consumes them.

What is recorded per function:

* every call expression, with its unresolved :data:`CallRef`, the lock
  labels lexically held at the call, and the local dependencies of its
  positional arguments (entropy taint, feeding calls, feeding params);
* every lock acquisition (``with <lockish>:``) and the locks already
  held — the edges of the lock-order graph;
* every ``await`` and the locks held around it;
* entropy sources (``time.*``, module-level ``random.*``, unseeded
  ``random.Random()``, builtin ``hash()``) and whether they flow into
  the return value, a memo key, a fingerprint-named binding or a result
  store row;
* which parameters flow into the return value and into sinks — the
  hand-off points interprocedural taint propagation stitches together.

Lock labels are *names*, not objects: ``self._lock`` and a local bound
from ``self._build_locks[key]`` become ``"_lock"`` and
``"_build_locks"``.  Name identity is too coarse to prove a
self-deadlock (N per-key build locks share one label), so the rules
never report a single-label cycle — only cross-label inversions.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.devtools.semantic.model import (
    ArgDep,
    AwaitEvent,
    CallRef,
    CallSite,
    ExtractionKnobs,
    FunctionSummary,
    LockEvent,
    ModuleSummary,
    Sink,
)

#: ``time`` functions whose value is entropy (wall clock or per-process
#: monotonic origin — neither may reach a key, fingerprint or row)
_TIME_FUNCS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    }
)

#: module-level ``random`` draws (the REP101 list, minus ``Random``)
_RANDOM_FUNCS = frozenset(
    {
        "random",
        "randrange",
        "randint",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "getrandbits",
        "randbytes",
    }
)


def module_name_for(path: str) -> str:
    """Dotted module name of a repo-relative posix path.

    ``src/repro/serving/workspace.py`` → ``repro.serving.workspace``;
    trees outside ``src`` keep their directory prefix
    (``benchmarks/bench_engine.py`` → ``benchmarks.bench_engine``).
    """
    parts = path.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part)


@dataclass
class _Deps:
    """Local dependencies of one expression/binding."""

    tainted: bool = False
    taint_line: int = 0
    calls: Set[CallRef] = field(default_factory=set)
    params: Set[int] = field(default_factory=set)

    def merge(self, other: "_Deps") -> None:
        if other.tainted and not self.tainted:
            self.tainted = True
            self.taint_line = other.taint_line
        self.calls |= other.calls
        self.params |= other.params

    @property
    def interesting(self) -> bool:
        return self.tainted or bool(self.calls) or bool(self.params)


class _ModuleExtractor(ast.NodeVisitor):
    """Collects imports, classes, hooks and registry keys of one module."""

    def __init__(self, module: str, path: str, knobs: ExtractionKnobs):
        self.module = module
        self.path = path
        self.knobs = knobs
        self.lock_pattern = re.compile(knobs.lock_name_pattern, re.IGNORECASE)
        self.memo_pattern = re.compile(knobs.memo_name_pattern)
        self.fingerprint_pattern = re.compile(
            knobs.fingerprint_name_pattern, re.IGNORECASE
        )
        self.store_pattern = re.compile(knobs.result_store_pattern, re.IGNORECASE)
        self.import_modules: Dict[str, str] = {}
        self.import_objects: Dict[str, Tuple[str, str]] = {}
        self.time_aliases: Set[str] = set()
        self.functions: List[FunctionSummary] = []
        self.classes: List[Tuple[str, Tuple[str, ...]]] = []
        self.hooks: List[Tuple[str, str, int, int]] = []
        self.registry_keys: List[str] = []

    # -- module level ---------------------------------------------------
    def extract(self, tree: ast.Module) -> ModuleSummary:
        for node in tree.body:
            self._top_level(node)
        return ModuleSummary(
            module=self.module,
            path=self.path,
            functions=tuple(self.functions),
            classes=tuple(self.classes),
            hooks=tuple(self.hooks),
            registry_keys=tuple(self.registry_keys),
            import_modules=tuple(sorted(self.import_modules.items())),
            import_objects=tuple(
                (alias, module, name)
                for alias, (module, name) in sorted(self.import_objects.items())
            ),
        )

    def _top_level(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                self.import_modules[alias.asname or alias.name.split(".")[0]] = (
                    alias.name
                )
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.level == 0:
                for alias in node.names:
                    self.import_objects[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )
                    if node.module == "time" and alias.name in _TIME_FUNCS:
                        self.time_aliases.add(alias.asname or alias.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.functions.append(self._function(node, class_name=""))
        elif isinstance(node, ast.ClassDef):
            self._class(node)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            self._registry_literal(node)
        elif isinstance(node, (ast.If, ast.Try)):
            # TYPE_CHECKING guards and import fallbacks: recurse one level
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    self._top_level(child)

    def _registry_literal(self, node: "ast.Assign | ast.AnnAssign") -> None:
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        value = node.value
        if value is None or not isinstance(value, ast.Dict):
            return
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "WORKSPACE_HOOKS":
                for key in value.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        self.registry_keys.append(key.value)

    def _class(self, node: ast.ClassDef) -> None:
        methods: List[str] = []
        for statement in node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.append(statement.name)
                self.functions.append(
                    self._function(statement, class_name=node.name)
                )
            elif isinstance(statement, (ast.Assign, ast.AnnAssign)):
                targets = (
                    statement.targets
                    if isinstance(statement, ast.Assign)
                    else [statement.target]
                )
                value = statement.value
                for target in targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id == "__workspace_hook__"
                        and isinstance(value, ast.Constant)
                        and isinstance(value.value, str)
                    ):
                        self.hooks.append(
                            (node.name, value.value, statement.lineno, statement.col_offset + 1)
                        )
        self.classes.append((node.name, tuple(methods)))

    # -- function level -------------------------------------------------
    def _function(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef", *, class_name: str
    ) -> FunctionSummary:
        walker = _FunctionWalker(self, node, class_name)
        return walker.run()


class _FunctionWalker:
    """One pass over a function body: locks, calls, awaits, dataflow."""

    def __init__(
        self,
        extractor: _ModuleExtractor,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        class_name: str,
    ):
        self.x = extractor
        self.node = node
        self.class_name = class_name
        self.params = tuple(
            arg.arg
            for arg in (
                list(node.args.posonlyargs)
                + list(node.args.args)
                + list(node.args.kwonlyargs)
            )
        )
        self.param_index = {name: index for index, name in enumerate(self.params)}
        self.env: Dict[str, _Deps] = {}
        self.lock_aliases: Dict[str, str] = {}
        self.lock_stack: List[str] = []
        self.calls: List[CallSite] = []
        self.acquisitions: List[LockEvent] = []
        self.awaits: List[AwaitEvent] = []
        self.sinks: List[Sink] = []
        self.return_deps = _Deps()
        self._awaited_calls: Set[int] = set()

    def run(self) -> FunctionSummary:
        for statement in self.node.body:
            self._statement(statement)
        qual = (
            f"{self.x.module}::{self.class_name}.{self.node.name}"
            if self.class_name
            else f"{self.x.module}::{self.node.name}"
        )
        return FunctionSummary(
            module=self.x.module,
            qualname=qual,
            name=self.node.name,
            class_name=self.class_name,
            line=self.node.lineno,
            col=self.node.col_offset + 1,
            is_async=isinstance(self.node, ast.AsyncFunctionDef),
            params=self.params,
            calls=tuple(self.calls),
            acquisitions=tuple(self.acquisitions),
            awaits=tuple(self.awaits),
            entropy_return=self.return_deps.tainted,
            entropy_line=self.return_deps.taint_line,
            return_dep_calls=tuple(sorted(self.return_deps.calls)),
            return_dep_params=tuple(sorted(self.return_deps.params)),
            sinks=tuple(self.sinks),
        )

    # -- statements -----------------------------------------------------
    def _statement(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested defs are out of scope (documented heuristic)
        if isinstance(node, ast.With):
            self._with(node)
            return
        if isinstance(node, ast.AsyncWith):
            # asyncio primitives, not threading locks: analyse the body
            # without touching the lock stack (the item expressions may
            # still contain calls worth recording)
            for item in node.items:
                self._expr(item.context_expr)
            for statement in node.body:
                self._statement(statement)
            return
        if isinstance(node, ast.Assign):
            deps = self._expr(node.value)
            self._track_lock_alias(node)
            for target in node.targets:
                self._assign_target(target, node.value, deps)
            return
        if isinstance(node, ast.AnnAssign):
            if node.value is not None:
                deps = self._expr(node.value)
                self._assign_target(node.target, node.value, deps)
            return
        if isinstance(node, ast.AugAssign):
            deps = self._expr(node.value)
            if isinstance(node.target, ast.Name):
                existing = self.env.setdefault(node.target.id, _Deps())
                existing.merge(deps)
            return
        if isinstance(node, ast.Return):
            if node.value is not None:
                self.return_deps.merge(self._expr(node.value))
            return
        if isinstance(node, ast.Expr):
            self._expr(node.value)
            return
        # compound statements: evaluate tests/iterables, then bodies in
        # source order (flow-insensitive on branches — good enough for
        # the shapes these rules target)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self._statement(child)
            elif isinstance(child, ast.expr):
                self._expr(child)
            elif isinstance(child, ast.ExceptHandler):
                for statement in child.body:
                    self._statement(statement)
            elif isinstance(child, ast.withitem):  # pragma: no cover
                self._expr(child.context_expr)

    def _with(self, node: ast.With) -> None:
        acquired: List[str] = []
        for item in node.items:
            self._expr(item.context_expr)
            label = self._lock_label(item.context_expr)
            if label:
                self.acquisitions.append(
                    LockEvent(
                        name=label,
                        held=tuple(self.lock_stack),
                        line=item.context_expr.lineno,
                        col=item.context_expr.col_offset + 1,
                    )
                )
                self.lock_stack.append(label)
                acquired.append(label)
        for statement in node.body:
            self._statement(statement)
        for _ in acquired:
            self.lock_stack.pop()

    def _assign_target(
        self, target: ast.expr, value: ast.expr, deps: _Deps
    ) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = _Deps(
                deps.tainted, deps.taint_line, set(deps.calls), set(deps.params)
            )
            if deps.interesting and self.x.fingerprint_pattern.search(target.id):
                self._sink("fingerprint", target.id, target, deps)
        elif isinstance(target, ast.Attribute):
            if deps.interesting and self.x.fingerprint_pattern.search(target.attr):
                self._sink("fingerprint", target.attr, target, deps)
        elif isinstance(target, ast.Subscript):
            memo = self._memo_name(target.value)
            if memo:
                key_deps = self._expr(target.slice)
                if key_deps.interesting:
                    self._sink("memo-key", memo, target, key_deps)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign_target(element, value, deps)

    def _track_lock_alias(self, node: ast.Assign) -> None:
        """``build_lock = self._build_locks[key] = threading.Lock()`` and
        ``build_lock = self._build_locks.get(key)`` bind a lock label."""
        label = self._lockish_source(node.value)
        for target in node.targets:
            source = label or self._lockish_source(target)
            if source:
                label = source
        if label:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.lock_aliases[target.id] = label

    #: constructor names of lock objects: matching /lock/i but naming the
    #: *creation* of a lock, not a shared binding worth a graph label
    _LOCK_CONSTRUCTORS = frozenset({"Lock", "RLock", "Semaphore", "BoundedSemaphore"})

    def _is_label(self, name: str) -> bool:
        return bool(
            self.x.lock_pattern.search(name)
            and name not in self._LOCK_CONSTRUCTORS
        )

    def _lockish_source(self, node: ast.expr) -> str:
        """A lock label buried in ``node`` (attribute/subscript/call chain)."""
        for child in ast.walk(node):
            if isinstance(child, ast.Attribute) and self._is_label(child.attr):
                return child.attr
        return ""

    def _lock_label(self, node: ast.expr) -> str:
        """The lock label of a ``with`` context expression, or ''."""
        if isinstance(node, ast.Attribute):
            return node.attr if self._is_label(node.attr) else ""
        if isinstance(node, ast.Name):
            alias = self.lock_aliases.get(node.id)
            if alias:
                return alias
            return node.id if self._is_label(node.id) else ""
        if isinstance(node, ast.Subscript):
            return self._lock_label(node.value)
        if isinstance(node, ast.Call):
            # ``with self._lock_for(key):`` — a lock factory
            return self._lock_label(node.func)
        return ""

    # -- expressions ----------------------------------------------------
    def _expr(self, node: Optional[ast.expr]) -> _Deps:
        deps = _Deps()
        if node is None:
            return deps
        if isinstance(node, ast.Await):
            self.awaits.append(
                AwaitEvent(
                    held=tuple(self.lock_stack),
                    line=node.lineno,
                    col=node.col_offset + 1,
                )
            )
            if isinstance(node.value, ast.Call):
                self._awaited_calls.add(id(node.value))
            deps.merge(self._expr(node.value))
            return deps
        if isinstance(node, ast.Name):
            if node.id in self.env:
                deps.merge(self.env[node.id])
            elif node.id in self.param_index:
                deps.params.add(self.param_index[node.id])
            return deps
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Subscript):
            memo = self._memo_name(node.value)
            key_deps = self._expr(node.slice)
            if memo and key_deps.interesting:
                self._sink("memo-key", memo, node, key_deps)
            deps.merge(key_deps)
            deps.merge(self._expr(node.value) if not memo else _Deps())
            return deps
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for generator in node.generators:
                deps.merge(self._expr(generator.iter))
                for condition in generator.ifs:
                    deps.merge(self._expr(condition))
            if isinstance(node, ast.DictComp):
                deps.merge(self._expr(node.key))
                deps.merge(self._expr(node.value))
            else:
                deps.merge(self._expr(node.elt))
            return deps
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                deps.merge(self._expr(child))
            elif isinstance(child, ast.keyword):
                deps.merge(self._expr(child.value))
        return deps

    def _call(self, node: ast.Call) -> _Deps:
        deps = _Deps()
        entropy_line = self._entropy_call(node)
        arg_deps_list: List[ArgDep] = []
        for position, argument in enumerate(node.args):
            arg = self._expr(argument)
            deps.merge(arg)
            if arg.interesting:
                arg_deps_list.append(
                    ArgDep(
                        position=position,
                        tainted=arg.tainted,
                        taint_line=arg.taint_line,
                        dep_calls=tuple(sorted(arg.calls)),
                        dep_params=tuple(sorted(arg.params)),
                    )
                )
        for keyword in node.keywords:
            deps.merge(self._expr(keyword.value))
        ref = self._call_ref(node)
        if ref is not None:
            kind, name, receiver = ref
            self.calls.append(
                CallSite(
                    kind=kind,
                    name=name,
                    receiver=receiver,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    locks_held=tuple(self.lock_stack),
                    arg_deps=tuple(arg_deps_list),
                    awaited=id(node) in self._awaited_calls,
                )
            )
            deps.calls.add(ref)
            # result-row sink: <storeish>.append(row)
            if (
                kind == "attr"
                and name == "append"
                and receiver
                and self.x.store_pattern.search(receiver)
            ):
                for arg in arg_deps_list:
                    self._sink(
                        "result-row",
                        receiver,
                        node,
                        _Deps(
                            arg.tainted,
                            arg.taint_line,
                            set(arg.dep_calls),
                            set(arg.dep_params),
                        ),
                    )
            # memo-key sink: self._memo.get(key) / .setdefault(key, v) / .pop(key)
            if kind == "attr" and name in {"get", "setdefault", "pop"}:
                func = node.func
                if isinstance(func, ast.Attribute):
                    memo = self._memo_name(func.value)
                    if memo and arg_deps_list:
                        first = arg_deps_list[0]
                        if first.position == 0:
                            self._sink(
                                "memo-key",
                                memo,
                                node,
                                _Deps(
                                    first.tainted,
                                    first.taint_line,
                                    set(first.dep_calls),
                                    set(first.dep_params),
                                ),
                            )
        if entropy_line:
            deps.tainted = True
            deps.taint_line = entropy_line
        return deps

    def _call_ref(self, node: ast.Call) -> Optional[CallRef]:
        func = node.func
        if isinstance(func, ast.Name):
            alias = self.x.import_objects.get(func.id)
            if alias is not None:
                # ``from m import f [as g]`` → resolve under m
                return ("module", alias[1], alias[0])
            return ("name", func.id, "")
        if isinstance(func, ast.Attribute):
            owner = func.value
            if isinstance(owner, ast.Name):
                if owner.id == "self":
                    return ("self", func.attr, "")
                if owner.id in self.x.import_modules:
                    return ("module", func.attr, self.x.import_modules[owner.id])
                return ("attr", func.attr, owner.id)
            if isinstance(owner, ast.Attribute):
                # self.engine.refresh(...) → attr call, receiver "engine"
                return ("attr", func.attr, owner.attr)
            return ("attr", func.attr, "")
        return None

    def _entropy_call(self, node: ast.Call) -> int:
        """Line number when ``node`` is a direct entropy source, else 0."""
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            owner, attr = func.value.id, func.attr
            owner_module = self.x.import_modules.get(owner, "")
            if owner_module == "time" and attr in _TIME_FUNCS:
                return node.lineno
            if owner_module == "random":
                if attr in _RANDOM_FUNCS:
                    return node.lineno
                if attr == "Random" and not node.args and not node.keywords:
                    return node.lineno
        elif isinstance(func, ast.Name):
            if func.id in self.x.time_aliases:
                return node.lineno
            if func.id == "hash":
                return node.lineno
            alias = self.x.import_objects.get(func.id)
            if (
                alias == ("random", "Random")
                and not node.args
                and not node.keywords
            ):
                return node.lineno
        return 0

    def _memo_name(self, node: ast.expr) -> str:
        """The memo-ish name behind a subscripted/queried container."""
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self.x.memo_pattern.search(node.attr)
        ):
            return node.attr
        if isinstance(node, ast.Name) and self.x.memo_pattern.search(node.id):
            return node.id
        return ""

    def _sink(self, kind: str, detail: str, node: ast.AST, deps: _Deps) -> None:
        self.sinks.append(
            Sink(
                kind=kind,
                detail=detail,
                line=getattr(node, "lineno", self.node.lineno),
                col=getattr(node, "col_offset", 0) + 1,
                tainted=deps.tainted,
                taint_line=deps.taint_line,
                dep_calls=tuple(sorted(deps.calls)),
                dep_params=tuple(sorted(deps.params)),
            )
        )


def extract_module(
    source: str,
    path: str,
    knobs: Optional[ExtractionKnobs] = None,
    tree: Optional[ast.Module] = None,
) -> ModuleSummary:
    """Summarise one module for the semantic pass.

    ``tree`` lets the lint runner reuse the parse it already did for the
    syntactic families; when omitted the source is parsed here.  A file
    that does not parse yields an empty summary — the runner reports
    ``REP003`` separately.
    """
    if knobs is None:
        knobs = ExtractionKnobs()
    module = module_name_for(path)
    if tree is None:
        try:
            tree = ast.parse(source)
        except SyntaxError:
            return ModuleSummary(module=module, path=path)
    return _ModuleExtractor(module, path, knobs).extract(tree)
