"""Whole-program resolution over per-module summaries.

This is the cheap half of the semantic pass: no parsing, just linking.
:func:`build_model` folds the (possibly cache-loaded) module summaries
into a :class:`ProjectModel`; :func:`resolve` turns one unresolved
:data:`CallRef` into candidate callees; :func:`reachable` computes the
function/class closure the REP310 wiring rule consumes.

Resolution policy — conservative, bounded:

* ``self.m()`` resolves within the caller's class first, then (to cover
  inheritance, which summaries don't model) to every class method named
  ``m`` anywhere in the linted tree;
* bare and module-qualified names resolve to module-level functions or
  to class constructors (``LanguageIndex(...)`` reaches
  ``LanguageIndex.__init__`` *and* marks the class constructed);
* ``x.m()`` on an opaque receiver resolves to **every** method named
  ``m`` — except when ``m`` is a common container/stdlib method
  (:data:`COMMON_METHODS`), where by-name dispatch would connect the
  whole program through ``.get``/``.append`` and drown the rules in
  noise.  Dropping those edges is the documented unsoundness of the
  layer: a project method deliberately named ``get`` is invisible to
  interprocedural rules unless reached some other way.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.devtools.semantic.model import (
    CallRef,
    FunctionSummary,
    ModuleSummary,
    ProjectModel,
)

#: method names resolved *nowhere* when called on an opaque receiver —
#: container/stdlib vocabulary whose by-name dispatch would link every
#: function to every other through shared dict/list/str idiom
COMMON_METHODS = frozenset(
    {
        # dict / set / list / deque
        "get", "items", "keys", "values", "setdefault", "pop", "popitem",
        "append", "extend", "insert", "remove", "clear", "copy", "update",
        "add", "discard", "union", "intersection", "difference", "sort",
        "reverse", "count", "index", "popleft", "appendleft",
        # str / bytes
        "join", "split", "rsplit", "strip", "lstrip", "rstrip", "format",
        "startswith", "endswith", "replace", "lower", "upper", "encode",
        "decode", "splitlines", "ljust", "rjust", "zfill", "title",
        # io / pathlib
        "read", "write", "close", "flush", "readline", "readlines",
        "open", "exists", "mkdir", "is_dir", "is_file", "read_text",
        "write_text", "resolve", "relative_to", "as_posix", "rglob",
        "glob", "unlink", "iterdir", "with_suffix", "with_name",
        # re / hashlib / json-ish
        "match", "search", "findall", "finditer", "sub", "group",
        "groups", "groupdict", "hexdigest", "digest", "dumps", "loads",
    }
)


def build_model(summaries: Dict[str, ModuleSummary]) -> ProjectModel:
    """Link per-module summaries into one :class:`ProjectModel`.

    Iteration order is sorted-by-path everywhere, so two runs over the
    same tree build byte-identical models (the report-determinism
    guarantee starts here).
    """
    model = ProjectModel()
    methods_by_name: Dict[str, List[str]] = {}
    registry_keys: Set[str] = set()
    for path in sorted(summaries):
        summary = summaries[path]
        model.modules[path] = summary
        model.module_paths.setdefault(summary.module, path)
        registry_keys.update(summary.registry_keys)
        if summary.registry_keys:
            model.has_registry = True
        for class_name, _methods in summary.classes:
            model.class_modules.setdefault(class_name, summary.module)
            model.class_methods.setdefault(class_name, {})
        for function in summary.functions:
            model.functions[function.qualname] = function
            if function.class_name:
                model.class_methods.setdefault(function.class_name, {}).setdefault(
                    function.name, function.qualname
                )
                methods_by_name.setdefault(function.name, []).append(
                    function.qualname
                )
            else:
                model.module_functions.setdefault(
                    (function.module, function.name), function.qualname
                )
    model.methods_by_name = {
        name: tuple(sorted(qualnames))
        for name, qualnames in methods_by_name.items()
    }
    model.registry_keys = frozenset(registry_keys)
    return model


def resolve(
    model: ProjectModel, caller: FunctionSummary, ref: CallRef
) -> Tuple[str, ...]:
    """Candidate callee qualnames of ``ref`` as called from ``caller``."""
    kind, name, receiver = ref
    if kind == "self" and caller.class_name:
        own = model.class_methods.get(caller.class_name, {}).get(name)
        if own:
            return (own,)
        if name in COMMON_METHODS or name.startswith("__"):
            return ()
        return model.methods_by_name.get(name, ())
    if kind == "name":
        local = model.module_functions.get((caller.module, name))
        if local:
            return (local,)
        constructor = model.class_methods.get(name, {}).get("__init__")
        if constructor:
            return (constructor,)
        return ()
    if kind == "module":
        target = model.module_functions.get((receiver, name))
        if target:
            return (target,)
        if model.class_modules.get(name) == receiver:
            constructor = model.class_methods.get(name, {}).get("__init__")
            if constructor:
                return (constructor,)
        return ()
    if kind == "attr":
        # dunders (``super().__init__`` above all) would link every
        # class's constructor to every other by name — drop them along
        # with the container vocabulary
        if name in COMMON_METHODS or name.startswith("__"):
            return ()
        return model.methods_by_name.get(name, ())
    return ()


def constructed_class(model: ProjectModel, ref: CallRef) -> str:
    """The class name ``ref`` constructs, or '' when it is not a
    constructor call (``Thing()`` bare or module-qualified)."""
    kind, name, receiver = ref
    if kind == "name" and name in model.class_modules:
        return name
    if kind == "module" and model.class_modules.get(name) == receiver:
        return name
    return ""


def find_roots(model: ProjectModel, specs: Iterable[str]) -> Tuple[str, ...]:
    """Qualnames matching root specs of the form ``Class.method`` or a
    bare module-level function name."""
    roots: List[str] = []
    for spec in specs:
        suffix = f"::{spec}"
        for qualname in sorted(model.functions):
            if qualname.endswith(suffix):
                roots.append(qualname)
    return tuple(roots)


def reachable(
    model: ProjectModel, roots: Iterable[str]
) -> Tuple[Set[str], Set[str]]:
    """``(functions, classes)`` transitively reachable from ``roots``.

    A class counts as reached when one of its methods is reached or when
    a reached function constructs it.
    """
    seen: Set[str] = set()
    classes: Set[str] = set()
    stack = [qualname for qualname in roots if qualname in model.functions]
    for qualname in stack:
        seen.add(qualname)
    while stack:
        function = model.functions[stack.pop()]
        if function.class_name:
            classes.add(function.class_name)
        for call in function.calls:
            built = constructed_class(model, call.ref)
            if built:
                classes.add(built)
            for callee in resolve(model, function, call.ref):
                if callee not in seen:
                    seen.add(callee)
                    stack.append(callee)
    return seen, classes


def all_call_edges(
    model: ProjectModel,
) -> Iterable[Tuple[FunctionSummary, "CallSiteLike", str]]:
    """Every resolved ``(caller, call site, callee qualname)`` triple, in
    deterministic (sorted caller, source order, sorted callee) order."""
    for qualname in sorted(model.functions):
        caller = model.functions[qualname]
        for call in caller.calls:
            for callee in resolve(model, caller, call.ref):
                yield caller, call, callee


# typing alias for documentation only (CallSite lives in model)
CallSiteLike = object
