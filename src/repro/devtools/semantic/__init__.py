"""Project-wide semantic analysis behind ``repro lint``.

Layering (see each module's docstring for the contract):

* :mod:`~repro.devtools.semantic.model` — frozen summary dataclasses,
  JSON round-trip, :data:`~repro.devtools.semantic.model.SCHEMA_VERSION`;
* :mod:`~repro.devtools.semantic.extract` — pure per-module extraction
  (the cacheable half);
* :mod:`~repro.devtools.semantic.cache` — content-hash summary cache;
* :mod:`~repro.devtools.semantic.callgraph` — linking and resolution
  (the cheap half, re-run every lint);
* ``rules_concurrency`` / ``rules_taint`` / ``rules_invalidation`` —
  the REP700 / REP110 / REP310 interprocedural rules.

:func:`semantic_pass` is the runner's entry point: summaries in,
allowlist-filtered diagnostics out.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.devtools.config import LintConfig, project_config
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import registered_semantic_rules
from repro.devtools.semantic.cache import SummaryCache
from repro.devtools.semantic.callgraph import build_model
from repro.devtools.semantic.extract import extract_module
from repro.devtools.semantic.model import (
    ExtractionKnobs,
    ModuleSummary,
    ProjectModel,
    SCHEMA_VERSION,
)

__all__ = [
    "ExtractionKnobs",
    "ModuleSummary",
    "ProjectModel",
    "SCHEMA_VERSION",
    "SummaryCache",
    "build_model",
    "extract_module",
    "semantic_pass",
]


def semantic_pass(
    summaries: Dict[str, ModuleSummary],
    config: Optional[LintConfig] = None,
) -> List[Diagnostic]:
    """Run every enabled semantic rule over the linked project model.

    Allowlist filtering happens here (same policy as the syntactic
    path); suppression pragmas are applied later by the runner, per
    file, so one accounting covers both passes.
    """
    if config is None:
        config = project_config()
    model = build_model(summaries)
    diagnostics: List[Diagnostic] = []
    for info in registered_semantic_rules():
        if not config.enabled(info.family):
            continue
        for diagnostic in info.check(model, config):
            if not config.is_allowed(diagnostic):
                diagnostics.append(diagnostic)
    return diagnostics
