"""Content-hash cache for per-module semantic summaries.

Extraction is a pure function of ``(source, path, knobs)``, so the
cache is content-addressed: the entry file name *is* the SHA-256 of the
schema version, the extraction knobs and the source text.  Any edit to
the file, bump of :data:`~repro.devtools.semantic.model.SCHEMA_VERSION`
or change of an extraction knob changes the key, so stale entries are
unreachable by construction — there is no invalidation logic to get
wrong, old entries are merely garbage (and :meth:`SummaryCache.prune`
sweeps them).

The cache directory (``.repro-lint-cache/`` by default, gitignored) is
safe to delete at any time; a cold run just re-extracts.  Corrupt or
truncated entries deserialise to a cache miss, never to a wrong answer.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Optional, Set

from repro.devtools.semantic.model import (
    ExtractionKnobs,
    ModuleSummary,
    summary_from_payload,
    summary_to_payload,
)


def summary_key(source: str, path: str, knobs: ExtractionKnobs) -> str:
    """The content hash addressing one module's summary."""
    digest = hashlib.sha256()
    for part in knobs.digest_parts():
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    digest.update(path.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(source.encode("utf-8"))
    return digest.hexdigest()


class SummaryCache:
    """Directory of ``<sha256>.json`` summary files."""

    def __init__(self, directory: "Path | str"):
        self.directory = Path(directory)
        self._touched: Set[str] = set()

    def load(
        self, source: str, path: str, knobs: ExtractionKnobs
    ) -> Optional[ModuleSummary]:
        """The cached summary for this exact content, or ``None``."""
        key = summary_key(source, path, knobs)
        entry = self.directory / f"{key}.json"
        try:
            payload = json.loads(entry.read_text())
            summary = summary_from_payload(payload["summary"])
        except (OSError, ValueError, KeyError, TypeError):
            return None
        self._touched.add(entry.name)
        return summary

    def store(
        self,
        source: str,
        path: str,
        knobs: ExtractionKnobs,
        summary: ModuleSummary,
    ) -> None:
        """Persist ``summary`` under its content hash (best effort: a
        read-only or full disk degrades to an always-cold cache)."""
        key = summary_key(source, path, knobs)
        entry = self.directory / f"{key}.json"
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            entry.write_text(
                json.dumps(
                    {"summary": summary_to_payload(summary)},
                    sort_keys=True,
                    separators=(",", ":"),
                )
            )
        except OSError:
            return
        self._touched.add(entry.name)

    def prune(self) -> int:
        """Delete entries not touched by this run; returns the count.

        Called after a full-tree lint so the directory tracks the
        current tree instead of accumulating one entry per historical
        edit.
        """
        removed = 0
        try:
            entries = list(self.directory.glob("*.json"))
        except OSError:
            return 0
        for entry in entries:
            if entry.name not in self._touched:
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    continue
        return removed
