"""REP700 — interprocedural concurrency invariants.

* **REP701** lock-order cycle: the project-wide lock-acquisition graph
  (label ``A`` → label ``B`` when some execution path acquires ``B``
  while holding ``A``, directly or through calls) contains a cycle over
  two or more labels.  Two threads traversing such a cycle from
  different ends deadlock.  Single-label self-edges are dropped: lock
  identity is tracked by *name*, and the repo's registry locks are
  reentrant ``RLock``s, so ``_lock`` → ``_lock`` is the documented
  reentrancy idiom rather than a self-deadlock the analysis could
  actually prove.
* **REP702** registry lock held across a build, transitively: REP401
  already flags a build call lexically inside ``with self._lock:``;
  this closes the interprocedural hole where the lock-holding function
  calls a helper and the helper does the building.
* **REP703** event-loop starvation: an ``await`` (or a synchronous
  ``asyncio.run``/``run_until_complete`` bridge) reachable while a
  ``threading`` lock is held.  The awaiting coroutine parks holding the
  lock; any thread then contending that lock blocks for an arbitrary
  number of scheduler turns.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.devtools.config import LintConfig
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import semantic_rule
from repro.devtools.semantic.callgraph import resolve
from repro.devtools.semantic.model import FunctionSummary, ProjectModel

#: provenance of one lock-graph edge: (path, line, col, human explanation)
_Edge = Tuple[str, int, int, str]


def _may_acquire(model: ProjectModel) -> Dict[str, Set[str]]:
    """Fixpoint: lock labels each function may acquire, transitively."""
    acquire: Dict[str, Set[str]] = {
        qualname: {event.name for event in function.acquisitions}
        for qualname, function in model.functions.items()
    }
    changed = True
    while changed:
        changed = False
        for qualname in sorted(model.functions):
            function = model.functions[qualname]
            mine = acquire[qualname]
            before = len(mine)
            for call in function.calls:
                for callee in resolve(model, function, call.ref):
                    mine |= acquire.get(callee, set())
            if len(mine) != before:
                changed = True
    return acquire


def _lock_edges(
    model: ProjectModel, acquire: Dict[str, Set[str]]
) -> Dict[Tuple[str, str], _Edge]:
    """The lock-order graph with first-witness provenance per edge."""
    edges: Dict[Tuple[str, str], _Edge] = {}

    def record(held: str, taken: str, witness: _Edge) -> None:
        if held == taken:
            return  # reentrant re-acquisition, not an ordering edge
        edges.setdefault((held, taken), witness)

    for qualname in sorted(model.functions):
        function = model.functions[qualname]
        path = model.modules_path(function.module)
        for event in function.acquisitions:
            for held in event.held:
                record(
                    held,
                    event.name,
                    (path, event.line, event.col,
                     f"{function.qualname} acquires {event.name} while holding {held}"),
                )
        for call in function.calls:
            if not call.locks_held:
                continue
            for callee in resolve(model, function, call.ref):
                for taken in sorted(acquire.get(callee, ())):
                    for held in call.locks_held:
                        record(
                            held,
                            taken,
                            (path, call.line, call.col,
                             f"{function.qualname} holds {held} while calling "
                             f"{callee}, which may acquire {taken}"),
                        )
    return edges


def _cycles(edges: Iterable[Tuple[str, str]]) -> List[Tuple[str, ...]]:
    """Strongly connected components with ≥2 labels (Tarjan, iterative
    over sorted adjacency, so output order is deterministic)."""
    graph: Dict[str, List[str]] = {}
    for source, target in edges:
        graph.setdefault(source, []).append(target)
        graph.setdefault(target, [])
    for source in graph:
        graph[source].sort()

    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    components: List[Tuple[str, ...]] = []

    def strongconnect(root: str) -> None:
        work = [(root, iter(graph[root]))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index:
                    index[successor] = lowlink[successor] = counter[0]
                    counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(graph[successor])))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    components.append(tuple(sorted(component)))

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)
    return components


@semantic_rule("REP701", "REP700", "lock-order cycle across functions")
def check_lock_order(
    model: ProjectModel, config: LintConfig
) -> Iterable[Diagnostic]:
    acquire = _may_acquire(model)
    edges = _lock_edges(model, acquire)
    for component in _cycles(edges.keys()):
        members = set(component)
        witnesses = sorted(
            (pair, provenance)
            for pair, provenance in edges.items()
            if pair[0] in members and pair[1] in members
        )
        if not witnesses:
            continue
        (first_pair, (path, line, col, _)) = witnesses[0]
        detail = "; ".join(
            f"{held}->{taken} ({w_path}:{w_line}: {why})"
            for (held, taken), (w_path, w_line, _c, why) in witnesses
        )
        yield Diagnostic(
            path,
            line,
            col,
            "REP701",
            f"lock-order cycle over {{{', '.join(component)}}}: {detail}",
            symbol="->".join(component),
        )


def _may_build(
    model: ProjectModel, build_calls: Tuple[str, ...]
) -> Dict[str, Set[str]]:
    """Fixpoint: build-call names each function may reach, transitively."""
    builds: Dict[str, Set[str]] = {
        qualname: {
            call.name for call in function.calls if call.name in build_calls
        }
        for qualname, function in model.functions.items()
    }
    changed = True
    while changed:
        changed = False
        for qualname in sorted(model.functions):
            function = model.functions[qualname]
            mine = builds[qualname]
            before = len(mine)
            for call in function.calls:
                for callee in resolve(model, function, call.ref):
                    mine |= builds.get(callee, set())
            if len(mine) != before:
                changed = True
    return builds


@semantic_rule("REP702", "REP700", "registry lock held across a build, transitively")
def check_lock_across_build(
    model: ProjectModel, config: LintConfig
) -> Iterable[Diagnostic]:
    builds = _may_build(model, config.build_calls)
    for qualname in sorted(model.functions):
        function = model.functions[qualname]
        path = model.modules_path(function.module)
        for call in function.calls:
            guards = [
                name for name in call.locks_held if name in config.guard_lock_names
            ]
            if not guards or call.name in config.build_calls:
                continue  # the direct case is REP401's (lexical) finding
            reached: Set[str] = set()
            for callee in resolve(model, function, call.ref):
                reached |= builds.get(callee, set())
            if reached:
                yield Diagnostic(
                    path,
                    call.line,
                    call.col,
                    "REP702",
                    f"{guards[0]} is held across a call to {call.name}(), "
                    f"which may run build(s) {', '.join(sorted(reached))}; "
                    "release the registry lock before building "
                    "(double-checked pattern)",
                    symbol=call.name,
                )


def _is_bridge_call(ref: Tuple[str, str, str]) -> bool:
    """A call that synchronously drives the event loop."""
    kind, name, receiver = ref
    if kind == "module" and receiver == "asyncio" and name == "run":
        return True
    return name in {"run_until_complete", "run_forever"}


def _executes_await(model: ProjectModel) -> Set[str]:
    """Functions whose *synchronous* invocation may drive an ``await``:
    they bridge into the event loop (``asyncio.run`` and friends) or
    call something that does.  Plain ``async def`` bodies are excluded —
    calling them only builds a coroutine; the execution happens at the
    caller's ``await``, which REP703 checks at that site."""
    bridges: Set[str] = set()
    for qualname, function in model.functions.items():
        for call in function.calls:
            if _is_bridge_call(call.ref):
                bridges.add(qualname)
    changed = True
    while changed:
        changed = False
        for qualname in sorted(model.functions):
            if qualname in bridges:
                continue
            function = model.functions[qualname]
            for call in function.calls:
                if any(
                    callee in bridges
                    for callee in resolve(model, function, call.ref)
                ):
                    bridges.add(qualname)
                    changed = True
                    break
    return bridges


@semantic_rule("REP703", "REP700", "await reachable while a threading lock is held")
def check_await_under_lock(
    model: ProjectModel, config: LintConfig
) -> Iterable[Diagnostic]:
    bridges = _executes_await(model)
    for qualname in sorted(model.functions):
        function = model.functions[qualname]
        path = model.modules_path(function.module)
        for event in function.awaits:
            if event.held:
                yield Diagnostic(
                    path,
                    event.line,
                    event.col,
                    "REP703",
                    f"await while holding threading lock(s) "
                    f"{', '.join(event.held)} parks the coroutine with the "
                    "lock held; restructure so the lock is released before "
                    "suspension (or use asyncio.Lock)",
                    symbol=event.held[0],
                )
        for call in function.calls:
            if not call.locks_held or call.awaited:
                continue  # awaited calls are covered by the await event
            if _is_bridge_call(call.ref) or any(
                callee in bridges for callee in resolve(model, function, call.ref)
            ):
                yield Diagnostic(
                    path,
                    call.line,
                    call.col,
                    "REP703",
                    f"call to {call.name}() drives the event loop while "
                    f"threading lock(s) {', '.join(call.locks_held)} are "
                    "held; every await inside runs with the lock held",
                    symbol=call.name,
                )
