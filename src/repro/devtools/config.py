"""Configuration for ``repro lint``: rule selection, allowlists, knobs.

Two layers:

* :func:`project_config` — the repository's own shipped configuration,
  with the (small, justified) allowlist entries for constructs the
  heuristic rules cannot verify statically.  ``repro lint`` uses it by
  default, so CI and a developer's shell agree on what clean means.
* an optional JSON overlay (``repro lint --config extra.json``) whose
  keys merge over the project defaults — the escape hatch for
  downstream forks and for the fixture tests, which build
  :class:`LintConfig` objects directly.

Allowlist entries are ``fnmatch`` patterns matched against
``<posix-relpath>::<symbol>``, where the symbol is rule-specific (the
offending call for REP1xx, the imported name for REP2xx, the memo
attribute for REP3xx, …).  Prefer inline suppression comments for
one-off sites — they carry their justification at the point of use;
reserve allowlist entries for whole-construct exemptions where a
per-line pragma would have to be repeated.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Dict, Iterable, Mapping, Tuple

from repro.devtools.diagnostics import Diagnostic, family_of

#: every implemented rule family, in report order (REP700 is the
#: interprocedural concurrency family of the semantic pass)
ALL_FAMILIES: Tuple[str, ...] = (
    "REP100",
    "REP200",
    "REP300",
    "REP400",
    "REP500",
    "REP600",
    "REP700",
)


@dataclass
class LintConfig:
    """Immutable-in-spirit bag of knobs consumed by the rule functions."""

    #: enabled rule families (ids from :data:`ALL_FAMILIES`)
    select: Tuple[str, ...] = ALL_FAMILIES
    #: family/rule id -> fnmatch patterns against ``path::symbol``
    allow: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: regex fragment naming memo-like attributes (REP300)
    memo_name_pattern: str = r"cache|memo|plans|answers|entries"
    #: identifier substrings that prove a version/fingerprint-aware key
    key_markers: Tuple[str, ...] = (
        "version",
        "fingerprint",
        "digest",
        "signature",
        "plan_id",
        "crc",
        "sha",
    )
    #: attribute names that are registry locks (REP400/REP702): must
    #: never be held across a build call, even transitively
    guard_lock_names: Tuple[str, ...] = ("_lock", "_DEFAULT_LOCK")
    #: callables whose invocation counts as "a build" under REP400
    build_calls: Tuple[str, ...] = (
        "LanguageIndex",
        "SessionClassifier",
        "restricted",
        "refreshed",
        "classify_all_scratch",
    )
    #: emit REP002 for suppressions that matched nothing
    report_unused_suppressions: bool = True
    # -- semantic-pass knobs -------------------------------------------
    #: regex fragment naming lock-like identifiers (lock-graph labels)
    lock_name_pattern: str = r"lock"
    #: regex fragment naming fingerprint-like bindings (REP110 sinks)
    fingerprint_name_pattern: str = r"fingerprint|digest|signature"
    #: regex fragment naming result-store receivers (REP110 sinks)
    result_store_pattern: str = r"store"
    #: call-graph hop budget for REP110 taint propagation
    taint_max_hops: int = 3
    #: ``Class.method`` roots REP310 reachability starts from
    invalidation_roots: Tuple[str, ...] = (
        "GraphWorkspace.refresh",
        "GraphWorkspace.invalidate",
    )
    #: diagnostics under these path prefixes are downgraded to warnings
    #: (the ``--include-tests`` warn-only mode)
    warn_path_prefixes: Tuple[str, ...] = ("tests/",)

    def enabled(self, family: str) -> bool:
        """Whether rule ``family`` runs at all."""
        return family in self.select

    def extraction_knobs(self):
        """The semantic-extraction knobs (part of the cache key)."""
        from repro.devtools.semantic.model import ExtractionKnobs

        return ExtractionKnobs(
            memo_name_pattern=self.memo_name_pattern,
            lock_name_pattern=self.lock_name_pattern,
            fingerprint_name_pattern=self.fingerprint_name_pattern,
            result_store_pattern=self.result_store_pattern,
        )

    def is_allowed(self, diagnostic: Diagnostic) -> bool:
        """Whether ``diagnostic`` is covered by an allowlist entry."""
        token = f"{diagnostic.path}::{diagnostic.symbol}"
        for key in (diagnostic.rule_id, family_of(diagnostic.rule_id)):
            for pattern in self.allow.get(key, ()):
                if fnmatch(token, pattern):
                    return True
        return False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def merged(self, overlay: Mapping[str, object]) -> "LintConfig":
        """A copy with ``overlay`` (parsed JSON) merged over this config.

        ``allow`` lists extend per key; scalar knobs replace.
        """
        allow = {key: tuple(values) for key, values in self.allow.items()}
        for key, values in dict(overlay.get("allow", {})).items():  # type: ignore[arg-type]
            allow[key] = allow.get(key, ()) + tuple(values)
        return LintConfig(
            select=tuple(overlay.get("select", self.select)),  # type: ignore[arg-type]
            allow=allow,
            memo_name_pattern=str(
                overlay.get("memo_name_pattern", self.memo_name_pattern)
            ),
            key_markers=tuple(overlay.get("key_markers", self.key_markers)),  # type: ignore[arg-type]
            guard_lock_names=tuple(
                overlay.get("guard_lock_names", self.guard_lock_names)  # type: ignore[arg-type]
            ),
            build_calls=tuple(overlay.get("build_calls", self.build_calls)),  # type: ignore[arg-type]
            report_unused_suppressions=bool(
                overlay.get(
                    "report_unused_suppressions", self.report_unused_suppressions
                )
            ),
            lock_name_pattern=str(
                overlay.get("lock_name_pattern", self.lock_name_pattern)
            ),
            fingerprint_name_pattern=str(
                overlay.get(
                    "fingerprint_name_pattern", self.fingerprint_name_pattern
                )
            ),
            result_store_pattern=str(
                overlay.get("result_store_pattern", self.result_store_pattern)
            ),
            taint_max_hops=int(
                overlay.get("taint_max_hops", self.taint_max_hops)  # type: ignore[arg-type]
            ),
            invalidation_roots=tuple(
                overlay.get("invalidation_roots", self.invalidation_roots)  # type: ignore[arg-type]
            ),
            warn_path_prefixes=tuple(
                overlay.get("warn_path_prefixes", self.warn_path_prefixes)  # type: ignore[arg-type]
            ),
        )

    @classmethod
    def from_file(cls, path: "Path | str", base: "LintConfig | None" = None) -> "LintConfig":
        """Project defaults overlaid with the JSON document at ``path``."""
        overlay = json.loads(Path(path).read_text())
        return (base if base is not None else project_config()).merged(overlay)


def project_config() -> LintConfig:
    """This repository's shipped lint configuration.

    Every allowlist entry is a whole-construct exemption with its
    soundness argument right here; one-off sites use inline suppression
    pragmas instead (see the README's Invariants section).
    """
    return LintConfig(
        allow={
            # The workspace memo and the engine's expression-plan LRU are
            # the two memos whose keys the checker cannot see through:
            #   * GraphWorkspace._memo keys are built by SessionManager
            #     and always embed workspace.graph_fingerprint(graph)
            #     (pinned by tests/serving/test_manager.py);
            #   * QueryEngine._expression_plans maps expression string ->
            #     compiled plan, and plans are pure functions of the
            #     expression — no graph state, hence nothing to version.
            "REP300": (
                "src/repro/serving/workspace.py::_memo",
                "src/repro/query/engine.py::_expression_plans",
            ),
        }
    )


def iter_allow_patterns(config: LintConfig) -> Iterable[Tuple[str, str]]:
    """Flatten the allowlist as ``(rule-or-family, pattern)`` pairs."""
    for key in sorted(config.allow):
        for pattern in config.allow[key]:
            yield key, pattern
