"""Rule families shipped with ``repro lint``.

Importing this package registers every family with
:mod:`repro.devtools.registry`; each module is one family and owns its
sub-rule ids.
"""

from repro.devtools.rules import (  # noqa: F401  -- registration imports
    rep100_determinism,
    rep200_workspace,
    rep300_cache_keys,
    rep400_locks,
    rep500_api,
    rep600_reliability,
)
