"""REP200 — workspace discipline.

PR 6 moved every cross-session registry into
:class:`~repro.serving.workspace.GraphWorkspace`; the module-level
registries survive only as deprecated shims for external callers.  New
internal code must resolve shared state through a workspace
(``default_workspace()`` or an explicitly held instance) so that
isolation, invalidation and accounting keep working — a fresh call site
of a shim silently re-couples the caller to process-global state.

Sub-rules:

* ``REP201`` — import of a deprecated shim (``shared_engine``,
  ``language_index_for``, ``neighborhood_index``,
  ``session_classifier``, or the free function
  ``repro.query.evaluation.evaluate``) outside the shim's own module;
* ``REP202`` — call of one of the shim registries through any name
  (covers ``module.shared_engine()`` call sites that dodge REP201).

The package-root ``__init__`` re-exports are allowlisted in the project
config: they are the deprecation surface itself.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.devtools.config import LintConfig
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import FileContext, rule

#: shim name -> path suffix of its defining module (exempt)
_SHIMS = {
    "shared_engine": "repro/query/engine.py",
    "language_index_for": "repro/learning/language_index.py",
    "neighborhood_index": "repro/graph/neighborhood.py",
    "session_classifier": "repro/learning/informativeness.py",
}

#: ``evaluate`` is only a shim as the free function of these modules —
#: the name itself is ubiquitous (``engine.evaluate``), so only the
#: import form is checked for it
_EVALUATE_MODULES = {"repro.query.evaluation", "repro.query", "repro"}

_REPLACEMENT = {
    "shared_engine": "workspace.engine (e.g. default_workspace().engine)",
    "language_index_for": "workspace.language_index(graph, bound)",
    "neighborhood_index": "workspace.neighborhoods(graph)",
    "session_classifier": "workspace.classifier(graph, examples, max_length=...)",
    "evaluate": "workspace.engine.evaluate(graph, query)",
}


def _is_defining_module(path: str, name: str) -> bool:
    suffix = _SHIMS.get(name)
    return suffix is not None and path.endswith(suffix)


@rule("REP200", "workspace discipline: no new deprecated-shim call sites")
def check_workspace_discipline(
    ctx: FileContext, config: LintConfig
) -> Iterator[Diagnostic]:
    """Flag imports and calls of the PR 6 deprecated registry shims."""
    diagnostics: List[Diagnostic] = []

    def emit(node: ast.AST, rule_id: str, name: str, what: str) -> None:
        diagnostics.append(
            Diagnostic(
                ctx.path,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0) + 1,
                rule_id,
                f"{what} of deprecated shim {name}(); use "
                f"{_REPLACEMENT[name]} instead",
                symbol=name,
            )
        )

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom):
            module = node.module or ""
            for alias in node.names:
                name = alias.name
                if name in _SHIMS and not _is_defining_module(ctx.path, name):
                    emit(node, "REP201", name, "import")
                elif (
                    name == "evaluate"
                    and module in _EVALUATE_MODULES
                    and not ctx.path.endswith("repro/query/evaluation.py")
                ):
                    emit(node, "REP201", name, "import")
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            else:
                continue
            if name in _SHIMS and not _is_defining_module(ctx.path, name):
                emit(node, "REP202", name, "call")
    return iter(diagnostics)
