"""REP200 — workspace discipline.

PR 6 moved every cross-session registry into
:class:`~repro.serving.workspace.GraphWorkspace`, and PR 8 retired the
deprecated module-level shims outright.  What remains to police is how
workspaces themselves are obtained: a workspace is a build-once cache,
so constructing one (or re-resolving the process default) inside a loop
discards every index the previous iteration built and silently turns
O(1)-amortised lookups back into per-iteration rebuilds.

Sub-rules:

* ``REP201`` — ``GraphWorkspace(...)`` or ``default_workspace(...)``
  called inside a ``for``/``while`` body or a comprehension; hoist the
  workspace out of the loop and thread it through.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.devtools.config import LintConfig
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import FileContext, rule

#: callables whose result is a build-once workspace
_WORKSPACE_RESOLVERS = {"GraphWorkspace", "default_workspace"}

_LOOPS = (ast.For, ast.AsyncFor, ast.While)
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _called_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _workspace_calls(root: ast.AST) -> Iterator[ast.Call]:
    """Workspace-resolver calls lexically inside ``root`` (root included)."""
    for node in ast.walk(root):
        if isinstance(node, ast.Call) and _called_name(node) in _WORKSPACE_RESOLVERS:
            yield node


@rule("REP200", "workspace discipline: hoist workspace resolution out of loops")
def check_workspace_discipline(
    ctx: FileContext, config: LintConfig
) -> Iterator[Diagnostic]:
    """Flag workspace construction/resolution repeated per loop iteration."""
    diagnostics: List[Diagnostic] = []

    def emit(node: ast.Call, name: str, where: str) -> None:
        diagnostics.append(
            Diagnostic(
                ctx.path,
                node.lineno,
                node.col_offset + 1,
                "REP201",
                f"{name}() called inside a {where}: a workspace is a "
                "build-once cache — resolve it once before the loop and "
                "reuse it",
                symbol=name,
            )
        )

    seen = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, _LOOPS):
            # the iterable / condition runs once (or per test, which is
            # already a repeated evaluation the author wrote explicitly);
            # only the body re-runs every iteration
            bodies = list(node.body) + list(node.orelse)
            where = "loop body"
        elif isinstance(node, _COMPREHENSIONS):
            # the first generator's iterable evaluates once; everything
            # else (element, ifs, nested iterables) re-runs per item
            if isinstance(node, ast.DictComp):
                bodies = [node.key, node.value]
            else:
                bodies = [node.elt]
            for index, generator in enumerate(node.generators):
                bodies.extend(generator.ifs)
                if index > 0:
                    bodies.append(generator.iter)
            where = "comprehension"
        else:
            continue
        for body_node in bodies:
            for call in _workspace_calls(body_node):
                key = (call.lineno, call.col_offset)
                if key not in seen:
                    seen.add(key)
                    emit(call, _called_name(call), where)
    return iter(diagnostics)
