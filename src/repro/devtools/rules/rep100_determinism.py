"""REP100 — determinism discipline.

Every seeded path in this repository must draw randomness from an
explicit ``random.Random(seed)`` instance (the PR 2 CRC32 lesson), never
from the module-level ``random.*`` API whose hidden global state makes
replay depend on call order across subsystems; nothing may key
persisted or seeded behaviour on the builtin ``hash()`` (PYTHONHASHSEED
salts string hashing per process); and nothing may iterate a ``set`` in
an order-sensitive position, because set order of salted keys differs
across processes.

Sub-rules:

* ``REP101`` — call of a module-level ``random`` function
  (``random.random()``, ``random.choice()``, or a name imported with
  ``from random import …``);
* ``REP102`` — ``random.Random()`` constructed **without** a seed
  argument (an unseeded generator seeded from OS entropy; route through
  :func:`repro.determinism.entropy_seed`, the one sanctioned hatch);
* ``REP103`` — builtin ``hash()`` call outside a ``__hash__`` method
  (in-process dict/set keying is what ``__hash__`` is for; everything
  else must use a stable digest such as ``zlib.crc32``);
* ``REP104`` — iteration over an expression the checker can prove is a
  ``set``/``frozenset`` in an order-sensitive position (``for``,
  comprehensions, ``list()``/``tuple()``/``join``); wrap in
  ``sorted(…)`` or restructure.

Heuristic by design: a set reaching a loop through an opaque variable is
not flagged — the rule catches the direct patterns that have actually
bitten this codebase, and the allowlist/suppressions document the rest.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from repro.devtools.config import LintConfig
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import FileContext, rule

#: module-level random functions whose call is REP101
_RANDOM_FUNCS = frozenset(
    {
        "random",
        "randrange",
        "randint",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "betavariate",
        "gammavariate",
        "paretovariate",
        "weibullvariate",
        "vonmisesvariate",
        "getrandbits",
        "randbytes",
        "seed",
    }
)

#: order-insensitive consumers: iterating a set through these is sound
_ORDER_FREE_CALLS = frozenset(
    {"sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset"}
)

_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, ctx: FileContext, config: LintConfig):
        self.ctx = ctx
        self.config = config
        self.diagnostics: List[Diagnostic] = []
        #: names bound to the random module (``import random [as r]``)
        self.random_modules: Set[str] = set()
        #: local alias -> function imported via ``from random import f``
        self.random_imports: Dict[str, str] = {}
        self._function_stack: List[str] = []
        #: per-scope map of names the checker knows to be sets
        self._set_scopes: List[Set[str]] = [set()]
        #: comprehensions consumed by order-free reducers (any(), sum(), …)
        self._order_free_nodes: Set[int] = set()

    # -- bookkeeping ---------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random":
                self.random_modules.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name != "Random":
                    self.random_imports[alias.asname or alias.name] = alias.name
        self.generic_visit(node)

    def _visit_function(self, node: ast.AST, name: str) -> None:
        self._function_stack.append(name)
        self._set_scopes.append(set())
        self.generic_visit(node)
        self._set_scopes.pop()
        self._function_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            if self._is_setish(node.value):
                self._set_scopes[-1].add(name)
            else:
                self._set_scopes[-1].discard(name)
        self.generic_visit(node)

    # -- the checks ----------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in _ORDER_FREE_CALLS:
            # a comprehension fed straight into an order-free reducer is
            # sound however the underlying set iterates
            for argument in node.args:
                if isinstance(
                    argument, (ast.GeneratorExp, ast.ListComp, ast.SetComp)
                ):
                    self._order_free_nodes.add(id(argument))
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            owner, attr = func.value.id, func.attr
            if owner in self.random_modules:
                if attr in _RANDOM_FUNCS:
                    self._emit(
                        node,
                        "REP101",
                        f"module-level random.{attr}() draws from hidden global "
                        "state; use an explicit random.Random(seed)",
                        symbol=f"random.{attr}",
                    )
                elif attr == "Random" and not node.args and not node.keywords:
                    self._emit(
                        node,
                        "REP102",
                        "unseeded random.Random() seeds from OS entropy; route "
                        "through repro.determinism.entropy_seed()",
                        symbol="random.Random",
                    )
        elif isinstance(func, ast.Name):
            if func.id in self.random_imports:
                self._emit(
                    node,
                    "REP101",
                    f"random.{self.random_imports[func.id]}() imported at module "
                    "level draws from hidden global state; use an explicit "
                    "random.Random(seed)",
                    symbol=f"random.{self.random_imports[func.id]}",
                )
            elif func.id == "hash" and "__hash__" not in self._function_stack:
                self._emit(
                    node,
                    "REP103",
                    "builtin hash() outside __hash__ is PYTHONHASHSEED-salted "
                    "for strings; use a stable digest (zlib.crc32, hashlib)",
                    symbol="hash",
                )
            elif func.id in {"list", "tuple"} and node.args:
                if self._is_setish(node.args[0]):
                    self._emit(
                        node,
                        "REP104",
                        f"{func.id}() over a set materialises nondeterministic "
                        "order; wrap the set in sorted(...)",
                        symbol=f"{func.id}(set)",
                    )
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        if id(node) not in self._order_free_nodes:
            for generator in node.generators:  # type: ignore[attr-defined]
                self._check_iteration(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def _check_iteration(self, iterable: ast.expr) -> None:
        if self._is_setish(iterable):
            self._emit(
                iterable,
                "REP104",
                "iteration over a set is order-nondeterministic across "
                "processes; wrap in sorted(...) or iterate a list",
                symbol="iter(set)",
            )

    # -- set-ness heuristic --------------------------------------------
    def _is_setish(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Set):
            return True
        if isinstance(node, ast.SetComp):
            return True
        if isinstance(node, ast.Name):
            return any(node.id in scope for scope in self._set_scopes)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
                return True
            if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
                return self._is_setish(func.value)
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
        ):
            return self._is_setish(node.left) or self._is_setish(node.right)
        return False

    def _emit(
        self, node: ast.AST, rule_id: str, message: str, *, symbol: str
    ) -> None:
        self.diagnostics.append(
            Diagnostic(
                self.ctx.path,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0) + 1,
                rule_id,
                message,
                symbol=symbol,
            )
        )


@rule("REP100", "determinism: explicit RNGs, stable hashes, ordered iteration")
def check_determinism(ctx: FileContext, config: LintConfig) -> Iterator[Diagnostic]:
    """Run the determinism family over one file."""
    visitor = _DeterminismVisitor(ctx, config)
    visitor.visit(ctx.tree)
    return iter(visitor.diagnostics)
