"""REP500 — public-API hygiene.

``__all__`` is this project's contract surface (pinned exactly by
``tests/test_public_api.py``).  Everything on it must be usable from the
docstring and the signature alone — a public function without
annotations forces every caller back into the source, and one without a
docstring is unreviewable at the call site.

Sub-rules (applied to defs in the same module as the ``__all__`` that
names them; re-exporting ``__init__`` modules have no local defs and are
naturally out of scope):

* ``REP501`` — public function or class without a docstring;
* ``REP502`` — public function with unannotated parameters or return
  (``self``/``cls``, ``*args``/``**kwargs`` included — if they are part
  of the public signature they deserve a type).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.devtools.config import LintConfig
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import FileContext, rule


def _exported_names(tree: ast.Module) -> Optional[Set[str]]:
    """The string constants of a top-level ``__all__``, or ``None``."""
    for node in tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                value = node.value
                if isinstance(value, (ast.List, ast.Tuple)):
                    names = set()
                    for element in value.elts:
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            names.add(element.value)
                    return names
    return None


def _missing_annotations(node: "ast.FunctionDef | ast.AsyncFunctionDef") -> List[str]:
    missing = []
    args = node.args
    positional = list(args.posonlyargs) + list(args.args)
    for index, arg in enumerate(positional):
        if index == 0 and arg.arg in {"self", "cls"}:
            continue
        if arg.annotation is None:
            missing.append(arg.arg)
    for arg in args.kwonlyargs:
        if arg.annotation is None:
            missing.append(arg.arg)
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append("*" + args.vararg.arg)
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append("**" + args.kwarg.arg)
    if node.returns is None:
        missing.append("return")
    return missing


@rule("REP500", "API hygiene: __all__ members document and annotate themselves")
def check_api_hygiene(ctx: FileContext, config: LintConfig) -> Iterator[Diagnostic]:
    """Flag undocumented/unannotated public defs named in ``__all__``."""
    exported = _exported_names(ctx.tree)
    if not exported:
        return iter(())
    diagnostics: List[Diagnostic] = []

    def emit(node: ast.AST, rule_id: str, message: str, symbol: str) -> None:
        diagnostics.append(
            Diagnostic(
                ctx.path, node.lineno, node.col_offset + 1, rule_id, message, symbol=symbol
            )
        )

    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name not in exported:
                continue
            if ast.get_docstring(node) is None:
                emit(
                    node,
                    "REP501",
                    f"public function {node.name}() (in __all__) has no "
                    "docstring",
                    node.name,
                )
            missing = _missing_annotations(node)
            if missing:
                emit(
                    node,
                    "REP502",
                    f"public function {node.name}() (in __all__) is missing "
                    f"type annotations: {', '.join(missing)}",
                    node.name,
                )
        elif isinstance(node, ast.ClassDef):
            if node.name not in exported:
                continue
            if ast.get_docstring(node) is None:
                emit(
                    node,
                    "REP501",
                    f"public class {node.name} (in __all__) has no docstring",
                    node.name,
                )
    return iter(diagnostics)
