"""REP600 — reliability discipline.

PR 8 added supervision (deadlines, bounded retry, circuit breakers) and
deterministic fault injection.  Those guarantees only hold if failure
handling stays honest: a handler that silently swallows everything hides
injected faults from the supervisor, a deadline computed from the wall
clock jumps with NTP adjustments, and a retry loop with no bound turns a
persistent fault into a hang — exactly the failure mode the chaos gate
checks for ("every session terminates").

Sub-rules:

* ``REP601`` — bare ``except:`` — catches ``SystemExit`` and
  ``KeyboardInterrupt`` too; name the exceptions (or ``Exception``) and
  let the supervisor see what happened;
* ``REP602`` — ``except Exception:``/``except BaseException:`` whose
  body is only ``pass``/``...`` — silently swallowing all failures
  starves retry/breaker accounting; record, re-raise, or narrow;
* ``REP603`` — ``time.time()`` used in deadline/timeout logic —
  wall-clock time is not monotonic; budgets and deadlines must use
  ``time.monotonic()`` (:class:`repro.reliability.policy.Deadline`);
* ``REP604`` — a ``while True`` retry loop whose ``except`` handler
  ``continue``s with no ``break``/``return``/``raise`` anywhere in the
  loop body — there is no exit once the fault is persistent; bound the
  loop with a :class:`~repro.reliability.policy.RetryPolicy` budget.

Heuristic by design, like the other families: REP603 only fires when a
``time.time()`` call shares a statement with a deadline-ish name, and
REP604 only proves unboundedness for the direct swallow-and-continue
shape.  Justified exceptions carry inline suppressions.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Set

from repro.devtools.config import LintConfig
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import FileContext, rule

#: names whose presence marks a statement as deadline/timeout logic
_DEADLINE_NAMES = re.compile(
    r"deadline|timeout|time_limit|budget|expir|remaining|elapsed", re.IGNORECASE
)

_SWALLOW_TYPES = {"Exception", "BaseException"}


def _is_pass_only(body: List[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        ):
            continue
        return False
    return True


def _caught_name(handler: ast.ExceptHandler) -> Optional[str]:
    """The caught exception's name when it is a single plain name."""
    kind = handler.type
    if isinstance(kind, ast.Name):
        return kind.id
    if isinstance(kind, ast.Attribute):
        return kind.attr
    return None


def _is_wall_clock_call(node: ast.Call, time_aliases: Set[str]) -> bool:
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "time":
        return isinstance(func.value, ast.Name) and func.value.id == "time"
    if isinstance(func, ast.Name):
        return func.id in time_aliases
    return False


def _expression_parts(stmt: ast.stmt) -> List[ast.expr]:
    """The expressions a simple statement evaluates (no child statements)."""
    if isinstance(stmt, ast.Assign):
        return list(stmt.targets) + [stmt.value]
    if isinstance(stmt, ast.AnnAssign):
        return [stmt.target] + ([stmt.value] if stmt.value else [])
    if isinstance(stmt, ast.AugAssign):
        return [stmt.target, stmt.value]
    if isinstance(stmt, ast.Return):
        return [stmt.value] if stmt.value else []
    if isinstance(stmt, ast.Expr):
        return [stmt.value]
    if isinstance(stmt, ast.Assert):
        return [stmt.test] + ([stmt.msg] if stmt.msg else [])
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    return []


def _mentions_deadline(expressions: List[ast.expr]) -> bool:
    for expression in expressions:
        for node in ast.walk(expression):
            if isinstance(node, ast.Name) and _DEADLINE_NAMES.search(node.id):
                return True
            if isinstance(node, ast.Attribute) and _DEADLINE_NAMES.search(node.attr):
                return True
    return False


def _handler_continues(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body reaches ``continue`` of the enclosing loop."""
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                # a continue nested in an inner loop targets that loop
                break
            if isinstance(node, ast.Continue):
                return True
    return False


def _loop_can_exit(loop: ast.While) -> bool:
    """Whether the loop has an exit reachable on the *failure* path.

    ``return job.run()`` inside ``try:`` only exits when the call
    succeeds — under a persistent fault the handler keeps continuing —
    so exits on the success path (inside a ``try`` body) don't count;
    exits in handlers, ``else``/``finally`` blocks, or plain loop code
    do.
    """
    success_path: Set[int] = set()
    for node in ast.walk(loop):
        if isinstance(node, ast.Try):
            for stmt in node.body:
                for child in ast.walk(stmt):
                    success_path.add(id(child))
    for stmt in loop.body:
        for node in ast.walk(stmt):
            if (
                isinstance(node, (ast.Break, ast.Return, ast.Raise))
                and id(node) not in success_path
            ):
                return True
    return False


@rule("REP600", "reliability: honest failure handling, monotonic deadlines, bounded retries")
def check_reliability(ctx: FileContext, config: LintConfig) -> Iterator[Diagnostic]:
    """Run the reliability family over one file."""
    diagnostics: List[Diagnostic] = []

    def emit(node: ast.AST, rule_id: str, message: str, symbol: str) -> None:
        diagnostics.append(
            Diagnostic(
                ctx.path,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0) + 1,
                rule_id,
                message,
                symbol=symbol,
            )
        )

    #: local aliases of the wall clock (``from time import time [as now]``)
    time_aliases: Set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name == "time":
                    time_aliases.add(alias.asname or alias.name)

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ExceptHandler):
            if node.type is None:
                emit(
                    node,
                    "REP601",
                    "bare except: also catches SystemExit/KeyboardInterrupt "
                    "and hides the failure from supervision; name the "
                    "exception types",
                    "except",
                )
            elif _caught_name(node) in _SWALLOW_TYPES and _is_pass_only(node.body):
                emit(
                    node,
                    "REP602",
                    f"except {_caught_name(node)}: pass swallows every failure "
                    "silently; record it, re-raise, or catch the specific "
                    "exceptions",
                    f"except-{_caught_name(node)}-pass",
                )
        elif isinstance(node, ast.stmt):
            parts = _expression_parts(node)
            if parts and _mentions_deadline(parts):
                for part in parts:
                    for call in ast.walk(part):
                        if isinstance(call, ast.Call) and _is_wall_clock_call(
                            call, time_aliases
                        ):
                            emit(
                                call,
                                "REP603",
                                "time.time() in deadline/timeout logic is not "
                                "monotonic (NTP steps move it); use "
                                "time.monotonic()",
                                "time.time",
                            )
            if (
                isinstance(node, ast.While)
                and isinstance(node.test, ast.Constant)
                and bool(node.test.value)
                and not _loop_can_exit(node)
            ):
                for child in ast.walk(node):
                    if isinstance(child, ast.ExceptHandler) and _handler_continues(
                        child
                    ):
                        emit(
                            node,
                            "REP604",
                            "while True retry loop whose handler continues but "
                            "never breaks/returns/raises: a persistent fault "
                            "hangs forever; bound it with a RetryPolicy budget",
                            "while-true-retry",
                        )
                        break
    return iter(diagnostics)
