"""REP400 — lock discipline.

The serving layer's locking scheme (PR 6) is deadlock-free only because
of an ordering invariant: the registry lock (``self._lock``) is taken
for dictionary bookkeeping **only** and never held across an index
build; cold builds serialise on per-key build locks taken while *not*
holding the registry lock.  A build call creeping inside a
``with self._lock:`` block reintroduces the N-session convoy (and the
deadlock, once a build re-enters a registry accessor).

Sub-rules:

* ``REP401`` — a known build call (configurable; default
  ``LanguageIndex``, ``SessionClassifier``, ``restricted``,
  ``classify_all_scratch``) lexically inside a ``with`` block holding a
  guard lock (attribute name in ``guard_lock_names``, default
  ``_lock``);
* ``REP402`` — ``.acquire()`` called on a lock-named attribute: lock
  acquisition must use ``with`` so no exception path leaks the lock.

Per-key build locks (any other name, e.g. ``build_lock``) are exempt by
construction — being held across the build is their purpose.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.devtools.config import LintConfig
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import FileContext, rule


def _lock_name(node: ast.expr, guard_names: tuple) -> str:
    """The guarded-lock name of a ``with`` context expression, or ''."""
    if isinstance(node, ast.Attribute) and node.attr in guard_names:
        return node.attr
    if isinstance(node, ast.Name) and node.id in guard_names:
        return node.id
    return ""


class _LockVisitor(ast.NodeVisitor):
    def __init__(self, ctx: FileContext, config: LintConfig):
        self.ctx = ctx
        self.config = config
        self.diagnostics: List[Diagnostic] = []
        self.guard_names = tuple(config.guard_lock_names)
        self.build_calls = frozenset(config.build_calls)
        self._held: List[str] = []

    def visit_With(self, node: ast.With) -> None:
        held = [
            _lock_name(item.context_expr, self.guard_names)
            for item in node.items
            if _lock_name(item.context_expr, self.guard_names)
        ]
        self._held.extend(held)
        self.generic_visit(node)
        if held:
            del self._held[-len(held) :]

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else ""
        )
        if name == "acquire" and isinstance(func, ast.Attribute):
            lock = _lock_name(func.value, self.guard_names)
            if lock:
                self.diagnostics.append(
                    Diagnostic(
                        self.ctx.path,
                        node.lineno,
                        node.col_offset + 1,
                        "REP402",
                        f"bare {lock}.acquire(); acquire locks with "
                        "'with' so every exit path releases",
                        symbol=lock,
                    )
                )
        elif name in self.build_calls and self._held:
            self.diagnostics.append(
                Diagnostic(
                    self.ctx.path,
                    node.lineno,
                    node.col_offset + 1,
                    "REP401",
                    f"build call {name}(...) while holding registry lock "
                    f"{self._held[-1]}; build outside the lock and re-check "
                    "(double-checked per-key build locks)",
                    symbol=name,
                )
            )
        self.generic_visit(node)


@rule("REP400", "lock discipline: no builds under registry locks")
def check_locks(ctx: FileContext, config: LintConfig) -> Iterator[Diagnostic]:
    """Run the lock-discipline family over one file."""
    visitor = _LockVisitor(ctx, config)
    visitor.visit(ctx.tree)
    return iter(visitor.diagnostics)
