"""REP300 — cache-key discipline.

Every memo in this codebase caches a value derived from a mutable
structure (a graph, a DFA), so every memo must witness the structure's
revision in its key — ``(graph.version, …)`` — or store a revision
marker next to the value and check it on read (the ``_GraphCache``
idiom).  A memo whose key mentions neither is exactly the bug class
PRs 1/3/5 spent commits hunting: stale answers served after a mutation.

Sub-rules:

* ``REP301`` — a ``self.<attr>`` initialised to a dict-like container
  whose name looks memo-ish (configurable pattern, default
  ``cache|memo|plans|answers|entries``) where **no** store/lookup site
  in the class mentions a version/fingerprint marker identifier
  (configurable, default ``version``, ``fingerprint``, ``digest``,
  ``signature``, ``plan_id``, ``crc``, ``sha``) in its key *or* stored
  value expression.
* ``REP302`` — a class that *snapshots* a version counter into an
  instance attribute (``self.<...version...> = <expr mentioning a
  version>``) is a version-keyed cache, and since the delta-journal PR
  every such structure must be reachable by
  :meth:`GraphWorkspace.refresh
  <repro.serving.workspace.GraphWorkspace.refresh>` — it declares which
  invalidation path owns it via a ``__workspace_hook__`` class attribute
  naming a hook registered in
  :data:`repro.serving.invalidation.WORKSPACE_HOOKS` — or it carries a
  justified suppression explaining why staleness cannot leak (pure value
  snapshots that fail loudly on access, for instance).

The rule is deliberately heuristic: it looks at the identifiers
appearing in key/value expressions, not at data flow.  Memos whose keys
are constructed by callers (the workspace cross-session memo) or whose
values are revision-free by construction (the expression-plan LRU) are
exempted in the project config allowlist, each with its soundness
argument next to the entry.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Set

from repro.devtools.config import LintConfig
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import FileContext, rule

_DICT_CONSTRUCTORS = {"dict", "OrderedDict", "defaultdict", "WeakKeyDictionary", "WeakValueDictionary"}


def _is_dictish(node: ast.expr) -> bool:
    if isinstance(node, ast.Dict):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
        return name in _DICT_CONSTRUCTORS
    return False


def _identifiers(node: ast.AST) -> Set[str]:
    """Every Name id and Attribute attr appearing under ``node``."""
    found: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            found.add(child.id)
        elif isinstance(child, ast.Attribute):
            found.add(child.attr)
        elif isinstance(child, ast.Call):
            func = child.func
            if isinstance(func, ast.Attribute):
                found.add(func.attr)
            elif isinstance(func, ast.Name):
                found.add(func.id)
    return found


def _self_attr(node: ast.expr) -> str:
    """``self.<attr>`` → attr name, else ''."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return ""


class _ClassMemoAudit(ast.NodeVisitor):
    """Collect memo attributes and their key/value identifier sets."""

    def __init__(self, memo_pattern: "re.Pattern[str]", markers: tuple):
        self.memo_pattern = memo_pattern
        self.markers = markers
        #: memo attr -> init node (first dict-ish assignment seen)
        self.found: Dict[str, ast.AST] = {}
        #: memo attr -> identifiers seen across every key/value expression
        self.evidence: Dict[str, Set[str]] = {}
        #: the class carries a version-ish attribute of its own (the
        #: ``_GraphCache`` idiom: revision stored next to the dict and
        #: checked on read) — counts as evidence for all its memos
        self.class_markers: Set[str] = set()
        #: locals of the function currently being visited -> RHS
        #: identifiers, so ``self._x[graph] = cache`` sees through the
        #: ``cache = _GraphCache(graph.version)`` line above it
        self._locals: List[Dict[str, Set[str]]] = []

    def _record(self, attr: str, *exprs: ast.AST) -> None:
        bucket = self.evidence.setdefault(attr, set())
        for expr in exprs:
            identifiers = _identifiers(expr)
            bucket |= identifiers
            if self._locals:
                for name in tuple(identifiers):
                    bucket |= self._locals[-1].get(name, set())

    def _visit_function(self, node: ast.AST) -> None:
        self._locals.append({})
        self.generic_visit(node)
        self._locals.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            attr = _self_attr(target)
            if attr:
                if self.memo_pattern.search(attr) and _is_dictish(node.value):
                    self.found.setdefault(attr, node)
                lowered = attr.lower()
                if any(marker in lowered for marker in self.markers):
                    self.class_markers.add(attr)
            if isinstance(target, ast.Name) and self._locals:
                self._locals[-1].setdefault(target.id, set()).update(
                    _identifiers(node.value)
                )
            # self._memo[key] = value
            if isinstance(target, ast.Subscript):
                attr = _self_attr(target.value)
                if attr:
                    self._record(attr, target.slice, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        attr = _self_attr(node.target)
        if (
            attr
            and node.value is not None
            and self.memo_pattern.search(attr)
            and _is_dictish(node.value)
        ):
            self.found.setdefault(attr, node)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        attr = _self_attr(node.value)
        if attr:
            self._record(attr, node.slice)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # self._memo.get(key[, default]) / .setdefault(key, value) / .pop(key)
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in {
            "get",
            "setdefault",
            "pop",
        }:
            attr = _self_attr(func.value)
            if attr and node.args:
                self._record(attr, *node.args)
        self.generic_visit(node)


def _mentions_version(node: ast.expr) -> bool:
    """Does ``node`` reference a version-ish identifier (not a constant)?"""
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute) and "version" in child.attr.lower():
            return True
        if isinstance(child, ast.Name) and "version" in child.id.lower():
            return True
    return False


def _declared_hook(class_node: ast.ClassDef) -> bool:
    """Does the class body assign a string to ``__workspace_hook__``?"""
    for statement in class_node.body:
        targets = []
        if isinstance(statement, ast.Assign):
            targets = statement.targets
            value = statement.value
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            targets = [statement.target]
            value = statement.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__workspace_hook__":
                if isinstance(value, ast.Constant) and isinstance(value.value, str):
                    return True
    return False


def _version_snapshots(class_node: ast.ClassDef) -> Iterator[ast.stmt]:
    """Statements of the form ``self.<...version...> = <version expr>``."""
    seen: Set[str] = set()
    for node in ast.walk(class_node):
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        for target in targets:
            attr = _self_attr(target)
            if (
                attr
                and "version" in attr.lower()
                and attr not in seen
                and _mentions_version(value)
            ):
                seen.add(attr)
                yield node


@rule("REP300", "cache-key discipline: memos must witness version/fingerprint")
def check_cache_keys(ctx: FileContext, config: LintConfig) -> Iterator[Diagnostic]:
    """Flag memo attributes with no version/fingerprint evidence."""
    memo_pattern = re.compile(config.memo_name_pattern)
    markers = tuple(marker.lower() for marker in config.key_markers)
    diagnostics: List[Diagnostic] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        # REP302: version snapshots must declare their invalidation hook
        if not _declared_hook(node):
            for snapshot in _version_snapshots(node):
                attr = ""
                if isinstance(snapshot, ast.Assign):
                    attr = next(
                        (a for a in map(_self_attr, snapshot.targets) if a), ""
                    )
                elif isinstance(snapshot, ast.AnnAssign):
                    attr = _self_attr(snapshot.target)
                diagnostics.append(
                    Diagnostic(
                        ctx.path,
                        getattr(snapshot, "lineno", 1),
                        getattr(snapshot, "col_offset", 0) + 1,
                        "REP302",
                        f"{node.name}.{attr} snapshots a graph/structure "
                        "version but the class declares no __workspace_hook__; "
                        "register the invalidation path that refreshes it "
                        "(repro.serving.invalidation.WORKSPACE_HOOKS) or "
                        "suppress with the reason staleness cannot leak",
                        symbol=attr,
                    )
                )
        audit = _ClassMemoAudit(memo_pattern, markers)
        audit.visit(node)
        for attr, init_node in sorted(audit.found.items()):
            if audit.class_markers:
                continue  # revision lives beside the dict (checked on read)
            identifiers = {name.lower() for name in audit.evidence.get(attr, set())}
            if any(
                marker in identifier
                for identifier in identifiers
                for marker in markers
            ):
                continue
            diagnostics.append(
                Diagnostic(
                    ctx.path,
                    getattr(init_node, "lineno", 1),
                    getattr(init_node, "col_offset", 0) + 1,
                    "REP301",
                    f"memo {node.name}.{attr} never mentions a version/"
                    "fingerprint marker in any key or stored value; key it on "
                    "(graph.version, ...) or a content fingerprint",
                    symbol=attr,
                )
            )
    return iter(diagnostics)
