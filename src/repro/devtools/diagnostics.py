"""Diagnostic records and suppression comments for ``repro lint``.

A diagnostic pins one invariant violation to ``path:line:col`` with a
stable rule id (``REP101``, ``REP203``, …).  Rule ids group into
families by their hundreds digit — ``REP1xx`` is the determinism family
— and both the exact id and the family id are accepted everywhere a
rule can be named (suppressions, allowlists, ``--select``).

Suppressions are source comments::

    value = risky_call()  # repro-lint: disable=REP101 -- seeding the OS entropy escape hatch

* the ``-- justification`` tail is **mandatory**: a suppression without
  one still suppresses its target (so the report stays focused) but is
  itself reported as :data:`SUPPRESSION_UNDOCUMENTED` (``REP001``);
* a comment-only line applies to the next source line, so long
  statements stay under the line-length limit;
* ``disable-file=`` scopes the suppression to the whole file (used for
  generated files or fixture corpora, never for ordinary code).

Suppressions that never match a diagnostic are reported as
:data:`SUPPRESSION_UNUSED` (``REP002``) so stale pragmas cannot
accumulate and silently widen the holes in the net.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

#: meta-rules emitted by the suppression machinery itself
SUPPRESSION_UNDOCUMENTED = "REP001"
SUPPRESSION_UNUSED = "REP002"
PARSE_ERROR = "REP003"

_PRAGMA = re.compile(r"#\s*repro-lint\s*:\s*(?P<body>.*)$")
_DISABLE = re.compile(
    r"^disable(?P<scope>-file)?\s*=\s*"
    r"(?P<codes>[A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*)"
    r"(?:\s*--\s*(?P<why>.*))?$"
)


def family_of(rule_id: str) -> str:
    """The family id of ``rule_id``: ``REP104`` → ``REP100``."""
    return rule_id[:-2] + "00"


@dataclass(frozen=True)
class Diagnostic:
    """One invariant violation (or suppression-hygiene finding)."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    #: rule-specific token the config allowlist matches against
    #: (a call expression, an attribute name, a function name, …)
    symbol: str = ""
    #: "error" gates the exit code; "warning" (the ``--include-tests``
    #: mode for ``tests/``) reports without failing the run
    severity: str = "error"

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def render(self) -> str:
        """The one-line human rendering: ``path:line:col: RULE message``."""
        tag = " [warn]" if self.severity == "warning" else ""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id}{tag} {self.message}"
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (the ``--format=json`` row)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "family": family_of(self.rule_id),
            "severity": self.severity,
            "message": self.message,
            "symbol": self.symbol,
        }


@dataclass
class Suppression:
    """One parsed ``# repro-lint: disable=…`` pragma."""

    line: int
    target_line: Optional[int]  # ``None``: file scope
    codes: Tuple[str, ...]
    justification: str
    used: bool = field(default=False, compare=False)

    def matches(self, diagnostic: Diagnostic) -> bool:
        if self.target_line is not None and self.target_line != diagnostic.line:
            return False
        return (
            diagnostic.rule_id in self.codes
            or family_of(diagnostic.rule_id) in self.codes
        )


def _comment_tokens(source: str) -> List[Tuple[int, int, str]]:
    """``(line, col, text)`` of every real comment token of ``source``.

    Tokenising (rather than scanning raw lines) keeps pragma text inside
    string literals and docstrings — lint messages, rule documentation,
    fixture snippets — from being parsed as live pragmas.
    """
    comments: List[Tuple[int, int, str]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.start[1], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # unparseable tails are REP003's problem, not ours
    return comments


def scan_suppressions(
    source: str, path: str
) -> Tuple[List[Suppression], List[Diagnostic]]:
    """Extract every suppression pragma of ``source``.

    Returns the parsed suppressions plus the hygiene diagnostics for
    malformed pragmas and pragmas missing their justification.
    """
    suppressions: List[Suppression] = []
    problems: List[Diagnostic] = []
    lines = source.splitlines()
    for lineno, comment_col, text in _comment_tokens(source):
        pragma = _PRAGMA.search(text)
        if pragma is None:
            continue
        col = comment_col + pragma.start() + 1
        parsed = _DISABLE.match(pragma.group("body").strip())
        if parsed is None:
            problems.append(
                Diagnostic(
                    path,
                    lineno,
                    col,
                    SUPPRESSION_UNDOCUMENTED,
                    "malformed repro-lint pragma; expected "
                    "'# repro-lint: disable=REPxxx -- justification'",
                )
            )
            continue
        codes = tuple(
            code.strip() for code in parsed.group("codes").split(",") if code.strip()
        )
        justification = (parsed.group("why") or "").strip()
        preceding = lines[lineno - 1][:comment_col] if lineno <= len(lines) else ""
        if parsed.group("scope"):
            target: Optional[int] = None
        elif preceding.strip():
            target = lineno  # trailing comment: applies to its own line
        else:
            target = lineno + 1  # comment-only line: applies to the next
        suppression = Suppression(lineno, target, codes, justification)
        suppressions.append(suppression)
        if not justification:
            problems.append(
                Diagnostic(
                    path,
                    lineno,
                    col,
                    SUPPRESSION_UNDOCUMENTED,
                    f"suppression of {', '.join(codes)} has no justification; "
                    "append ' -- <why this is sound>'",
                )
            )
    return suppressions, problems


def apply_suppressions(
    diagnostics: List[Diagnostic],
    suppressions: List[Suppression],
    path: str,
    *,
    report_unused: bool = True,
    enabled: Optional[Callable[[str], bool]] = None,
) -> List[Diagnostic]:
    """Drop suppressed diagnostics; report pragmas that suppress nothing.

    ``enabled`` maps a family id to whether its rules ran this pass; a
    pragma whose every code belongs to a disabled family is not "unused"
    — its target rule never had the chance to fire — so ``--select``
    runs don't flag the other families' justified waivers as stale.

    The hygiene diagnostics (``REP001``/``REP002``) are themselves
    suppressible only file-wide — a line-level self-suppression of the
    pragma machinery would be a hole with no witness.
    """
    kept: List[Diagnostic] = []
    for diagnostic in diagnostics:
        matched = False
        for suppression in suppressions:
            if suppression.matches(diagnostic):
                suppression.used = True
                matched = True
        if not matched:
            kept.append(diagnostic)
    if report_unused:
        for suppression in suppressions:
            if suppression.used:
                continue
            if enabled is not None and not any(
                enabled(family_of(code)) for code in suppression.codes
            ):
                continue
            kept.append(
                Diagnostic(
                    path,
                    suppression.line,
                    1,
                    SUPPRESSION_UNUSED,
                    f"suppression of {', '.join(suppression.codes)} matched "
                    "no diagnostic; delete the stale pragma",
                )
            )
    return kept
