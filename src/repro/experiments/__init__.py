"""Experiment harness: figure regeneration and evaluation experiments E1–E5."""

from repro.experiments.metrics import AGGREGATORS, ResultTable, fraction_true
from repro.experiments.figures import (
    FIGURE1_QUERY,
    Figure1Result,
    Figure2Result,
    Figure3Result,
    all_figures,
    figure1,
    figure2,
    figure3,
)
from repro.experiments.harness import (
    E1_STRATEGIES,
    run_e1_interactions_by_strategy,
    run_e2_pruning,
    run_e3_scalability,
    run_e4_path_validation,
    run_e5_learner_cost,
    run_everything,
    run_scenario_comparison,
)

__all__ = [
    "AGGREGATORS",
    "ResultTable",
    "fraction_true",
    "FIGURE1_QUERY",
    "Figure1Result",
    "Figure2Result",
    "Figure3Result",
    "all_figures",
    "figure1",
    "figure2",
    "figure3",
    "E1_STRATEGIES",
    "run_e1_interactions_by_strategy",
    "run_e2_pruning",
    "run_e3_scalability",
    "run_e4_path_validation",
    "run_e5_learner_cost",
    "run_everything",
    "run_scenario_comparison",
]
