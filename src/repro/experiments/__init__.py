"""Experiment harness: figure regeneration and evaluation experiments E1–E5.

Two execution paths share one set of per-unit row functions:

* :mod:`repro.experiments.harness` — the serial ``run_e*`` functions the
  benchmark scripts call directly;
* :mod:`repro.experiments.runner` — the deterministic, parallel,
  resumable :class:`~repro.experiments.runner.ExperimentRunner` behind
  ``repro bench`` and :func:`~repro.experiments.harness.run_everything`.

Runner results stream into a JSONL result store: a directory under
``benchmarks/results/<run>/`` holding ``manifest.json`` (the
content-hashed run plan) and ``rows.jsonl`` (one line per completed
unit).  Interrupted runs resume by skipping unit ids already present in
the store; see the :mod:`repro.experiments.runner` module docstring for
the full contract.
"""

from repro.experiments.metrics import AGGREGATORS, ResultTable, fraction_true
from repro.experiments.figures import (
    FIGURE1_QUERY,
    Figure1Result,
    Figure2Result,
    Figure3Result,
    all_figures,
    figure1,
    figure2,
    figure3,
)
from repro.experiments.harness import (
    E1_STRATEGIES,
    SUMMARY_SPECS,
    run_e1_interactions_by_strategy,
    run_e2_pruning,
    run_e3_scalability,
    run_e4_path_validation,
    run_e5_learner_cost,
    run_everything,
    run_scenario_comparison,
)
from repro.experiments.runner import (
    EXPERIMENTS,
    ExperimentRunner,
    ResultStore,
    RunResult,
    RunUnit,
    build_plan,
    strip_timing,
)

__all__ = [
    "AGGREGATORS",
    "ResultTable",
    "fraction_true",
    "FIGURE1_QUERY",
    "Figure1Result",
    "Figure2Result",
    "Figure3Result",
    "all_figures",
    "figure1",
    "figure2",
    "figure3",
    "E1_STRATEGIES",
    "SUMMARY_SPECS",
    "run_e1_interactions_by_strategy",
    "run_e2_pruning",
    "run_e3_scalability",
    "run_e4_path_validation",
    "run_e5_learner_cost",
    "run_everything",
    "run_scenario_comparison",
    "EXPERIMENTS",
    "ExperimentRunner",
    "ResultStore",
    "RunResult",
    "RunUnit",
    "build_plan",
    "strip_timing",
]
