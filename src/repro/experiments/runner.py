"""Deterministic, parallel, resumable experiment runner.

The serial harness in :mod:`repro.experiments.harness` runs every
experiment case inline in one process.  This module scales that up
without giving up reproducibility:

* :func:`build_plan` expands a workload suite (E1–E5 plus the Section 3
  scenario comparison) into a flat list of self-describing
  :class:`RunUnit` objects.  A unit carries nothing but plain,
  JSON-serialisable parameters (dataset *name*, goal *expression*,
  strategy, budgets, derived seed), so its identity is a content hash of
  those parameters — the same configuration always yields the same
  ``unit_id``, across processes, machines and ``PYTHONHASHSEED`` values.
* :class:`ExperimentRunner` executes the units, either inline
  (``workers=1``) or fanned out over a
  :class:`~concurrent.futures.ProcessPoolExecutor`.  Every unit derives
  its own deterministic seed from the base seed and its descriptor, so
  execution order and process placement cannot change any row: a
  4-worker run produces row-for-row identical results to a serial run.
* A :class:`ResultStore` (directory with ``manifest.json`` +
  ``rows.jsonl``) streams finished units to disk as they complete.  An
  interrupted run resumes by loading the store and skipping every unit
  id that already has a row record; a truncated trailing line (the
  write the interruption cut short) is ignored.  The manifest pins the
  plan id so a store can never silently mix rows from two different
  configurations.
* Finished rows merge back into the same
  :class:`~repro.experiments.metrics.ResultTable` detail/summary pairs
  the serial harness produces (shared ``SUMMARY_SPECS``), which is what
  ``run_everything`` and the benchmark scripts print.

Timing columns (``seconds``, ``mean_seconds``, ``max_seconds``) are the
only values that legitimately differ between two runs of the same plan;
:func:`strip_timing` removes them for row-for-row comparisons.

Fault tolerance (PR 8): a worker that dies mid-unit must not sink the
campaign.  Units that fail with a *retryable* error (injected faults,
oracle failures) are resubmitted up to the runner's
:class:`~repro.reliability.RetryPolicy` budget; a unit that exhausts its
budget raises :class:`~repro.exceptions.UnitExecutionError` — and because
every *completed* unit was already streamed to the store, rerunning the
same plan resumes with zero lost rows.  Simulated crashes for chaos
testing come from an optional :class:`~repro.reliability.FaultPlan`: the
attempt number is folded into the fault site
(``runner.unit:<id>#a<attempt>``), so whether attempt *k* of a unit
crashes is deterministic even though each attempt may land in a fresh
worker process.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.exceptions import ExperimentError, RunPlanMismatchError, UnitExecutionError
from repro.experiments import harness
from repro.reliability.faults import FaultInjector, FaultPlan
from repro.reliability.policy import RetryPolicy
from repro.experiments.metrics import ResultTable, Row
from repro.graph.datasets import dataset_catalog, list_datasets
from repro.graph.labeled_graph import LabeledGraph
from repro.workloads.generator import WorkloadCase, quick_suite, standard_suite

PathLike = Union[str, Path]

#: Every experiment the runner knows how to expand, in canonical order.
EXPERIMENTS: Sequence[str] = ("e1", "e2", "e3", "e4", "e5", "scenarios", "churn")

#: The default selection: everything but the streaming churn family,
#: which is opt-in (CLI ``--churn``) so existing plan ids — and the
#: resumable stores keyed on them — are unchanged by its introduction.
DEFAULT_EXPERIMENTS: Sequence[str] = EXPERIMENTS[:-1]

#: Columns that measure wall-clock time and therefore differ run-to-run.
TIMING_COLUMNS = frozenset(
    {"seconds", "mean_seconds", "max_seconds", "p50_seconds", "p95_seconds"}
)

#: Detail-table titles, shared with the serial harness tables.
TABLE_TITLES: Dict[str, str] = harness.TABLE_TITLES

#: E3 graph sizes per suite (quick mirrors the old ``run_everything``).
E3_NODE_COUNTS: Dict[str, Sequence[int]] = {
    "quick": (100, 200, 400),
    "standard": (100, 200, 400, 800, 1600),
}

#: E5 sample sizes (same for both suites, as in the serial harness).
E5_SAMPLE_SIZES: Sequence[int] = (5, 10, 20, 40)

#: Churn graph sizes per suite (dataset-independent, like E3).
CHURN_NODE_COUNTS: Dict[str, Sequence[int]] = {
    "quick": (60, 120),
    "standard": (60, 120, 240),
}


def canonical_json(payload: object) -> str:
    """Canonical (sorted-keys, compact) JSON used for content hashing."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


def unit_id_for(experiment: str, params: Mapping[str, object]) -> str:
    """Stable content-hash id of one unit configuration."""
    digest = hashlib.sha256(
        canonical_json({"experiment": experiment, "params": dict(params)}).encode("utf-8")
    )
    return digest.hexdigest()[:12]


def strip_timing(rows: Sequence[Row]) -> List[Row]:
    """Rows with the wall-clock columns removed, for determinism checks."""
    return [{key: value for key, value in row.items() if key not in TIMING_COLUMNS} for row in rows]


@dataclass(frozen=True)
class RunUnit:
    """One self-describing experiment unit.

    ``params`` must be plain JSON-serialisable values; the unit id is a
    content hash of ``(experiment, params)``, so two units with the same
    configuration are the same unit wherever and whenever they run.
    """

    experiment: str
    label: str
    params: Mapping[str, object]
    unit_id: str = field(init=False)

    def __post_init__(self):
        object.__setattr__(self, "unit_id", unit_id_for(self.experiment, self.params))

    def payload(self) -> dict:
        """The picklable work order sent to a worker process."""
        return {
            "unit_id": self.unit_id,
            "experiment": self.experiment,
            "label": self.label,
            "params": dict(self.params),
        }


# ----------------------------------------------------------------------
# Worker-side execution (module level so ProcessPoolExecutor can pickle it)
# ----------------------------------------------------------------------

#: Per-process dataset cache: workers rebuild each catalogue once.
_CATALOG_CACHE: Dict[int, Dict[str, LabeledGraph]] = {}


def _graph_for(dataset: str, suite_seed: int) -> LabeledGraph:
    catalog = _CATALOG_CACHE.get(suite_seed)
    if catalog is None:
        catalog = dataset_catalog(seed=suite_seed)
        _CATALOG_CACHE[suite_seed] = catalog
    return catalog[dataset]


def _execute_e1(params: Mapping[str, object]) -> List[Row]:
    graph = _graph_for(params["dataset"], params["suite_seed"])
    return harness.e1_unit_rows(
        graph,
        params["expression"],
        dataset=params["dataset"],
        family=params["family"],
        strategy=params["strategy"],
        max_interactions=params["max_interactions"],
        max_path_length=params["max_path_length"],
        seed=params["seed"],
    )


def _execute_e2(params: Mapping[str, object]) -> List[Row]:
    graph = _graph_for(params["dataset"], params["suite_seed"])
    return harness.e2_unit_rows(
        graph,
        params["expression"],
        dataset=params["dataset"],
        max_interactions=params["max_interactions"],
        max_path_length=params["max_path_length"],
    )


def _execute_e3(params: Mapping[str, object]) -> List[Row]:
    return [
        harness.e3_unit_row(
            params["nodes"],
            edge_factor=params["edge_factor"],
            alphabet_size=params["alphabet_size"],
            max_path_length=params["max_path_length"],
            interactions=params["interactions"],
            seed=params["seed"],
        )
    ]


def _execute_e4(params: Mapping[str, object]) -> List[Row]:
    graph = _graph_for(params["dataset"], params["suite_seed"])
    return harness.e4_unit_rows(
        graph,
        params["expression"],
        dataset=params["dataset"],
        family=params["family"],
        variant=params["variant"],
        max_interactions=params["max_interactions"],
        max_path_length=params["max_path_length"],
    )


def _execute_e5(params: Mapping[str, object]) -> List[Row]:
    return [
        harness.e5_unit_row(
            params["size"],
            word_length=params["word_length"],
            alphabet_size=params["alphabet_size"],
            seed=params["seed"],
        )
    ]


def _execute_scenarios(params: Mapping[str, object]) -> List[Row]:
    graph = _graph_for(params["dataset"], params["suite_seed"])
    return harness.scenario_unit_rows(
        graph,
        params["expression"],
        dataset=params["dataset"],
        max_interactions=params["max_interactions"],
        max_path_length=params["max_path_length"],
        seed=params["seed"],
    )


def _execute_churn(params: Mapping[str, object]) -> List[Row]:
    return [
        harness.churn_unit_row(
            params["nodes"],
            window=params["window"],
            churn=params["churn"],
            tick_count=params["tick_count"],
            alphabet_size=params["alphabet_size"],
            max_path_length=params["max_path_length"],
            seed=params["seed"],
        )
    ]


_EXECUTORS: Dict[str, Callable[[Mapping[str, object]], List[Row]]] = {
    "e1": _execute_e1,
    "e2": _execute_e2,
    "e3": _execute_e3,
    "e4": _execute_e4,
    "e5": _execute_e5,
    "scenarios": _execute_scenarios,
    "churn": _execute_churn,
}


def execute_payload(payload: Mapping[str, object]) -> dict:
    """Execute one unit work order; returns the JSONL record for the store.

    When the payload carries a ``fault_plan``, the unit's crash site —
    ``runner.unit:<id>#a<attempt>`` — is checked *before* any rows are
    computed, simulating a worker that dies mid-unit without having
    persisted anything.  No plan (the normal case) leaves the execution
    path untouched.
    """
    started = time.perf_counter()
    fault_spec = payload.get("fault_plan")
    if fault_spec is not None:
        site = f"runner.unit:{payload['unit_id']}#a{payload.get('attempt', 1)}"
        FaultInjector(FaultPlan.from_dict(fault_spec)).check(site)
    rows = _EXECUTORS[payload["experiment"]](payload["params"])
    return {
        "unit_id": payload["unit_id"],
        "experiment": payload["experiment"],
        "label": payload["label"],
        "rows": rows,
        "seconds": round(time.perf_counter() - started, 4),
    }


# ----------------------------------------------------------------------
# Plan expansion
# ----------------------------------------------------------------------
def build_plan(
    *,
    suite: str = "quick",
    experiments: Sequence[str] = DEFAULT_EXPERIMENTS,
    datasets: Optional[Sequence[str]] = None,
    seed: int = 11,
    per_family: int = 2,
    e1_strategies: Sequence[str] = harness.E1_STRATEGIES,
    e3_node_counts: Optional[Sequence[int]] = None,
    e5_sample_sizes: Sequence[int] = E5_SAMPLE_SIZES,
    churn_node_counts: Optional[Sequence[int]] = None,
) -> List[RunUnit]:
    """Expand a suite into the flat, content-hashed unit list.

    The expansion itself is deterministic: it generates the workload
    suite (whose goal queries are seeded stably — see
    :func:`repro.workloads.generator.stable_name_hash`) and derives one
    independent seed per unit, so the resulting ids identify the exact
    computation regardless of who runs it.
    """
    if suite not in ("quick", "standard"):
        raise ExperimentError(f"unknown suite {suite!r}; expected 'quick' or 'standard'")
    unknown = [name for name in experiments if name not in EXPERIMENTS]
    if unknown:
        raise ExperimentError(f"unknown experiments {unknown}; known: {list(EXPERIMENTS)}")
    # normalise to canonical order so the plan id is order-independent
    experiments = [name for name in EXPERIMENTS if name in set(experiments)]
    if datasets is not None:
        known = list_datasets()
        missing = [name for name in datasets if name not in known]
        if missing:
            raise ExperimentError(f"unknown datasets {missing}; known: {known}")

    cases: List[WorkloadCase]
    if suite == "quick":
        cases = quick_suite(seed)
    else:
        cases = standard_suite(seed=seed, per_family=per_family, datasets=datasets)
    if datasets is not None:
        wanted = set(datasets)
        cases = [case for case in cases if case.dataset in wanted]
    case_experiments = [name for name in experiments if name not in ("e3", "e5", "churn")]
    if case_experiments and not cases:
        raise ExperimentError(
            f"no workload cases for experiments {case_experiments}: the {suite!r} suite "
            f"covers none of the requested datasets {list(datasets or [])}"
        )

    units: List[RunUnit] = []

    def case_params(case: WorkloadCase) -> dict:
        return {
            "suite_seed": seed,
            "dataset": case.dataset,
            "expression": case.goal.expression,
        }

    for experiment in experiments:
        if experiment == "e1":
            for case in cases:
                for strategy in ("static", *e1_strategies):
                    params = dict(
                        case_params(case),
                        family=case.goal.family,
                        strategy=strategy,
                        **harness.E1_DEFAULTS,
                        seed=harness.derive_unit_seed(
                            seed, "e1", case.dataset, case.goal.expression, strategy
                        ),
                    )
                    units.append(
                        RunUnit("e1", f"e1 {case.dataset} [{strategy}] {case.goal.expression}", params)
                    )
        elif experiment == "e2":
            for case in cases:
                params = dict(case_params(case), **harness.E2_DEFAULTS)
                units.append(RunUnit("e2", f"e2 {case.dataset} {case.goal.expression}", params))
        elif experiment == "e3":
            node_counts = e3_node_counts if e3_node_counts is not None else E3_NODE_COUNTS[suite]
            for node_count in node_counts:
                params = dict(
                    nodes=node_count,
                    **harness.E3_DEFAULTS,
                    seed=harness.derive_unit_seed(seed, "e3", node_count),
                )
                units.append(RunUnit("e3", f"e3 random-{node_count}", params))
        elif experiment == "e4":
            for case in cases:
                for variant in ("no-validation", "validation"):
                    params = dict(
                        case_params(case),
                        family=case.goal.family,
                        variant=variant,
                        **harness.E4_DEFAULTS,
                    )
                    units.append(
                        RunUnit("e4", f"e4 {case.dataset} [{variant}] {case.goal.expression}", params)
                    )
        elif experiment == "e5":
            for size in e5_sample_sizes:
                params = dict(
                    size=size,
                    **harness.E5_DEFAULTS,
                    seed=harness.derive_unit_seed(seed, "e5", size),
                )
                units.append(RunUnit("e5", f"e5 samples={size}", params))
        elif experiment == "scenarios":
            for case in cases:
                params = dict(
                    case_params(case),
                    **harness.SCENARIO_DEFAULTS,
                    seed=harness.derive_unit_seed(seed, "scenarios", case.dataset, case.goal.expression),
                )
                units.append(RunUnit("scenarios", f"scenarios {case.dataset} {case.goal.expression}", params))
        elif experiment == "churn":
            node_counts = (
                churn_node_counts if churn_node_counts is not None else CHURN_NODE_COUNTS[suite]
            )
            for node_count in node_counts:
                params = dict(
                    nodes=node_count,
                    **harness.CHURN_DEFAULTS,
                    seed=harness.derive_unit_seed(seed, "churn", node_count),
                )
                units.append(RunUnit("churn", f"churn sliding-{node_count}", params))
    return units


def plan_id_for(units: Sequence[RunUnit]) -> str:
    """Content hash of an ordered unit-id list — the identity of a run plan."""
    digest = hashlib.sha256(canonical_json([unit.unit_id for unit in units]).encode("utf-8"))
    return digest.hexdigest()[:12]


# ----------------------------------------------------------------------
# JSONL result store
# ----------------------------------------------------------------------
class ResultStore:
    """A directory holding one run's streamed results.

    Layout::

        <directory>/
            manifest.json   # plan id, suite parameters, unit labels
            rows.jsonl      # one JSON line per *completed* unit

    Records are appended (and flushed) as units finish, so a killed run
    loses at most the line being written; :meth:`load_records` skips a
    truncated trailing line.
    """

    MANIFEST_NAME = "manifest.json"
    ROWS_NAME = "rows.jsonl"

    def __init__(self, directory: PathLike):
        self.directory = Path(directory)

    @property
    def manifest_path(self) -> Path:
        return self.directory / self.MANIFEST_NAME

    @property
    def rows_path(self) -> Path:
        return self.directory / self.ROWS_NAME

    def read_manifest(self) -> Optional[dict]:
        """The stored manifest, or None when the store is empty/new."""
        if not self.manifest_path.exists():
            return None
        try:
            return json.loads(self.manifest_path.read_text())
        except json.JSONDecodeError as error:
            raise ExperimentError(
                f"corrupt manifest at {self.manifest_path} ({error}); "
                "start over with fresh=True (CLI: --fresh)"
            ) from error

    def write_manifest(self, manifest: dict) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        # atomic: a kill mid-write must not leave a corrupt manifest behind
        temp_path = self.manifest_path.with_suffix(".json.tmp")
        temp_path.write_text(json.dumps(manifest, indent=2, sort_keys=True))
        os.replace(temp_path, self.manifest_path)

    def load_records(self) -> Dict[str, dict]:
        """unit_id -> record for every completed unit in the store."""
        records: Dict[str, dict] = {}
        if not self.rows_path.exists():
            return records
        for line in self.rows_path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # truncated trailing line from an interrupted run
            records[record["unit_id"]] = record
        return records

    def append(self, record: dict) -> None:
        """Append one completed-unit record, flushed to disk immediately."""
        self.directory.mkdir(parents=True, exist_ok=True)
        with self.rows_path.open("a", encoding="utf-8") as handle:
            handle.write(canonical_json(record) + "\n")
            handle.flush()

    def clear(self) -> None:
        """Remove the manifest and all stored rows (start over)."""
        for path in (self.manifest_path, self.rows_path):
            if path.exists():
                path.unlink()


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------
@dataclass
class RunResult:
    """Outcome of one :meth:`ExperimentRunner.run` call."""

    units: List[RunUnit]
    records: Dict[str, dict]
    executed_unit_ids: List[str]
    resumed_unit_ids: List[str]
    seconds: float
    store_directory: Optional[Path] = None
    #: units that needed more than one attempt (fault-injected or flaky)
    retried_unit_ids: List[str] = field(default_factory=list)

    def rows(self, experiment: str) -> List[Row]:
        """All rows of one experiment, in deterministic plan order."""
        rows: List[Row] = []
        for unit in self.units:
            if unit.experiment != experiment:
                continue
            record = self.records.get(unit.unit_id)
            if record is not None:
                rows.extend(record["rows"])
        return rows

    @property
    def tables(self) -> Dict[str, ResultTable]:
        """Merged detail (and, where defined, summary) tables by name.

        Keys match :func:`repro.experiments.harness.run_everything`:
        ``e1_detail``/``e1_summary``, ``e2_detail``/``e2_summary``,
        ``e3``, ``e4_detail``/``e4_summary``, ``e5``,
        ``scenarios_detail``/``scenarios_summary``, ``churn``.
        """
        present = []
        for experiment in EXPERIMENTS:
            if any(unit.experiment == experiment for unit in self.units):
                present.append(experiment)
        tables: Dict[str, ResultTable] = {}
        for experiment in present:
            detail = ResultTable(TABLE_TITLES[experiment], self.rows(experiment))
            if experiment in harness.SUMMARY_SPECS:
                keys, reducers = harness.SUMMARY_SPECS[experiment]
                tables[f"{experiment}_detail"] = detail
                tables[f"{experiment}_summary"] = detail.group_by(keys, reducers)
            else:
                tables[experiment] = detail
        return tables


class ExperimentRunner:
    """Expand, execute (optionally in parallel), store and merge experiments.

    Parameters mirror :func:`build_plan`; ``workers`` controls the size
    of the process pool (``<= 1`` executes inline in this process) and
    ``store`` is an optional :class:`ResultStore` for streaming/resume.

    ``retry_policy`` bounds how many attempts a unit gets when it fails
    retryably (default: :class:`~repro.reliability.RetryPolicy`'s three);
    ``fault_plan`` injects deterministic simulated crashes for chaos
    testing (``None``, the default, leaves execution untouched).
    """

    def __init__(
        self,
        *,
        suite: str = "quick",
        experiments: Sequence[str] = DEFAULT_EXPERIMENTS,
        datasets: Optional[Sequence[str]] = None,
        seed: int = 11,
        per_family: int = 2,
        e1_strategies: Sequence[str] = harness.E1_STRATEGIES,
        e3_node_counts: Optional[Sequence[int]] = None,
        e5_sample_sizes: Sequence[int] = E5_SAMPLE_SIZES,
        churn_node_counts: Optional[Sequence[int]] = None,
        workers: int = 1,
        store: Optional[ResultStore] = None,
        retry_policy: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
    ):
        self.suite = suite
        self.seed = seed
        self.workers = max(1, int(workers))
        self.store = store
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.fault_plan = fault_plan
        self.units = build_plan(
            suite=suite,
            experiments=experiments,
            datasets=datasets,
            seed=seed,
            per_family=per_family,
            e1_strategies=e1_strategies,
            e3_node_counts=e3_node_counts,
            e5_sample_sizes=e5_sample_sizes,
            churn_node_counts=churn_node_counts,
        )
        self.experiments = [name for name in EXPERIMENTS if any(u.experiment == name for u in self.units)]

    @property
    def plan_id(self) -> str:
        return plan_id_for(self.units)

    def plan(self) -> List[RunUnit]:
        """The expanded unit list (deterministic order)."""
        return list(self.units)

    def _manifest(self) -> dict:
        return {
            "format": 1,
            "plan_id": self.plan_id,
            "suite": self.suite,
            "seed": self.seed,
            "experiments": list(self.experiments),
            "unit_count": len(self.units),
            "units": [
                {"unit_id": unit.unit_id, "experiment": unit.experiment, "label": unit.label}
                for unit in self.units
            ],
        }

    def run(
        self,
        *,
        resume: bool = True,
        fresh: bool = False,
        progress: Optional[Callable[[RunUnit, dict, int, int], None]] = None,
    ) -> RunResult:
        """Execute every planned unit that is not already in the store.

        With ``fresh=True`` the store is cleared first.  With
        ``resume=True`` (the default) completed unit ids from the store
        are skipped; their stored rows are merged into the result as if
        they had just run.  ``resume=False`` recomputes everything, so
        it also clears the store first — otherwise re-executed units
        would append duplicate records.  ``progress`` is called after
        each executed unit with ``(unit, record, done_count,
        total_count)``.
        """
        started = time.perf_counter()
        records: Dict[str, dict] = {}
        resumed: List[str] = []
        if self.store is not None:
            if fresh or not resume:
                self.store.clear()
            manifest = self.store.read_manifest()
            if manifest is not None and manifest.get("plan_id") != self.plan_id:
                raise RunPlanMismatchError(manifest.get("plan_id"), self.plan_id, self.store.directory)
            if manifest is None:
                self.store.write_manifest(self._manifest())
            if resume:
                planned_ids = {unit.unit_id for unit in self.units}
                records = {
                    unit_id: record
                    for unit_id, record in self.store.load_records().items()
                    if unit_id in planned_ids
                }
                resumed = [unit.unit_id for unit in self.units if unit.unit_id in records]

        pending = [unit for unit in self.units if unit.unit_id not in records]
        by_id = {unit.unit_id: unit for unit in self.units}
        executed: List[str] = []
        retried: List[str] = []
        total = len(self.units)

        def finish(record: dict) -> None:
            records[record["unit_id"]] = record
            executed.append(record["unit_id"])
            if self.store is not None:
                self.store.append(record)
            if progress is not None:
                progress(by_id[record["unit_id"]], record, len(records), total)

        if self.workers <= 1 or len(pending) <= 1:
            for unit in pending:
                finish(self._execute_inline(unit, retried))
        else:
            self._execute_pool(pending, finish, retried)

        # keep the executed list in plan order (parallel completion shuffles it)
        executed_set = set(executed)
        executed_in_order = [unit.unit_id for unit in self.units if unit.unit_id in executed_set]
        retried_set = set(retried)
        return RunResult(
            units=list(self.units),
            records=records,
            executed_unit_ids=executed_in_order,
            resumed_unit_ids=resumed,
            seconds=round(time.perf_counter() - started, 4),
            store_directory=None if self.store is None else self.store.directory,
            retried_unit_ids=[
                unit.unit_id for unit in self.units if unit.unit_id in retried_set
            ],
        )

    # ------------------------------------------------------------------
    # execution with bounded retries
    # ------------------------------------------------------------------
    def _unit_payload(self, unit: RunUnit, attempt: int) -> dict:
        """The work order for attempt number ``attempt`` of ``unit``.

        Without a fault plan the payload is exactly :meth:`RunUnit.payload`
        — byte-identical to the pre-reliability runner, so content hashes
        and worker behaviour cannot drift when chaos is off.
        """
        payload = unit.payload()
        if self.fault_plan is not None:
            payload["fault_plan"] = self.fault_plan.as_dict()
            payload["attempt"] = attempt
        return payload

    def _give_up(self, unit: RunUnit, attempt: int, error: BaseException) -> None:
        """Raise the right terminal error for a unit that cannot complete."""
        if self.retry_policy.is_retryable(error):
            raise UnitExecutionError(unit.unit_id, attempt, error) from error
        raise error

    def _execute_inline(self, unit: RunUnit, retried: List[str]) -> dict:
        """Run one unit in-process, retrying within the policy budget."""
        attempt = 0
        while attempt < self.retry_policy.max_attempts:
            attempt += 1
            try:
                return execute_payload(self._unit_payload(unit, attempt))
            except Exception as error:
                if (
                    not self.retry_policy.is_retryable(error)
                    or attempt >= self.retry_policy.max_attempts
                ):
                    self._give_up(unit, attempt, error)
                retried.append(unit.unit_id)
        raise AssertionError("unreachable: retry loop exits via return or _give_up")

    def _execute_pool(
        self,
        pending: Sequence[RunUnit],
        finish: Callable[[dict], None],
        retried: List[str],
    ) -> None:
        """Fan pending units over a process pool, resubmitting crashed ones.

        A worker that dies on a unit (simulated via the fault plan, or a
        genuinely flaky unit) gets the unit resubmitted — possibly to a
        different, fresh process — until the retry budget is spent.
        Completed units stream to the store as they finish, so even a
        campaign that ultimately raises loses none of them.
        """
        with ProcessPoolExecutor(max_workers=min(self.workers, len(pending))) as pool:
            inflight = {
                pool.submit(execute_payload, self._unit_payload(unit, 1)): (unit, 1)
                for unit in pending
            }
            while inflight:
                done, _ = wait(set(inflight), return_when=FIRST_COMPLETED)
                for future in done:
                    unit, attempt = inflight.pop(future)
                    try:
                        record = future.result()
                    except Exception as error:
                        if (
                            not self.retry_policy.is_retryable(error)
                            or attempt >= self.retry_policy.max_attempts
                        ):
                            self._give_up(unit, attempt, error)
                        retried.append(unit.unit_id)
                        resubmitted = pool.submit(
                            execute_payload, self._unit_payload(unit, attempt + 1)
                        )
                        inflight[resubmitted] = (unit, attempt + 1)
                        continue
                    finish(record)
