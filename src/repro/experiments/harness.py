"""Experiment harness: the evaluation-style experiments E1–E5 of DESIGN.md.

The harness is layered so serial and parallel execution share one code
path:

* ``*_unit_rows`` / ``*_unit_row`` functions compute the rows of one
  self-contained *experiment unit* — one (dataset, goal, strategy) cell
  of E1, one (dataset, goal) case of E2, one graph size of E3, … — from
  nothing but plain parameters.  They are what
  :class:`repro.experiments.runner.ExperimentRunner` executes in worker
  processes.
* ``run_e*`` functions iterate units serially and return
  :class:`~repro.experiments.metrics.ResultTable` objects (plus, where
  useful, an aggregated companion table).  The benchmark scripts under
  ``benchmarks/`` call these functions and print the tables;
  EXPERIMENTS.md records representative outputs and compares their shape
  with the paper's claims.
* :func:`run_everything` is a thin wrapper over the runner (workers=1 by
  default) and accepts ``workers``/``store`` to fan out over processes
  and stream rows into a JSONL result store.

``SUMMARY_SPECS`` centralises the group-by aggregation of each
experiment so the runner's merged tables summarise identically to the
serial harness.
"""

from __future__ import annotations

import time
import zlib
from statistics import mean
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments.metrics import ResultTable, Row, fraction_true, latency_summary
from repro.graph.generators import random_graph
from repro.graph.labeled_graph import LabeledGraph
from repro.interactive.oracle import SimulatedUser
from repro.interactive.scenarios import (
    run_all_scenarios,
    run_interactive_with_validation,
    run_interactive_without_validation,
    run_static_labeling,
)
from repro.interactive.session import InteractiveSession
from repro.interactive.strategies import make_strategy
from repro.learning.informativeness import pruned_nodes
from repro.automata.state_merging import rpni
from repro.query.rpq import PathQuery
from repro.serving.workspace import GraphWorkspace, default_workspace
from repro.workloads.generator import WorkloadCase, quick_suite

QueryLike = Union[str, PathQuery]

#: Strategies compared in E1 (ordered from least to most informed).
E1_STRATEGIES: Sequence[str] = ("random", "random-informative", "breadth", "degree", "most-informative")

#: Group-by keys and reducers per experiment, shared with the runner so
#: merged parallel results aggregate exactly like the serial harness.
SUMMARY_SPECS: Dict[str, Tuple[Sequence[str], Dict[str, Callable[[List[float]], float]]]] = {
    "e1": (("strategy",), {"interactions": mean, "reached": fraction_true, "f1": mean}),
    "e2": (("interaction",), {"saved_fraction": mean, "informative_remaining": mean, "propagated": mean}),
    "e4": (("variant",), {"exact_goal": fraction_true, "f1": mean, "interactions": mean}),
    "scenarios": (("scenario",), {"interactions": mean, "instance_f1": mean, "exact_goal": fraction_true}),
}

#: Detail-table titles per experiment, shared with the runner.
TABLE_TITLES: Dict[str, str] = {
    "e1": "E1 — interactions to reach the goal answer",
    "e2": "E2 — pruning / propagation of uninformative nodes per interaction",
    "e3": "E3 — per-interaction latency vs graph size",
    "e4": "E4 — path validation vs no validation",
    "e5": "E5 — learner cost vs sample size",
    "scenarios": "Demonstration scenarios — Section 3 comparison",
    "churn": "Churn — warm-tick refresh under sliding-window edge streams",
}

#: Per-experiment unit budgets, shared between the ``run_e*`` defaults
#: and the runner's plan expansion so the two paths cannot silently
#: drift apart.
E1_DEFAULTS: Dict[str, int] = {"max_interactions": 60, "max_path_length": 4}
E2_DEFAULTS: Dict[str, int] = {"max_interactions": 25, "max_path_length": 4}
E3_DEFAULTS: Dict[str, int] = {"edge_factor": 3, "alphabet_size": 4, "max_path_length": 3, "interactions": 5}
E4_DEFAULTS: Dict[str, int] = {"max_interactions": 40, "max_path_length": 4}
E5_DEFAULTS: Dict[str, int] = {"word_length": 5, "alphabet_size": 3}
SCENARIO_DEFAULTS: Dict[str, int] = {"max_interactions": 40, "max_path_length": 4}
CHURN_DEFAULTS: Dict[str, int] = {
    "window": 60,
    "churn": 4,
    "tick_count": 12,
    "alphabet_size": 4,
    "max_path_length": 3,
}


def _coerce_query(goal: QueryLike) -> PathQuery:
    return goal if isinstance(goal, PathQuery) else PathQuery(goal)


def derive_unit_seed(base_seed: int, *parts: object) -> int:
    """A deterministic, process-independent seed for one experiment unit.

    Mixes ``base_seed`` with a CRC32 of the unit descriptor so every unit
    gets an independent stream regardless of execution order or process.
    """
    descriptor = ":".join(str(part) for part in parts)
    return (base_seed * 1_000_003 + zlib.crc32(descriptor.encode("utf-8"))) % (2**31)


# ----------------------------------------------------------------------
# E1 — interactions to convergence, per strategy (and vs static labelling)
# ----------------------------------------------------------------------
def e1_unit_rows(
    graph: LabeledGraph,
    goal: QueryLike,
    *,
    dataset: str,
    family: str,
    strategy: str,
    max_interactions: int = E1_DEFAULTS["max_interactions"],
    max_path_length: int = E1_DEFAULTS["max_path_length"],
    seed: int = 17,
    workspace: Optional[GraphWorkspace] = None,
) -> List[Row]:
    """One E1 cell: one (dataset, goal) case under one strategy.

    ``strategy`` may be ``"static"`` for the static-labelling baseline or
    any name from the strategy registry.  Every unit draws its shared
    components (query engine, language indexes, classifiers) from
    ``workspace`` — the process-wide default when omitted, so serial runs
    on the same graph keep hitting warm caches.
    """
    goal_query = _coerce_query(goal)
    workspace = workspace if workspace is not None else default_workspace()
    if strategy == "static":
        report = run_static_labeling(
            graph, goal_query, seed=seed, max_path_length=max_path_length,
            label_budget=max_interactions, workspace=workspace,
        )
    else:
        report = run_interactive_with_validation(
            graph,
            goal_query,
            strategy=make_strategy(strategy, seed=seed, max_path_length=max_path_length),
            max_interactions=max_interactions,
            max_path_length=max_path_length,
            workspace=workspace,
        )
    row: Row = {
        "dataset": dataset,
        "family": family,
        "goal": str(goal_query),
        "strategy": strategy,
        "interactions": report.interactions,
        "reached": report.metrics.get("f1", 0.0) == 1.0,
        "f1": round(report.metrics.get("f1", 0.0), 3),
    }
    # per-interaction system latency percentiles — the paper's
    # "time-efficient between interactions" requirement, tracked per cell
    # so a regression in the incremental loop shows up in CI artifacts
    row.update(latency_summary(report.interaction_latencies))
    return [row]


def run_e1_interactions_by_strategy(
    cases: Optional[List[WorkloadCase]] = None,
    *,
    strategies: Sequence[str] = E1_STRATEGIES,
    max_interactions: int = E1_DEFAULTS["max_interactions"],
    max_path_length: int = E1_DEFAULTS["max_path_length"],
    seed: int = 17,
) -> Dict[str, ResultTable]:
    """E1: number of user interactions needed to reach the goal answer.

    For every (dataset, goal) case we run the interactive loop once per
    strategy, plus the static-labelling baseline, and count the labelling
    interactions until the hypothesis returns the user's intended answer
    set (or the budget runs out).  ``seed`` is a *base* seed: every
    (case, strategy) cell derives its own independent seed from it, the
    same derivation the parallel runner uses, so serial and runner
    results agree row-for-row.
    """
    cases = cases if cases is not None else quick_suite(seed)
    table = ResultTable(TABLE_TITLES["e1"])
    for case in cases:
        for strategy_name in ("static", *strategies):
            table.extend(
                e1_unit_rows(
                    case.graph,
                    case.goal.query,
                    dataset=case.dataset,
                    family=case.goal.family,
                    strategy=strategy_name,
                    max_interactions=max_interactions,
                    max_path_length=max_path_length,
                    seed=derive_unit_seed(seed, "e1", case.dataset, case.goal.expression, strategy_name),
                )
            )
    keys, reducers = SUMMARY_SPECS["e1"]
    return {"detail": table, "summary": table.group_by(keys, reducers)}


# ----------------------------------------------------------------------
# E2 — pruning effectiveness after each interaction
# ----------------------------------------------------------------------
def e2_unit_rows(
    graph: LabeledGraph,
    goal: QueryLike,
    *,
    dataset: str,
    max_interactions: int = E2_DEFAULTS["max_interactions"],
    max_path_length: int = E2_DEFAULTS["max_path_length"],
    workspace: Optional[GraphWorkspace] = None,
) -> List[Row]:
    """One E2 case: per-interaction pruning/propagation rows for one goal."""
    goal_query = _coerce_query(goal)
    workspace = workspace if workspace is not None else default_workspace()
    user = SimulatedUser(graph, goal_query, workspace=workspace)
    session = InteractiveSession(
        graph,
        user,
        max_path_length=max_path_length,
        max_interactions=max_interactions,
        workspace=workspace,
    )
    node_count = graph.node_count
    rows: List[Row] = []
    while not session.should_halt():
        record = session.step()
        user_labeled = len(session.examples.user_positive_nodes) + len(
            session.examples.user_negative_nodes
        )
        still_pruned = len(pruned_nodes(graph, session.examples, max_length=max_path_length))
        propagated = len(session.examples.labeled_nodes) - user_labeled
        settled = propagated + still_pruned
        remaining_pool = max(node_count - user_labeled, 1)
        rows.append(
            {
                "dataset": dataset,
                "goal": str(goal_query),
                "interaction": record.index,
                "user_labeled": user_labeled,
                "propagated": propagated,
                "saved_fraction": round(settled / remaining_pool, 3),
                "informative_remaining": record.informative_remaining,
            }
        )
    return rows


def run_e2_pruning(
    cases: Optional[List[WorkloadCase]] = None,
    *,
    max_interactions: int = E2_DEFAULTS["max_interactions"],
    max_path_length: int = E2_DEFAULTS["max_path_length"],
    seed: int = 19,
) -> Dict[str, ResultTable]:
    """E2: fraction of nodes the user never has to label, per interaction.

    After each interaction the session propagates implied labels and prunes
    uninformative nodes; the *saved fraction* reported here is the share of
    the not-yet-user-labelled nodes whose label is already settled (either
    propagated automatically or pruned as uninformative), i.e. questions the
    user will never be asked.
    """
    cases = cases if cases is not None else quick_suite(seed)
    table = ResultTable(TABLE_TITLES["e2"])
    for case in cases:
        table.extend(
            e2_unit_rows(
                case.graph,
                case.goal.query,
                dataset=case.dataset,
                max_interactions=max_interactions,
                max_path_length=max_path_length,
            )
        )
    keys, reducers = SUMMARY_SPECS["e2"]
    return {"detail": table, "summary": table.group_by(keys, reducers)}


# ----------------------------------------------------------------------
# E3 — per-interaction latency as the graph grows
# ----------------------------------------------------------------------
def e3_unit_row(
    node_count: int,
    *,
    edge_factor: int = E3_DEFAULTS["edge_factor"],
    alphabet_size: int = E3_DEFAULTS["alphabet_size"],
    max_path_length: int = E3_DEFAULTS["max_path_length"],
    interactions: int = E3_DEFAULTS["interactions"],
    seed: int = 23,
    workspace: Optional[GraphWorkspace] = None,
) -> Row:
    """One E3 cell: latency of a few interactions on one random graph size."""
    alphabet = [chr(ord("a") + index) for index in range(alphabet_size)]
    graph = random_graph(
        node_count, node_count * edge_factor, alphabet, seed=seed, name=f"random-{node_count}"
    )
    workspace = workspace if workspace is not None else default_workspace()
    goal = PathQuery(f"({alphabet[0]} + {alphabet[1]})* . {alphabet[2]}")
    if not workspace.engine.evaluate(graph, goal):
        goal = PathQuery(alphabet[0])
    user = SimulatedUser(graph, goal, workspace=workspace)
    session = InteractiveSession(
        graph,
        user,
        max_path_length=max_path_length,
        max_interactions=interactions,
        workspace=workspace,
    )
    durations: List[float] = []
    performed = 0
    while performed < interactions and not session.should_halt():
        record = session.step()
        durations.append(record.duration_seconds)
        performed += 1
    row: Row = {
        "nodes": node_count,
        "edges": graph.edge_count,
        "interactions": performed,
        "mean_seconds": round(mean(durations), 4) if durations else 0.0,
    }
    row.update(latency_summary(durations))
    return row


def run_e3_scalability(
    *,
    node_counts: Sequence[int] = (100, 200, 400, 800),
    edge_factor: int = E3_DEFAULTS["edge_factor"],
    alphabet_size: int = E3_DEFAULTS["alphabet_size"],
    max_path_length: int = E3_DEFAULTS["max_path_length"],
    interactions: int = E3_DEFAULTS["interactions"],
    seed: int = 23,
) -> ResultTable:
    """E3: strategy + learning time per interaction on growing random graphs.

    ``seed`` is a base seed; each graph size derives its own seed with
    the same derivation the parallel runner uses.
    """
    table = ResultTable(TABLE_TITLES["e3"])
    for node_count in node_counts:
        table.add(
            **e3_unit_row(
                node_count,
                edge_factor=edge_factor,
                alphabet_size=alphabet_size,
                max_path_length=max_path_length,
                interactions=interactions,
                seed=derive_unit_seed(seed, "e3", node_count),
            )
        )
    return table


# ----------------------------------------------------------------------
# E4 — effect of path validation on learned-query quality
# ----------------------------------------------------------------------
def e4_unit_rows(
    graph: LabeledGraph,
    goal: QueryLike,
    *,
    dataset: str,
    family: str,
    variant: str,
    max_interactions: int = E4_DEFAULTS["max_interactions"],
    max_path_length: int = E4_DEFAULTS["max_path_length"],
    workspace: Optional[GraphWorkspace] = None,
) -> List[Row]:
    """One E4 cell: one (dataset, goal) case with or without path validation."""
    goal_query = _coerce_query(goal)
    workspace = workspace if workspace is not None else default_workspace()
    if variant == "validation":
        report = run_interactive_with_validation(
            graph, goal_query, max_interactions=max_interactions,
            max_path_length=max_path_length, workspace=workspace,
        )
    elif variant == "no-validation":
        report = run_interactive_without_validation(
            graph, goal_query, max_interactions=max_interactions,
            max_path_length=max_path_length, workspace=workspace,
        )
    else:
        raise ValueError(f"unknown E4 variant {variant!r}")
    return [
        {
            "dataset": dataset,
            "family": family,
            "goal": str(goal_query),
            "variant": variant,
            "interactions": report.interactions,
            "exact_goal": report.exact_goal,
            "f1": round(report.metrics.get("f1", 0.0), 3),
            "learned": str(report.learned_query),
        }
    ]


def run_e4_path_validation(
    cases: Optional[List[WorkloadCase]] = None,
    *,
    max_interactions: int = E4_DEFAULTS["max_interactions"],
    max_path_length: int = E4_DEFAULTS["max_path_length"],
    seed: int = 29,
) -> Dict[str, ResultTable]:
    """E4: with vs without path validation (exact recovery and instance F1)."""
    cases = cases if cases is not None else quick_suite(seed)
    table = ResultTable(TABLE_TITLES["e4"])
    for case in cases:
        for variant in ("no-validation", "validation"):
            table.extend(
                e4_unit_rows(
                    case.graph,
                    case.goal.query,
                    dataset=case.dataset,
                    family=case.goal.family,
                    variant=variant,
                    max_interactions=max_interactions,
                    max_path_length=max_path_length,
                )
            )
    keys, reducers = SUMMARY_SPECS["e4"]
    return {"detail": table, "summary": table.group_by(keys, reducers)}


# ----------------------------------------------------------------------
# E5 — learner core cost (PTA + state merging)
# ----------------------------------------------------------------------
def pta_state_count(positives: Sequence[Tuple[str, ...]]) -> int:
    """Number of states of the prefix tree acceptor over ``positives``.

    One state per *distinct* prefix (the empty prefix is the root), which
    accounts for prefix sharing — summing word lengths would count shared
    prefixes once per word and overstate the PTA size.
    """
    prefixes = {word[:length] for word in positives for length in range(len(word) + 1)}
    # an empty sample still has the root state
    return max(1, len(prefixes))


def e5_unit_row(
    size: int,
    *,
    word_length: int = E5_DEFAULTS["word_length"],
    alphabet_size: int = E5_DEFAULTS["alphabet_size"],
    seed: int = 31,
) -> Row:
    """One E5 cell: RPNI cost on one sample size."""
    import random as _random

    alphabet = [chr(ord("a") + index) for index in range(alphabet_size)]
    rng = _random.Random(seed)
    positives = [
        tuple(rng.choice(alphabet) for _ in range(rng.randint(1, word_length)))
        for _ in range(size)
    ]
    negatives = []
    while len(negatives) < size:
        word = tuple(rng.choice(alphabet) for _ in range(rng.randint(1, word_length)))
        if word not in positives:
            negatives.append(word)
    started = time.perf_counter()
    learned = rpni(positives, negatives)
    elapsed = time.perf_counter() - started
    return {
        "positive_words": size,
        "negative_words": len(negatives),
        "pta_states": pta_state_count(positives),
        "learned_states": learned.state_count(),
        "seconds": round(elapsed, 4),
        "all_positives_accepted": all(learned.accepts(word) for word in positives),
        "all_negatives_rejected": not any(learned.accepts(word) for word in negatives),
    }


def run_e5_learner_cost(
    *,
    sample_sizes: Sequence[int] = (5, 10, 20, 40),
    word_length: int = E5_DEFAULTS["word_length"],
    alphabet_size: int = E5_DEFAULTS["alphabet_size"],
    seed: int = 31,
) -> ResultTable:
    """E5: RPNI generalisation time / output size vs number of sample words.

    Each sample size draws its words from an independently seeded stream
    (derived from ``seed`` and the size) so the rows are reproducible
    per-unit, matching what the parallel runner computes.
    """
    table = ResultTable(TABLE_TITLES["e5"])
    for size in sample_sizes:
        table.add(
            **e5_unit_row(
                size,
                word_length=word_length,
                alphabet_size=alphabet_size,
                seed=derive_unit_seed(seed, "e5", size),
            )
        )
    return table


# ----------------------------------------------------------------------
# Churn — warm-tick refresh latency under sliding-window streams
# ----------------------------------------------------------------------
def churn_unit_row(
    node_count: int,
    *,
    window: int = CHURN_DEFAULTS["window"],
    churn: int = CHURN_DEFAULTS["churn"],
    tick_count: int = CHURN_DEFAULTS["tick_count"],
    alphabet_size: int = CHURN_DEFAULTS["alphabet_size"],
    max_path_length: int = CHURN_DEFAULTS["max_path_length"],
    seed: int = 47,
    workspace: Optional[GraphWorkspace] = None,
) -> Row:
    """One churn cell: warm-tick refresh on one sliding-window stream.

    Every tick applies one atomic edge delta, refreshes the workspace
    through the delta journal and re-touches each cache layer (language
    index, answer cache, neighbourhood ball).  The timing columns vary
    run-to-run as usual; the counter columns are deterministic — the
    stream is seeded, so how many entries each layer retains per tick is
    part of the unit's identity.
    """
    from repro.workloads.churn import ChurnStream

    alphabet = [chr(ord("a") + index) for index in range(alphabet_size)]
    stream = ChurnStream(
        node_count,
        alphabet,
        window=window,
        churn=churn,
        tick_count=tick_count,
        seed=seed,
        name=f"churn-{node_count}",
    )
    graph = stream.initial_graph()
    # a fresh workspace: churn mutates the graph, so sharing the default
    # workspace would poison other experiments' caches
    workspace = workspace if workspace is not None else GraphWorkspace()
    queries = (
        alphabet[0],
        f"({alphabet[0]} + {alphabet[1]})* . {alphabet[2]}",
        f"{alphabet[1]} . {alphabet[2]}",
    )
    center = stream.nodes[0]
    workspace.language_index(graph, max_path_length)
    for query in queries:
        workspace.engine.evaluate(graph, query)
    workspace.neighborhoods(graph).neighborhood(center, 2)
    durations: List[float] = []
    totals: Dict[str, int] = {}
    for tick in stream.ticks():
        started = time.perf_counter()
        tick.apply(graph)
        counters = workspace.refresh(graph)
        workspace.language_index(graph, max_path_length)
        for query in queries:
            workspace.engine.evaluate(graph, query)
        workspace.neighborhoods(graph).neighborhood(center, 2)
        durations.append(time.perf_counter() - started)
        for key, value in counters.items():
            totals[key] = totals.get(key, 0) + value
    row: Row = {
        "nodes": node_count,
        "window": window,
        "churn": churn,
        "ticks": tick_count,
        "language_refreshed": totals.get("language_indexes_refreshed", 0),
        "language_dropped": totals.get("language_indexes_dropped", 0),
        "answers_retained": totals.get("answers_retained", 0),
        "answers_dropped": totals.get("answers_dropped", 0),
        "neighborhood_kept": totals.get("neighborhood_states_kept", 0),
        "mean_seconds": round(mean(durations), 4) if durations else 0.0,
    }
    row.update(latency_summary(durations))
    return row


def run_churn(
    *,
    node_counts: Sequence[int] = (60, 120),
    window: int = CHURN_DEFAULTS["window"],
    churn: int = CHURN_DEFAULTS["churn"],
    tick_count: int = CHURN_DEFAULTS["tick_count"],
    alphabet_size: int = CHURN_DEFAULTS["alphabet_size"],
    max_path_length: int = CHURN_DEFAULTS["max_path_length"],
    seed: int = 47,
) -> ResultTable:
    """Churn family: per-tick refresh cost across graph sizes.

    ``seed`` is a base seed; each size derives its own unit seed with the
    same derivation the parallel runner uses.
    """
    table = ResultTable(TABLE_TITLES["churn"])
    for node_count in node_counts:
        table.add(
            **churn_unit_row(
                node_count,
                window=window,
                churn=churn,
                tick_count=tick_count,
                alphabet_size=alphabet_size,
                max_path_length=max_path_length,
                seed=derive_unit_seed(seed, "churn", node_count),
            )
        )
    return table


# ----------------------------------------------------------------------
# The three demonstration scenarios side by side (Section 3)
# ----------------------------------------------------------------------
def scenario_unit_rows(
    graph: LabeledGraph,
    goal: QueryLike,
    *,
    dataset: str,
    max_interactions: int = SCENARIO_DEFAULTS["max_interactions"],
    max_path_length: int = SCENARIO_DEFAULTS["max_path_length"],
    seed: int = 37,
    workspace: Optional[GraphWorkspace] = None,
) -> List[Row]:
    """One scenario-comparison case: all three Section 3 scenarios on one goal."""
    goal_query = _coerce_query(goal)
    workspace = workspace if workspace is not None else default_workspace()
    reports = run_all_scenarios(
        graph,
        goal_query,
        max_path_length=max_path_length,
        seed=seed,
        max_interactions=max_interactions,
        workspace=workspace,
    )
    rows: List[Row] = []
    for report in reports.values():
        row: Row = {"dataset": dataset, "goal": str(goal_query)}
        row.update(report.summary_row())
        rows.append(row)
    return rows


def run_scenario_comparison(
    cases: Optional[List[WorkloadCase]] = None,
    *,
    max_interactions: int = SCENARIO_DEFAULTS["max_interactions"],
    max_path_length: int = SCENARIO_DEFAULTS["max_path_length"],
    seed: int = 37,
) -> Dict[str, ResultTable]:
    """Section 3 comparison: static vs interactive vs interactive+validation.

    ``seed`` is a base seed; each case derives its own seed with the same
    derivation the parallel runner uses.
    """
    cases = cases if cases is not None else quick_suite(seed)
    table = ResultTable(TABLE_TITLES["scenarios"])
    for case in cases:
        table.extend(
            scenario_unit_rows(
                case.graph,
                case.goal.query,
                dataset=case.dataset,
                max_interactions=max_interactions,
                max_path_length=max_path_length,
                seed=derive_unit_seed(seed, "scenarios", case.dataset, case.goal.expression),
            )
        )
    keys, reducers = SUMMARY_SPECS["scenarios"]
    return {"detail": table, "summary": table.group_by(keys, reducers)}


def run_everything(
    *,
    quick: bool = True,
    seed: int = 41,
    workers: int = 1,
    store=None,
) -> Dict[str, ResultTable]:
    """Run every experiment and return all tables by name.

    Thin wrapper over :class:`repro.experiments.runner.ExperimentRunner`:
    the suite is expanded into deterministic units, executed serially
    (``workers=1``, the default) or over a process pool, and the rows are
    merged back into the usual tables.  Pass a
    :class:`~repro.experiments.runner.ResultStore` as ``store`` to stream
    rows into a resumable JSONL result store.  This is what
    ``examples/full_evaluation.py`` and the EXPERIMENTS.md generation use.
    """
    from repro.experiments.runner import ExperimentRunner

    runner = ExperimentRunner(
        suite="quick" if quick else "standard",
        seed=seed,
        workers=workers,
        store=store,
    )
    return runner.run().tables
