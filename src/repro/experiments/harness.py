"""Experiment harness: the evaluation-style experiments E1–E5 of DESIGN.md.

Each ``run_e*`` function executes one experiment over a workload suite and
returns a :class:`~repro.experiments.metrics.ResultTable` (plus, where
useful, an aggregated companion table).  The benchmark scripts under
``benchmarks/`` call these functions and print the tables; EXPERIMENTS.md
records representative outputs and compares their shape with the paper's
claims.
"""

from __future__ import annotations

import time
from statistics import mean
from typing import Dict, List, Optional, Sequence

from repro.experiments.metrics import ResultTable, fraction_true
from repro.graph.generators import random_graph
from repro.interactive.oracle import SimulatedUser
from repro.interactive.scenarios import (
    run_all_scenarios,
    run_interactive_with_validation,
    run_interactive_without_validation,
    run_static_labeling,
)
from repro.interactive.session import InteractiveSession
from repro.interactive.strategies import make_strategy
from repro.learning.informativeness import pruned_nodes
from repro.automata.state_merging import rpni
from repro.query.evaluation import evaluate
from repro.query.rpq import PathQuery
from repro.workloads.generator import WorkloadCase, quick_suite, standard_suite

#: Strategies compared in E1 (ordered from least to most informed).
E1_STRATEGIES: Sequence[str] = ("random", "random-informative", "breadth", "degree", "most-informative")


# ----------------------------------------------------------------------
# E1 — interactions to convergence, per strategy (and vs static labelling)
# ----------------------------------------------------------------------
def run_e1_interactions_by_strategy(
    cases: Optional[List[WorkloadCase]] = None,
    *,
    strategies: Sequence[str] = E1_STRATEGIES,
    max_interactions: int = 60,
    max_path_length: int = 4,
    seed: int = 17,
) -> Dict[str, ResultTable]:
    """E1: number of user interactions needed to reach the goal answer.

    For every (dataset, goal) case we run the interactive loop once per
    strategy, plus the static-labelling baseline, and count the labelling
    interactions until the hypothesis returns the user's intended answer
    set (or the budget runs out).
    """
    cases = cases if cases is not None else quick_suite(seed)
    table = ResultTable("E1 — interactions to reach the goal answer")
    for case in cases:
        static = run_static_labeling(
            case.graph, case.goal.query, seed=seed, max_path_length=max_path_length,
            label_budget=max_interactions,
        )
        table.add(
            dataset=case.dataset,
            family=case.goal.family,
            goal=case.goal.expression,
            strategy="static",
            interactions=static.interactions,
            reached=static.metrics.get("f1", 0.0) == 1.0,
            f1=round(static.metrics.get("f1", 0.0), 3),
        )
        for strategy_name in strategies:
            strategy = make_strategy(strategy_name, seed=seed, max_path_length=max_path_length)
            report = run_interactive_with_validation(
                case.graph,
                case.goal.query,
                strategy=strategy,
                max_interactions=max_interactions,
                max_path_length=max_path_length,
            )
            table.add(
                dataset=case.dataset,
                family=case.goal.family,
                goal=case.goal.expression,
                strategy=strategy_name,
                interactions=report.interactions,
                reached=report.metrics.get("f1", 0.0) == 1.0,
                f1=round(report.metrics.get("f1", 0.0), 3),
            )
    summary = table.group_by(
        ["strategy"],
        {"interactions": mean, "reached": fraction_true, "f1": mean},
    )
    return {"detail": table, "summary": summary}


# ----------------------------------------------------------------------
# E2 — pruning effectiveness after each interaction
# ----------------------------------------------------------------------
def run_e2_pruning(
    cases: Optional[List[WorkloadCase]] = None,
    *,
    max_interactions: int = 25,
    max_path_length: int = 4,
    seed: int = 19,
) -> Dict[str, ResultTable]:
    """E2: fraction of nodes the user never has to label, per interaction.

    After each interaction the session propagates implied labels and prunes
    uninformative nodes; the *saved fraction* reported here is the share of
    the not-yet-user-labelled nodes whose label is already settled (either
    propagated automatically or pruned as uninformative), i.e. questions the
    user will never be asked.
    """
    cases = cases if cases is not None else quick_suite(seed)
    table = ResultTable("E2 — pruning / propagation of uninformative nodes per interaction")
    for case in cases:
        user = SimulatedUser(case.graph, case.goal.query)
        session = InteractiveSession(
            case.graph,
            user,
            max_path_length=max_path_length,
            max_interactions=max_interactions,
        )
        node_count = case.graph.node_count
        while not session.should_halt():
            record = session.step()
            user_labeled = len(session.examples.user_positive_nodes) + len(
                session.examples.user_negative_nodes
            )
            still_pruned = len(
                pruned_nodes(case.graph, session.examples, max_length=max_path_length)
            )
            propagated = len(session.examples.labeled_nodes) - user_labeled
            settled = propagated + still_pruned
            remaining_pool = max(node_count - user_labeled, 1)
            table.add(
                dataset=case.dataset,
                goal=case.goal.expression,
                interaction=record.index,
                user_labeled=user_labeled,
                propagated=propagated,
                saved_fraction=round(settled / remaining_pool, 3),
                informative_remaining=record.informative_remaining,
            )
    summary = table.group_by(
        ["interaction"], {"saved_fraction": mean, "informative_remaining": mean, "propagated": mean}
    )
    return {"detail": table, "summary": summary}


# ----------------------------------------------------------------------
# E3 — per-interaction latency as the graph grows
# ----------------------------------------------------------------------
def run_e3_scalability(
    *,
    node_counts: Sequence[int] = (100, 200, 400, 800),
    edge_factor: int = 3,
    alphabet_size: int = 4,
    max_path_length: int = 3,
    interactions: int = 5,
    seed: int = 23,
) -> ResultTable:
    """E3: strategy + learning time per interaction on growing random graphs."""
    table = ResultTable("E3 — per-interaction latency vs graph size")
    alphabet = [chr(ord("a") + index) for index in range(alphabet_size)]
    for node_count in node_counts:
        graph = random_graph(
            node_count, node_count * edge_factor, alphabet, seed=seed, name=f"random-{node_count}"
        )
        goal = PathQuery(f"({alphabet[0]} + {alphabet[1]})* . {alphabet[2]}")
        if not evaluate(graph, goal):
            goal = PathQuery(alphabet[0])
        user = SimulatedUser(graph, goal)
        session = InteractiveSession(
            graph,
            user,
            max_path_length=max_path_length,
            max_interactions=interactions,
        )
        durations: List[float] = []
        performed = 0
        while performed < interactions and not session.should_halt():
            record = session.step()
            durations.append(record.duration_seconds)
            performed += 1
        table.add(
            nodes=node_count,
            edges=graph.edge_count,
            interactions=performed,
            mean_seconds=round(mean(durations), 4) if durations else 0.0,
            max_seconds=round(max(durations), 4) if durations else 0.0,
        )
    return table


# ----------------------------------------------------------------------
# E4 — effect of path validation on learned-query quality
# ----------------------------------------------------------------------
def run_e4_path_validation(
    cases: Optional[List[WorkloadCase]] = None,
    *,
    max_interactions: int = 40,
    max_path_length: int = 4,
    seed: int = 29,
) -> Dict[str, ResultTable]:
    """E4: with vs without path validation (exact recovery and instance F1)."""
    cases = cases if cases is not None else quick_suite(seed)
    table = ResultTable("E4 — path validation vs no validation")
    for case in cases:
        without = run_interactive_without_validation(
            case.graph, case.goal.query, max_interactions=max_interactions, max_path_length=max_path_length
        )
        with_validation = run_interactive_with_validation(
            case.graph, case.goal.query, max_interactions=max_interactions, max_path_length=max_path_length
        )
        for variant, report in (("no-validation", without), ("validation", with_validation)):
            table.add(
                dataset=case.dataset,
                family=case.goal.family,
                goal=case.goal.expression,
                variant=variant,
                interactions=report.interactions,
                exact_goal=report.exact_goal,
                f1=round(report.metrics.get("f1", 0.0), 3),
                learned=str(report.learned_query),
            )
    summary = table.group_by(
        ["variant"], {"exact_goal": fraction_true, "f1": mean, "interactions": mean}
    )
    return {"detail": table, "summary": summary}


# ----------------------------------------------------------------------
# E5 — learner core cost (PTA + state merging)
# ----------------------------------------------------------------------
def run_e5_learner_cost(
    *,
    sample_sizes: Sequence[int] = (5, 10, 20, 40),
    word_length: int = 5,
    alphabet_size: int = 3,
    seed: int = 31,
) -> ResultTable:
    """E5: RPNI generalisation time / output size vs number of sample words."""
    import random as _random

    table = ResultTable("E5 — learner cost vs sample size")
    alphabet = [chr(ord("a") + index) for index in range(alphabet_size)]
    rng = _random.Random(seed)
    for size in sample_sizes:
        positives = [
            tuple(rng.choice(alphabet) for _ in range(rng.randint(1, word_length)))
            for _ in range(size)
        ]
        negatives = []
        while len(negatives) < size:
            word = tuple(rng.choice(alphabet) for _ in range(rng.randint(1, word_length)))
            if word not in positives:
                negatives.append(word)
        started = time.perf_counter()
        learned = rpni(positives, negatives)
        elapsed = time.perf_counter() - started
        table.add(
            positive_words=size,
            negative_words=len(negatives),
            pta_states=sum(len(word) for word in set(positives)) + 1,
            learned_states=learned.state_count(),
            seconds=round(elapsed, 4),
            all_positives_accepted=all(learned.accepts(word) for word in positives),
            all_negatives_rejected=not any(learned.accepts(word) for word in negatives),
        )
    return table


# ----------------------------------------------------------------------
# The three demonstration scenarios side by side (Section 3)
# ----------------------------------------------------------------------
def run_scenario_comparison(
    cases: Optional[List[WorkloadCase]] = None,
    *,
    max_interactions: int = 40,
    max_path_length: int = 4,
    seed: int = 37,
) -> Dict[str, ResultTable]:
    """Section 3 comparison: static vs interactive vs interactive+validation."""
    cases = cases if cases is not None else quick_suite(seed)
    table = ResultTable("Demonstration scenarios — Section 3 comparison")
    for case in cases:
        reports = run_all_scenarios(
            case.graph,
            case.goal.query,
            max_path_length=max_path_length,
            seed=seed,
            max_interactions=max_interactions,
        )
        for report in reports.values():
            row = {"dataset": case.dataset, "goal": case.goal.expression}
            row.update(report.summary_row())
            table.add(**row)
    summary = table.group_by(
        ["scenario"], {"interactions": mean, "instance_f1": mean, "exact_goal": fraction_true}
    )
    return {"detail": table, "summary": summary}


def run_everything(*, quick: bool = True, seed: int = 41) -> Dict[str, ResultTable]:
    """Run every experiment (quick suite by default); returns all tables by name.

    This is what ``examples/full_evaluation.py`` and the EXPERIMENTS.md
    generation use.
    """
    cases = quick_suite(seed) if quick else standard_suite(seed=seed)
    tables: Dict[str, ResultTable] = {}
    e1 = run_e1_interactions_by_strategy(cases, seed=seed)
    tables["e1_detail"], tables["e1_summary"] = e1["detail"], e1["summary"]
    e2 = run_e2_pruning(cases, seed=seed)
    tables["e2_detail"], tables["e2_summary"] = e2["detail"], e2["summary"]
    tables["e3"] = run_e3_scalability(node_counts=(100, 200, 400) if quick else (100, 200, 400, 800, 1600))
    e4 = run_e4_path_validation(cases, seed=seed)
    tables["e4_detail"], tables["e4_summary"] = e4["detail"], e4["summary"]
    tables["e5"] = run_e5_learner_cost()
    scenarios = run_scenario_comparison(cases, seed=seed)
    tables["scenarios_detail"], tables["scenarios_summary"] = scenarios["detail"], scenarios["summary"]
    return tables
