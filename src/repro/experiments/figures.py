"""Regeneration of the paper's figures.

The demo paper has three figures; each function here regenerates the
corresponding artefact programmatically and returns both the raw objects
and a text rendering, so the benchmark scripts can print them and the
tests can assert the paper's stated facts:

* :func:`figure1` — the motivating graph and the answer of
  ``(tram + bus)* . cinema`` (must be exactly ``{N1, N2, N4, N6}``);
* :func:`figure2` — a full interactive session transcript on that graph
  (the loop of Figure 2 with a simulated user whose goal is the paper's
  query);
* :func:`figure3` — the neighbourhood of ``N2`` at distance 2, the zoom
  to distance 3 with its delta, and the prefix tree of the uncovered
  paths of ``N2`` of length ≤ 3 with the candidate ``bus.bus.cinema``
  highlighted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.graph.datasets import motivating_example, motivating_example_expected_answer
from repro.graph.neighborhood import Neighborhood, NeighborhoodDelta
from repro.interactive.oracle import SimulatedUser
from repro.interactive.session import InteractiveSession, SessionResult
from repro.interactive.visualization import (
    render_neighborhood_text,
    render_prefix_tree_text,
    render_zoom_text,
)
from repro.automata.prefix_tree import PathPrefixTree
from repro.learning.path_selection import candidate_prefix_tree
from repro.query.evaluation import witness_path
from repro.serving.workspace import default_workspace
from repro.query.rpq import PathQuery

#: The paper's goal query on the motivating example.
FIGURE1_QUERY = "(tram + bus)* . cinema"


@dataclass
class Figure1Result:
    """Figure 1: the motivating graph and its goal-query answer."""

    graph: object
    query: PathQuery
    answer: frozenset
    expected: frozenset
    witnesses: Dict[str, Optional[object]]

    @property
    def matches_paper(self) -> bool:
        """True when the computed answer is the paper's {N1, N2, N4, N6}."""
        return self.answer == self.expected

    def render(self) -> str:
        lines = [
            f"Figure 1 — query {self.query} on the geographical graph",
            f"  selected nodes : {sorted(self.answer, key=str)}",
            f"  paper's answer : {sorted(self.expected, key=str)}",
            f"  match          : {self.matches_paper}",
        ]
        for node, witness in sorted(self.witnesses.items()):
            lines.append(f"  witness for {node}: {witness}")
        return "\n".join(lines)


def figure1() -> Figure1Result:
    """Recompute the Figure 1 answer and per-node witness paths."""
    graph = motivating_example()
    query = PathQuery(FIGURE1_QUERY)
    answer = frozenset(default_workspace().engine.evaluate(graph, query))
    witnesses = {
        str(node): witness_path(graph, query, node) for node in sorted(answer, key=str)
    }
    return Figure1Result(
        graph=graph,
        query=query,
        answer=answer,
        expected=motivating_example_expected_answer(),
        witnesses=witnesses,
    )


@dataclass
class Figure2Result:
    """Figure 2: one full run of the interactive loop."""

    session_result: SessionResult
    goal: PathQuery
    exact_goal: bool
    instance_match: bool

    def render(self) -> str:
        result = self.session_result
        lines = [
            f"Figure 2 — interactive loop, goal {self.goal}",
            f"  interactions : {result.interactions}",
            f"  halted by    : {result.halted_by}",
            f"  learned      : {result.learned_query}",
            f"  exact goal   : {self.exact_goal}",
            f"  same answer  : {self.instance_match}",
        ]
        for record in result.records:
            word = ".".join(record.validated_word) if record.validated_word else "-"
            lines.append(
                f"    #{record.index} node={record.node} label={'+' if record.positive else '-'} "
                f"zooms={record.zooms} validated={word} hypothesis={record.hypothesis}"
            )
        return "\n".join(lines)


def figure2(*, path_validation: bool = True) -> Figure2Result:
    """Run the Figure 2 loop on the motivating example with a simulated user."""
    graph = motivating_example()
    goal = PathQuery(FIGURE1_QUERY)
    user = SimulatedUser(graph, goal)
    session = InteractiveSession(graph, user, path_validation=path_validation)
    result = session.run()
    learned = result.learned_query
    exact = learned is not None and learned.same_language(goal)
    engine = default_workspace().engine
    instance_match = learned is not None and frozenset(
        engine.evaluate(graph, learned)
    ) == frozenset(engine.evaluate(graph, goal))
    return Figure2Result(result, goal, exact, instance_match)


@dataclass
class Figure3Result:
    """Figure 3: neighbourhoods of N2 (a, b) and its prefix tree of paths (c)."""

    neighborhood_2: Neighborhood
    zoom_delta: NeighborhoodDelta
    prefix_tree: PathPrefixTree
    highlighted: Optional[Tuple[str, ...]]

    def render(self) -> str:
        parts = [
            "Figure 3(a) — neighbourhood of N2 at distance 2",
            render_neighborhood_text(self.neighborhood_2),
            "",
            "Figure 3(b) — zoom to distance 3 (new elements marked)",
            render_zoom_text(self.zoom_delta),
            "",
            "Figure 3(c) — prefix tree of N2's uncovered paths (length ≤ 3)",
            render_prefix_tree_text(self.prefix_tree),
            "",
            f"highlighted candidate: {'.'.join(self.highlighted) if self.highlighted else '(none)'}",
        ]
        return "\n".join(parts)


def figure3(*, negatives: Tuple[str, ...] = ("N5",)) -> Figure3Result:
    """Build the three artefacts of Figure 3 for node N2.

    The radius-2 fragment and the zoom to radius 3 share one BFS through
    the graph's :class:`~repro.graph.neighborhood.NeighborhoodIndex`.
    """
    graph = motivating_example()
    index = default_workspace().neighborhoods(graph)
    neighborhood_2 = index.neighborhood("N2", 2)
    delta = index.zoom(neighborhood_2)
    tree = candidate_prefix_tree(
        graph, "N2", negatives, max_length=3, preferred_length=3
    )
    return Figure3Result(
        neighborhood_2=neighborhood_2,
        zoom_delta=delta,
        prefix_tree=tree,
        highlighted=tree.highlighted_word(),
    )


def all_figures() -> Dict[str, str]:
    """Render every figure (used by the documentation generator and benches)."""
    return {
        "figure1": figure1().render(),
        "figure2": figure2().render(),
        "figure3": figure3().render(),
    }
