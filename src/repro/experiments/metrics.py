"""Result tables and aggregation helpers for the experiment harness.

Experiments produce lists of flat dictionaries (rows).  :class:`ResultTable`
renders them as aligned text tables (what the benchmark scripts print and
what EXPERIMENTS.md records) and offers simple group-by aggregation, which
is all the reproduction needs — no plotting dependencies.
"""

from __future__ import annotations

import json
from pathlib import Path
from statistics import mean, median
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

__all__ = [
    "Row",
    "ResultTable",
    "fraction_true",
    "percentile",
    "latency_summary",
    "AGGREGATORS",
]

Row = Dict[str, object]


class ResultTable:
    """An ordered collection of rows with aligned-text rendering."""

    def __init__(self, title: str, rows: Optional[Iterable[Row]] = None):
        self.title = title
        self.rows: List[Row] = list(rows or [])

    def add(self, **row: object) -> None:
        """Append a row."""
        self.rows.append(row)

    def extend(self, rows: Iterable[Row]) -> None:
        """Append several rows."""
        self.rows.extend(rows)

    def columns(self) -> List[str]:
        """Column names in first-seen order."""
        seen: Dict[str, None] = {}
        for row in self.rows:
            for key in row:
                seen.setdefault(key, None)
        return list(seen)

    def render(self) -> str:
        """Aligned plain-text rendering (markdown-ish pipes)."""
        columns = self.columns()
        if not columns:
            return f"== {self.title} ==\n(empty)"
        formatted: List[List[str]] = [[_format_cell(row.get(column, "")) for column in columns] for row in self.rows]
        widths = [
            max(len(column), *(len(line[index]) for line in formatted)) if formatted else len(column)
            for index, column in enumerate(columns)
        ]
        header = " | ".join(column.ljust(widths[index]) for index, column in enumerate(columns))
        separator = "-+-".join("-" * width for width in widths)
        body = [
            " | ".join(line[index].ljust(widths[index]) for index in range(len(columns)))
            for line in formatted
        ]
        return "\n".join([f"== {self.title} ==", header, separator, *body])

    def to_json(self) -> str:
        """JSON rendering (used to archive experiment outputs)."""
        return json.dumps({"title": self.title, "rows": self.rows}, indent=2, default=str)

    def save(self, path: Union[str, Path]) -> None:
        """Write the JSON rendering to ``path``."""
        Path(path).write_text(self.to_json())

    def group_by(
        self,
        keys: Sequence[str],
        aggregations: Dict[str, Callable[[List[float]], float]],
    ) -> "ResultTable":
        """Group rows by ``keys`` and aggregate numeric columns.

        ``aggregations`` maps column name -> reducer (e.g. ``mean``).
        """
        grouped: Dict[tuple, List[Row]] = {}
        for row in self.rows:
            group_key = tuple(row.get(key) for key in keys)
            grouped.setdefault(group_key, []).append(row)
        result = ResultTable(f"{self.title} (grouped by {', '.join(keys)})")
        for group_key, rows in grouped.items():
            aggregated: Row = dict(zip(keys, group_key))
            aggregated["count"] = len(rows)
            for column, reducer in aggregations.items():
                values = [float(row[column]) for row in rows if _is_number(row.get(column))]
                aggregated[column] = round(reducer(values), 4) if values else None
            result.add(**aggregated)
        return result

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


def _is_number(value: object) -> bool:
    if isinstance(value, bool):
        return True
    return isinstance(value, (int, float))


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def fraction_true(values: List[float]) -> float:
    """Reducer: fraction of truthy values (for boolean columns like ``exact_goal``)."""
    if not values:
        return 0.0
    return sum(1.0 for value in values if value) / len(values)


def percentile(values: Sequence[float], fraction: float) -> float:
    """The ``fraction``-quantile of ``values`` by linear interpolation.

    ``fraction`` is in ``[0, 1]`` (0.5 = median, 0.95 = p95).  Matches
    ``statistics.quantiles(..., method='inclusive')`` at the common cut
    points while accepting any fraction and any non-empty sample size.
    """
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    weight = rank - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


def latency_summary(latencies: Sequence[float]) -> Dict[str, float]:
    """p50 / p95 / max of a per-interaction latency sample (empty-safe)."""
    if not latencies:
        return {"p50_seconds": 0.0, "p95_seconds": 0.0, "max_seconds": 0.0}
    return {
        "p50_seconds": round(percentile(latencies, 0.50), 4),
        "p95_seconds": round(percentile(latencies, 0.95), 4),
        "max_seconds": round(max(latencies), 4),
    }


#: Reducers re-exported for convenience in benchmark scripts.
AGGREGATORS: Dict[str, Callable[[List[float]], float]] = {
    "mean": mean,
    "median": median,
    "min": min,
    "max": max,
    "fraction_true": fraction_true,
}
