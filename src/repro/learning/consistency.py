"""Consistency of queries with example sets.

A query ``q`` is *consistent* with an example set ``S`` on a graph ``G``
when ``q`` selects every positive node of ``S`` and no negative node
(Section 2: "q is consistent with the user's examples because q selects
all positive examples and none of the negative ones").  When validated
words are present, consistency additionally requires the query language to
contain each validated word — this is what distinguishes "specifying" the
goal query from merely "learning" a consistent one (Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple, Union

from repro.automata.dfa import DFA, symbol_sort_key
from repro.graph.labeled_graph import LabeledGraph, Node
from repro.learning.examples import ExampleSet, Word
from repro.query.engine import QueryEngine
from repro.query.rpq import PathQuery
from repro.regex.ast import Regex
from repro.serving.workspace import default_workspace

QueryLike = Union[str, Regex, PathQuery, DFA]


@dataclass(frozen=True)
class ConsistencyReport:
    """Detailed outcome of a consistency check."""

    consistent: bool
    missed_positives: FrozenSet[Node] = frozenset()
    covered_negatives: FrozenSet[Node] = frozenset()
    rejected_words: Tuple[Word, ...] = ()

    def explain(self) -> str:
        """Human-readable explanation (used by the console front-end)."""
        if self.consistent:
            return "query is consistent with all examples"
        parts = []
        if self.missed_positives:
            parts.append(f"misses positive nodes {sorted(self.missed_positives, key=str)}")
        if self.covered_negatives:
            parts.append(f"selects negative nodes {sorted(self.covered_negatives, key=str)}")
        if self.rejected_words:
            rendered = [".".join(word) for word in self.rejected_words]
            parts.append(f"rejects validated paths {rendered}")
        return "query is inconsistent: " + "; ".join(parts)


def check_consistency(
    graph: LabeledGraph,
    query: QueryLike,
    examples: ExampleSet,
    *,
    engine: Optional[QueryEngine] = None,
) -> ConsistencyReport:
    """Full consistency check of ``query`` against ``examples`` on ``graph``.

    The answer set is computed through ``engine`` (default: the shared
    engine), so checking the same hypothesis repeatedly — as the
    interactive loop does after every label — hits the answer cache.
    """
    if isinstance(query, PathQuery):
        dfa = query.dfa
    elif isinstance(query, DFA):
        dfa = query
    else:
        query = PathQuery(query)
        dfa = query.dfa

    answer = (engine or default_workspace().engine).evaluate(graph, query)
    missed = frozenset(node for node in examples.positive_nodes if node not in answer)
    covered = frozenset(node for node in examples.negative_nodes if node in answer)
    rejected = tuple(
        word
        for word in sorted(
            examples.validated_words().values(),
            key=lambda word: tuple(symbol_sort_key(symbol) for symbol in word),
        )
        if not dfa.accepts(word)
    )
    return ConsistencyReport(
        consistent=not missed and not covered and not rejected,
        missed_positives=missed,
        covered_negatives=covered,
        rejected_words=rejected,
    )


def is_consistent(
    graph: LabeledGraph,
    query: QueryLike,
    examples: ExampleSet,
    *,
    engine: Optional[QueryEngine] = None,
) -> bool:
    """Boolean shortcut for :func:`check_consistency`."""
    return check_consistency(graph, query, examples, engine=engine).consistent


def examples_admit_query(graph: LabeledGraph, examples: ExampleSet, *, max_path_length: int) -> bool:
    """True when *some* query consistent with ``examples`` can exist.

    A sufficient and necessary condition under the paper's semantics: every
    positive node must have at least one word (of any length; we search up
    to ``max_path_length``) that no negative node can spell — otherwise any
    query selecting the positive necessarily selects a negative too.
    """
    from repro.learning.path_selection import consistent_words_for

    for node in examples.positive_nodes:
        if not consistent_words_for(graph, node, examples.negative_nodes, max_length=max_path_length, limit=1):
            return False
    return True
