"""Step (i) of the learning algorithm: choosing a path per positive node.

For each positive example the learner needs "a path that is not covered by
any negative" — a word the positive node can spell but **no** negative
node can.  (If a negative node could spell it too, any query accepting the
word would select that negative node and become inconsistent.)

The same machinery powers the path-validation interaction of Figure 3(c):
the system builds all uncovered words of the node up to the size of the
last neighbourhood the user looked at, arranges them in a prefix tree,
and highlights a candidate word — preferring words whose length equals the
neighbourhood radius the user needed before deciding (the paper's
heuristic: if she zoomed to distance 3, a length-3 path likely matters).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.automata.prefix_tree import PathPrefixTree, build_path_prefix_tree
from repro.exceptions import NoConsistentPathError
from repro.graph.labeled_graph import LabeledGraph, Node
from repro.graph.paths import has_word
from repro.learning.language_index import LanguageIndex

Word = Tuple[str, ...]


def _resolve_index(
    graph: LabeledGraph, max_length: int, index: Optional[LanguageIndex]
) -> LanguageIndex:
    """Use the caller's ``index`` when it matches this snapshot, else the shared one.

    Workspace-backed callers (the learner, the session loop) pass their
    workspace's index so these helpers never touch the module registry;
    index-less calls keep the legacy behaviour.
    """
    if (
        index is not None
        and index.version == graph.version
        and index.max_length == max_length
    ):
        return index
    # lazy: the workspace's import closure includes this module
    from repro.serving.workspace import default_workspace

    return default_workspace().language_index(graph, max_length)


def covered_words(
    graph: LabeledGraph,
    negatives: Iterable[Node],
    max_length: int,
    *,
    index: Optional[LanguageIndex] = None,
) -> Set[Word]:
    """The union of the bounded path languages of the negative nodes.

    A word in this set is "covered by a negative": making the hypothesis
    accept it would select a negative node.

    Every negative must be a node of ``graph``; an unknown node raises
    :class:`NodeNotFoundError`, consistent with
    :func:`repro.graph.paths.words_from`.  (Earlier versions silently
    skipped unknown negatives, which let a typo in an example set shrink
    the cover — and therefore weaken pruning and path selection — without
    any signal.)  Callers with speculative negative sets must pre-filter,
    as :func:`consistent_words_for` does.
    """
    index = _resolve_index(graph, max_length, index)
    bits = 0
    for node in negatives:
        bits |= index.language(node)  # raises NodeNotFoundError when absent
    return index.decode(bits)


def consistent_words_for(
    graph: LabeledGraph,
    node: Node,
    negatives: Iterable[Node],
    *,
    max_length: int,
    limit: Optional[int] = None,
    index: Optional[LanguageIndex] = None,
) -> List[Word]:
    """Words of ``node`` (length ≤ ``max_length``) covered by no negative.

    Returned shortest-first, ties broken lexicographically, so the first
    element is the learner's default candidate.

    The empty word is offered as a last resort only when the node has no
    non-empty uncovered word *and* there is no negative example: every node
    spells the empty word, so a query accepting it selects the whole graph,
    which is consistent only while no node is labelled negative.  (This is
    what makes a sink node a legal positive example in an otherwise
    negative-free example set.)
    """
    negative_nodes = [item for item in negatives if item in graph]
    index = _resolve_index(graph, max_length, index)
    banned = index.cover(negative_nodes)
    uncovered = index.language(node) & ~banned
    if limit is not None and limit <= 0:
        return []
    if limit == 1:
        # the consistency checker probes per-positive non-emptiness this
        # way; pick_word reads the answer off the bitset without decoding
        # (and sorting) the node's whole uncovered language
        word = index.pick_word(uncovered)
        if word is not None:
            return [word]
        return [()] if not negative_nodes else []
    candidates = sorted(index.decode(uncovered), key=lambda word: (len(word), word))
    if not candidates and not negative_nodes:
        candidates = [()]
    if limit is not None:
        return candidates[:limit]
    return candidates


def select_path(
    graph: LabeledGraph,
    node: Node,
    negatives: Iterable[Node],
    *,
    max_length: int,
    preferred_length: Optional[int] = None,
    cover_bits: Optional[int] = None,
    index: Optional[LanguageIndex] = None,
) -> Word:
    """Pick the candidate word for a positive node.

    Default choice is the shortest uncovered word; when
    ``preferred_length`` is given (the radius of the last neighbourhood the
    user inspected), words of exactly that length are preferred, matching
    the heuristic the paper uses to pre-highlight a path in Figure 3(c).

    ``cover_bits`` optionally passes a precomputed negative-cover bitset
    (``workspace.language_index(graph, max_length).cover(...)``) so callers
    selecting words for many positive nodes — the learner's step (i) —
    derive the cover once instead of once per node.

    Raises :class:`NoConsistentPathError` when every word of the node up to
    ``max_length`` is covered by a negative.
    """
    negative_nodes = [item for item in negatives if item in graph]
    index = _resolve_index(graph, max_length, index)
    if cover_bits is None:
        cover_bits = index.cover(negative_nodes)
    uncovered = index.language(node) & ~cover_bits
    word = index.pick_word(uncovered, preferred_length)
    if word is not None:
        return word
    if not negative_nodes:
        return ()  # the empty-word fallback of consistent_words_for
    raise NoConsistentPathError(node, max_length)


def candidate_prefix_tree(
    graph: LabeledGraph,
    node: Node,
    negatives: Iterable[Node],
    *,
    max_length: int,
    preferred_length: Optional[int] = None,
    index: Optional[LanguageIndex] = None,
) -> PathPrefixTree:
    """The prefix tree of uncovered words of ``node``, candidate highlighted.

    This is exactly the artefact shown to the user in Figure 3(c): all
    paths of the node of length at most the last neighbourhood size that
    are not yet covered by negative examples, presented as a prefix tree
    with the system's best guess highlighted.
    """
    uncovered = consistent_words_for(
        graph, node, negatives, max_length=max_length, index=index
    )
    endpoints: Dict[Word, Tuple] = {}
    for word in uncovered:
        # record the graph nodes reachable by spelling each prefix of the word
        for cut in range(1, len(word) + 1):
            prefix = word[:cut]
            if prefix not in endpoints:
                endpoints[prefix] = _endpoints_of(graph, node, prefix)
    highlight: Optional[Word] = None
    if uncovered:
        if preferred_length is not None:
            preferred = [word for word in uncovered if len(word) == preferred_length]
            highlight = preferred[0] if preferred else uncovered[0]
        else:
            highlight = uncovered[0]
    return build_path_prefix_tree(endpoints, node, highlight=highlight)


def _endpoints_of(graph: LabeledGraph, start: Node, word: Sequence[str]) -> Tuple:
    """Graph nodes reachable from ``start`` by spelling ``word`` (sorted)."""
    current = {start}
    for label in word:
        following: Set[Node] = set()
        # repro-lint: disable=REP104 -- only set unions happen per node; the result is sorted on return
        for node in current:
            following.update(graph.successors(node, label))
        current = following
        if not current:
            return ()
    return tuple(sorted(current, key=str))


def validate_word(
    graph: LabeledGraph,
    node: Node,
    word: Sequence[str],
    negatives: Iterable[Node],
    *,
    max_length: int,
    index: Optional[LanguageIndex] = None,
) -> bool:
    """Check that ``word`` is a legal validation answer for ``node``.

    The word must be spellable from the node and not covered by any
    negative example (the interactive UI only offers such words, but the
    programmatic API re-checks before trusting a caller).  Negatives
    absent from the graph are ignored, like in
    :func:`consistent_words_for` — this function validates caller input,
    so a speculative negative set must not turn the check into an error.
    """
    if not has_word(graph, node, word):
        return False
    if len(word) > max_length:
        return False
    index = _resolve_index(graph, max_length, index)
    banned = index.cover(node for node in negatives if node in graph)
    word_id = index.arena.lookup(word)
    return word_id is None or not (banned >> word_id) & 1
