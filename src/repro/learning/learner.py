"""The two-step learning algorithm (Section 2 of the paper).

Given a graph and a set of positive / negative node examples (plus, when
available, the validated path of each positive node):

(i)  for each positive example, find a path (word) that is not covered by
     any negative example — the validated word when the user confirmed
     one, otherwise the shortest uncovered word;
(ii) construct an automaton recognising precisely those words (a prefix
     tree acceptor) and generalise it by state merges while no negative
     example is covered — i.e. while the hypothesis selects no negative
     node of the graph.

The result is wrapped as a :class:`~repro.query.rpq.PathQuery` whose
regular expression is synthesised from the learned DFA.

:class:`PathQueryLearner` keeps the graph and options; :func:`learn_query`
is a functional convenience wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.automata.dfa import DFA, word_sort_key
from repro.automata.state_merging import generalize_pta
from repro.exceptions import InconsistentExamplesError, NoConsistentPathError
from repro.graph.labeled_graph import LabeledGraph, Node
from repro.learning.consistency import ConsistencyReport, check_consistency
from repro.learning.examples import ExampleSet, Word
from repro.learning.language_index import CompatibilityOracle
from repro.learning.path_selection import select_path
from repro.query.engine import QueryEngine
from repro.query.rpq import PathQuery

#: Default bound on the length of candidate paths considered in step (i).
DEFAULT_MAX_PATH_LENGTH = 6


@dataclass
class LearningOutcome:
    """Everything the learner produced for one example set."""

    query: PathQuery
    dfa: DFA
    sample_words: Tuple[Word, ...]
    consistency: ConsistencyReport
    merges_allowed: bool = True

    @property
    def consistent(self) -> bool:
        """True when the learned query is consistent with the examples."""
        return self.consistency.consistent


class PathQueryLearner:
    """Learns a path query consistent with node examples on a fixed graph."""

    def __init__(
        self,
        graph: LabeledGraph,
        *,
        max_path_length: int = DEFAULT_MAX_PATH_LENGTH,
        generalize: bool = True,
        engine: Optional[QueryEngine] = None,
        compatibility: str = "indexed",
        workspace=None,
    ):
        self.graph = graph
        self.max_path_length = max_path_length
        #: when False the learner returns the ungeneralised disjunction of
        #: sample words (used by ablation experiments)
        self.generalize = generalize
        #: the GraphWorkspace providing the language index and canonical
        #: cache; defaults to the process workspace so standalone learners
        #: keep sharing state with everything else
        if workspace is None:
            from repro.serving.workspace import default_workspace

            workspace = default_workspace()
        self.workspace = workspace
        #: query engine used for consistency checks (and compatibility in
        #: ``"engine"`` mode); an explicit ``engine`` wins over the
        #: workspace's (ablation benchmarks isolate engines this way)
        self.engine = engine if engine is not None else workspace.engine
        if compatibility not in ("indexed", "engine"):
            raise ValueError(
                f"unknown compatibility mode {compatibility!r}; expected 'indexed' or 'engine'"
            )
        #: how merge candidates are checked against the negative examples:
        #: ``"indexed"`` (default) intersects each candidate DFA with the
        #: precompiled negative word-id cover of the shared language index
        #: (one graph product pass at most, shared by all negatives);
        #: ``"engine"`` re-walks the graph per negative per candidate —
        #: the pre-index behaviour, kept for ablations and benchmarks.
        #: Both modes accept and reject exactly the same candidates.
        self.compatibility = compatibility

    # ------------------------------------------------------------------
    # step (i): choose one uncovered word per positive node
    # ------------------------------------------------------------------
    def select_sample_words(self, examples: ExampleSet) -> Dict[Node, Word]:
        """Pick the sample word of every positive node.

        Validated words are honoured verbatim; for the remaining positive
        nodes the shortest uncovered word is selected.  Raises
        :class:`InconsistentExamplesError` when some positive node has no
        uncovered word at all (no consistent query exists within the
        length bound).
        """
        chosen: Dict[Node, Word] = {}
        graph = self.graph
        negatives = [node for node in examples.negative_nodes if node in graph]
        # one negative-cover bitset serves every positive node of this call
        # (select_path would otherwise re-derive it per positive)
        index = self.workspace.language_index(graph, self.max_path_length)
        banned = index.cover(negatives)
        for node in sorted(examples.positive_nodes, key=str):
            validated = examples.validated_word(node)
            if validated is not None:
                chosen[node] = validated
                continue
            try:
                chosen[node] = select_path(
                    graph,
                    node,
                    negatives,
                    max_length=self.max_path_length,
                    cover_bits=banned,
                    index=index,
                )
            except NoConsistentPathError as error:
                raise InconsistentExamplesError(
                    f"positive node {node!r} has no path uncovered by the negative examples "
                    f"(searched up to length {self.max_path_length})",
                    conflicting=[node],
                ) from error
        return chosen

    # ------------------------------------------------------------------
    # step (ii): PTA + state-merging generalisation
    # ------------------------------------------------------------------
    def _compatible(self, examples: ExampleSet):
        """Compatibility predicate: the hypothesis must select no negative node."""
        negatives = sorted(examples.negative_nodes, key=str)
        if self.compatibility == "indexed":
            oracle = CompatibilityOracle(
                self.graph,
                negatives,
                max_length=self.max_path_length,
                index=self.workspace.language_index(self.graph, self.max_path_length),
            )
            return oracle.compatible
        graph = self.graph
        selects = self.engine.selects

        def check(candidate: DFA) -> bool:
            return not any(selects(graph, candidate, node) for node in negatives)

        return check

    def learn(self, examples: ExampleSet) -> LearningOutcome:
        """Run both steps and return the learned query with diagnostics.

        With an empty positive set the learner returns the empty query
        (selects nothing), which is trivially consistent with any set of
        negative-only examples.
        """
        sample_words = self.select_sample_words(examples)
        words = tuple(
            sorted(set(sample_words.values()), key=lambda word: (len(word), word_sort_key(word)))
        )

        if not words:
            dfa = DFA(0)  # empty language
            query = PathQuery.from_dfa(dfa, name="empty", cache=self.workspace.canonical)
            report = check_consistency(self.graph, query, examples, engine=self.engine)
            return LearningOutcome(query, query.dfa, words, report, self.generalize)

        if self.generalize:
            learned = generalize_pta(words, self._compatible(examples))
        else:
            from repro.automata.prefix_tree import build_pta

            learned = build_pta(words)
        # from_dfa serves minimisation and regex synthesis from the
        # workspace's canonical-form cache, so re-learning an unchanged
        # hypothesis — the common case between interactions — does no
        # automata work
        query = PathQuery.from_dfa(learned, cache=self.workspace.canonical)
        report = check_consistency(self.graph, query, examples, engine=self.engine)
        return LearningOutcome(query, query.dfa, words, report, self.generalize)


def learn_query(
    graph: LabeledGraph,
    positive: Dict[Node, Optional[Word]] = None,
    negative: Optional[List[Node]] = None,
    *,
    max_path_length: int = DEFAULT_MAX_PATH_LENGTH,
    generalize: bool = True,
) -> PathQuery:
    """Functional one-shot API: learn a query from plain positive / negative lists.

    ``positive`` maps positive nodes to an optional validated word (pass
    ``None`` values when no path was validated); ``negative`` lists the
    negative nodes.
    """
    examples = ExampleSet()
    for node, word in (positive or {}).items():
        examples.add_positive(node, validated_word=word)
    for node in negative or []:
        examples.add_negative(node)
    learner = PathQueryLearner(graph, max_path_length=max_path_length, generalize=generalize)
    return learner.learn(examples).query
