"""Informativeness of nodes and pruning of uninformative ones.

"After each interaction, the system prunes the uninformative nodes i.e.,
those that do not add any information about the user's goal query."

Under the paper's semantics a node is **uninformative** when its label can
already be deduced from the current examples, so asking the user about it
would waste an interaction:

* every word of the node (up to the exploration bound) is covered by a
  negative node — no consistent query may select it, so its label is
  forced to negative (it brings no new constraint either way); or
* the node can spell one of the *validated* positive words — every query
  consistent with the validated paths necessarily selects it, so its
  label is forced to positive.

Nodes that are already labelled are trivially uninformative.  The
remaining nodes are *informative*; the strategies in
:mod:`repro.interactive.strategies` only ever propose informative nodes,
and rank them by an informativeness score: the number of short uncovered
words the node has (nodes with many uncovered short paths constrain the
learner the most).

Two implementations coexist:

* the **from-scratch** path (:func:`classify_node`,
  :func:`classify_all_scratch`) re-derives every word set per call — it
  is the readable reference and the oracle the incremental path is
  tested against;
* the **incremental** path (:class:`SessionClassifier`, served
  transparently through :func:`classify_all` /
  :func:`informative_nodes`) keeps per-node statuses up to date against
  the shared :class:`~repro.learning.language_index.LanguageIndex`
  bitsets and, after each new example, re-scores only the nodes whose
  status can actually change: a grown negative cover touches only nodes
  whose language intersects the *delta* bitset, a newly validated word
  only the nodes that can spell it, a new label only the labelled node.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple


from repro.exceptions import NodeNotFoundError
from repro.graph.labeled_graph import LabeledGraph, Node
from repro.graph.paths import words_from
from repro.learning.examples import ExampleSet, Word
from repro.learning.language_index import (
    LanguageIndex,
    iter_bits,
    popcount,
)
from repro.learning.path_selection import covered_words


def _workspace_language_index(graph: LabeledGraph, max_length: int) -> LanguageIndex:
    """Default index provider: the process workspace's build-once index.

    Imported lazily because :mod:`repro.serving.workspace` imports this
    module (the classifier is one of the structures it hosts).
    """
    from repro.serving.workspace import default_workspace

    return default_workspace().language_index(graph, max_length)


@dataclass(frozen=True)
class NodeStatus:
    """Classification of one node with respect to the current examples."""

    node: Node
    labeled: bool
    implied_positive: bool
    implied_negative: bool
    uncovered_word_count: int
    shortest_uncovered_length: Optional[int]

    @property
    def informative(self) -> bool:
        """True when asking the user about this node could add information."""
        return not (self.labeled or self.implied_positive or self.implied_negative)

    @property
    def score(self) -> Tuple[int, bool, int]:
        """Ranking key used by the most-informative strategy.

        Higher is better: many uncovered words first, then shorter
        shortest-uncovered word.  The middle component makes the absence
        of an uncovered word self-describing — ``(count, False, 0)``
        sorts below any node that still has one — instead of encoding
        ``None`` as a magic sentinel length.
        """
        shortest = self.shortest_uncovered_length
        if shortest is None:
            return (self.uncovered_word_count, False, 0)
        return (self.uncovered_word_count, True, -shortest)


def classify_node(
    graph: LabeledGraph,
    node: Node,
    examples: ExampleSet,
    *,
    max_length: int,
    banned: Optional[Set[Word]] = None,
    validated: Optional[Set[Word]] = None,
) -> NodeStatus:
    """Compute the :class:`NodeStatus` of ``node`` from scratch.

    ``banned`` (words covered by negatives) and ``validated`` (validated
    positive words) can be precomputed by the caller when classifying many
    nodes against the same example set.
    """
    if banned is None:
        banned = covered_words(graph, examples.negative_nodes, max_length)
    if validated is None:
        validated = set(examples.validated_words().values())

    labeled = node in examples.labeled_nodes
    own_words = words_from(graph, node, max_length)
    uncovered = [word for word in own_words if word not in banned]
    implied_positive = not labeled and any(word in validated for word in own_words)
    implied_negative = not labeled and not implied_positive and not uncovered
    shortest = min((len(word) for word in uncovered), default=None)
    return NodeStatus(
        node=node,
        labeled=labeled,
        implied_positive=implied_positive,
        implied_negative=implied_negative,
        uncovered_word_count=len(uncovered),
        shortest_uncovered_length=shortest,
    )


def classify_all_scratch(
    graph: LabeledGraph,
    examples: ExampleSet,
    *,
    max_length: int,
    candidates: Optional[Iterable[Node]] = None,
) -> Dict[Node, NodeStatus]:
    """Classify every node (or just ``candidates``) by full recomputation.

    This is the pre-index reference implementation; it is kept as the
    oracle that :class:`SessionClassifier` is verified against (and as
    the baseline of ``benchmarks/bench_session_loop.py``).
    """
    banned = covered_words(graph, examples.negative_nodes, max_length)
    validated = set(examples.validated_words().values())
    pool = candidates if candidates is not None else graph.nodes()
    return {
        node: classify_node(
            graph, node, examples, max_length=max_length, banned=banned, validated=validated
        )
        for node in pool
    }


def _ranked_informative(statuses: Iterable[NodeStatus]) -> List[Node]:
    """Informative nodes by decreasing score, ties by node id ascending.

    The single home of the ranking contract shared by
    :meth:`SessionClassifier.informative` and :func:`informative_nodes`.
    """
    ranked = [status for status in statuses if status.informative]
    ranked.sort(key=lambda status: (status.score, str(status.node)), reverse=False)
    ranked.sort(key=lambda status: status.score, reverse=True)
    return [status.node for status in ranked]


class SessionClassifier:
    """Incrementally maintained node statuses for one evolving example set.

    The classifier snapshots the example set it last saw; every public
    accessor first calls :meth:`refresh`, which diffs the current
    examples against that snapshot and applies only the consequences of
    the *new* examples:

    * **cover growth** (new negative): only nodes whose language bitset
      intersects the newly covered word ids are re-scored;
    * **new validated word**: only the nodes able to spell it can flip to
      implied-positive;
    * **new label**: only the labelled node changes (to ``labeled``).

    Example sets only ever grow during a session, so these deltas are the
    common case; any non-monotone change (a replaced validated word, a
    mutated graph) is detected and answered with a full rebuild, which
    keeps the classifier exactly equivalent to
    :func:`classify_all_scratch` at all times — the property-style tests
    in ``tests/learning/test_language_index.py`` pin this.
    """

    def __init__(
        self,
        graph: LabeledGraph,
        examples: ExampleSet,
        *,
        max_length: int,
        index_provider=None,
    ):
        self.graph = graph
        # held weakly: the shared-classifier registry keys on the example
        # set, so a strong reference here would pin the key (and with it
        # the classifier, the graph and its language index) forever
        self._examples_ref = weakref.ref(examples)
        self.max_length = max_length
        #: ``(graph, max_length) -> LanguageIndex`` — a GraphWorkspace
        #: threads its own accessor here so index (re)builds go through
        #: the workspace's build-once locks and accounting
        self._index_provider = (
            index_provider if index_provider is not None else _workspace_language_index
        )
        self._index: Optional[LanguageIndex] = None
        self._statuses: Dict[Node, NodeStatus] = {}
        self._cover = 0
        self._validated_bits = 0
        self._negatives: FrozenSet[Node] = frozenset()
        self._validated: Dict[Node, Word] = {}
        self._labeled: FrozenSet[Node] = frozenset()
        self._rebuild()

    @property
    def examples(self) -> ExampleSet:
        """The example set this classifier tracks."""
        examples = self._examples_ref()
        if examples is None:
            raise RuntimeError("the classified ExampleSet has been garbage-collected")
        return examples

    @property
    def index(self) -> LanguageIndex:
        """The language index backing the current statuses."""
        return self._index

    # ------------------------------------------------------------------
    # state maintenance
    # ------------------------------------------------------------------
    def _snapshot(self) -> None:
        self._negatives = self.examples.negative_nodes
        self._validated = dict(self.examples.validated_words())
        self._labeled = self.examples.labeled_nodes

    def _status_of(
        self, node: Node, language: int, cover: int, validated_bits: int, labeled: FrozenSet[Node]
    ) -> NodeStatus:
        uncovered = language & ~cover
        count = popcount(uncovered)
        shortest = self._index.shortest_length(uncovered)
        is_labeled = node in labeled
        implied_positive = not is_labeled and bool(language & validated_bits)
        implied_negative = not is_labeled and not implied_positive and count == 0
        return NodeStatus(
            node=node,
            labeled=is_labeled,
            implied_positive=implied_positive,
            implied_negative=implied_negative,
            uncovered_word_count=count,
            shortest_uncovered_length=shortest,
        )

    def _rebuild(self) -> None:
        self._index = self._index_provider(self.graph, self.max_length)
        index = self._index
        self._snapshot()
        cover = index.cover(self._negatives)
        validated_bits = index.words_bitset(self._validated.values())
        labeled = self._labeled
        self._cover = cover
        self._validated_bits = validated_bits
        self._statuses = {
            node: self._status_of(node, index.language(node), cover, validated_bits, labeled)
            for node in index.nodes
        }

    def refresh(self) -> None:
        """Bring the statuses up to date with the examples and the graph."""
        index = self._index
        if index is None or index.version != self.graph.version:
            self._rebuild()
            return
        examples = self.examples
        negatives = examples.negative_nodes
        validated = examples.validated_words()
        labeled = examples.labeled_nodes
        if not (negatives >= self._negatives and labeled >= self._labeled):
            self._rebuild()  # labels were removed: not a session flow
            return
        for node, word in self._validated.items():
            if validated.get(node) != word:
                self._rebuild()  # a validated word was replaced
                return
        new_negatives = negatives - self._negatives
        new_validated = [word for node, word in validated.items() if node not in self._validated]
        new_labeled = labeled - self._labeled
        if not (new_negatives or new_validated or new_labeled):
            return

        cover = self._cover
        if new_negatives:
            cover |= index.cover(new_negatives)
        cover_delta = cover & ~self._cover
        validated_bits = self._validated_bits | index.words_bitset(new_validated)
        validated_delta = validated_bits & ~self._validated_bits

        statuses = self._statuses
        language_of = index.language
        if cover_delta:
            # a grown cover can re-score any node whose language meets the
            # delta — one bit-and per node finds them
            for node in index.nodes:
                language = language_of(node)
                if (language & cover_delta) or (language & validated_delta) or node in new_labeled:
                    statuses[node] = self._status_of(node, language, cover, validated_bits, labeled)
        else:
            # no cover change: only the nodes spelling a newly validated
            # word and the newly labelled nodes can differ
            speller_bits = 0
            for word_id in iter_bits(validated_delta):
                speller_bits |= index.spellers(word_id)
            # dedup in first-seen order (dict, not set) so status dict
            # insertion order stays reproducible across processes
            affected = dict.fromkeys(index.nodes_of(speller_bits))
            # labelled nodes absent from the graph classify nothing (the
            # scratch path never visits them either)
            affected.update(dict.fromkeys(node for node in new_labeled if node in index))
            for node in affected:
                statuses[node] = self._status_of(
                    node, language_of(node), cover, validated_bits, labeled
                )
        self._cover = cover
        self._validated_bits = validated_bits
        self._snapshot()

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def statuses(self) -> Dict[Node, NodeStatus]:
        """Current classification of every node (a fresh dict snapshot)."""
        self.refresh()
        return dict(self._statuses)

    def informative(self) -> List[Node]:
        """Informative nodes sorted by decreasing score (ties by node id)."""
        self.refresh()
        return _ranked_informative(self._statuses.values())

    def informative_count(self) -> int:
        """Number of informative nodes remaining."""
        self.refresh()
        return sum(1 for status in self._statuses.values() if status.informative)

    def __repr__(self) -> str:
        return (
            f"<SessionClassifier bound={self.max_length} "
            f"{len(self._statuses)} nodes, cover={popcount(self._cover)} words>"
        )


def _workspace_classifier(
    graph: LabeledGraph, examples: ExampleSet, *, max_length: int
) -> SessionClassifier:
    from repro.serving.workspace import default_workspace

    return default_workspace().classifier(graph, examples, max_length=max_length)


def _resolve_classifier(
    graph: LabeledGraph,
    examples: ExampleSet,
    max_length: int,
    classifier: Optional[SessionClassifier],
) -> SessionClassifier:
    """Use ``classifier`` when it tracks exactly this triple, else the registry."""
    if (
        classifier is not None
        and classifier.graph is graph
        and classifier.max_length == max_length
        and classifier._examples_ref() is examples
    ):
        return classifier
    return _workspace_classifier(graph, examples, max_length=max_length)


def classify_all(
    graph: LabeledGraph,
    examples: ExampleSet,
    *,
    max_length: int,
    candidates: Optional[Iterable[Node]] = None,
    classifier: Optional[SessionClassifier] = None,
) -> Dict[Node, NodeStatus]:
    """Classify every node (or just ``candidates``) against the examples.

    Served from the shared incremental :class:`SessionClassifier` of
    ``(graph, examples, max_length)``: the first call per example set
    builds the language index, subsequent calls only re-derive what the
    newest examples changed.  Results are identical to
    :func:`classify_all_scratch`.  Callers holding the session's
    classifier (a workspace-backed loop) pass it via ``classifier`` so
    no module-level registry is consulted.
    """
    statuses = _resolve_classifier(graph, examples, max_length, classifier).statuses()
    if candidates is None:
        return statuses
    restricted: Dict[Node, NodeStatus] = {}
    for node in candidates:
        status = statuses.get(node)
        if status is None:
            raise NodeNotFoundError(node)
        restricted[node] = status
    return restricted


def informative_nodes(
    graph: LabeledGraph,
    examples: ExampleSet,
    *,
    max_length: int,
    candidates: Optional[Iterable[Node]] = None,
    classifier: Optional[SessionClassifier] = None,
) -> List[Node]:
    """The informative nodes, sorted by decreasing informativeness score.

    Ties are broken by node identifier so the ordering is deterministic.
    """
    if candidates is None:
        return _resolve_classifier(graph, examples, max_length, classifier).informative()
    statuses = classify_all(
        graph, examples, max_length=max_length, candidates=candidates, classifier=classifier
    )
    return _ranked_informative(statuses.values())


def pruned_nodes(
    graph: LabeledGraph,
    examples: ExampleSet,
    *,
    max_length: int,
) -> FrozenSet[Node]:
    """Unlabelled nodes whose label is already implied (the pruned set).

    The size of this set after each interaction is the quantity tracked by
    experiment E2 (pruning effectiveness).
    """
    statuses = classify_all(graph, examples, max_length=max_length)
    return frozenset(
        node
        for node, status in statuses.items()
        if not status.labeled and (status.implied_positive or status.implied_negative)
    )


def pruning_fraction(
    graph: LabeledGraph,
    examples: ExampleSet,
    *,
    max_length: int,
) -> float:
    """Fraction of unlabelled nodes that are pruned (0.0 when all nodes are labelled)."""
    unlabeled = [node for node in graph.nodes() if node not in examples.labeled_nodes]
    if not unlabeled:
        return 0.0
    pruned = pruned_nodes(graph, examples, max_length=max_length)
    return len(pruned) / len(unlabeled)
