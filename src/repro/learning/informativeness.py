"""Informativeness of nodes and pruning of uninformative ones.

"After each interaction, the system prunes the uninformative nodes i.e.,
those that do not add any information about the user's goal query."

Under the paper's semantics a node is **uninformative** when its label can
already be deduced from the current examples, so asking the user about it
would waste an interaction:

* every word of the node (up to the exploration bound) is covered by a
  negative node — no consistent query may select it, so its label is
  forced to negative (it brings no new constraint either way); or
* the node can spell one of the *validated* positive words — every query
  consistent with the validated paths necessarily selects it, so its
  label is forced to positive.

Nodes that are already labelled are trivially uninformative.  The
remaining nodes are *informative*; the strategies in
:mod:`repro.interactive.strategies` only ever propose informative nodes,
and rank them by an informativeness score: the number of short uncovered
words the node has (nodes with many uncovered short paths constrain the
learner the most).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.graph.labeled_graph import LabeledGraph, Node
from repro.graph.paths import words_from
from repro.learning.examples import ExampleSet, Word
from repro.learning.path_selection import covered_words


@dataclass(frozen=True)
class NodeStatus:
    """Classification of one node with respect to the current examples."""

    node: Node
    labeled: bool
    implied_positive: bool
    implied_negative: bool
    uncovered_word_count: int
    shortest_uncovered_length: Optional[int]

    @property
    def informative(self) -> bool:
        """True when asking the user about this node could add information."""
        return not (self.labeled or self.implied_positive or self.implied_negative)

    @property
    def score(self) -> Tuple[int, int]:
        """Ranking key used by the most-informative strategy.

        Higher is better: many uncovered words, and short ones first (the
        second component is negated length so that shorter is larger).
        """
        shortest = self.shortest_uncovered_length
        return (self.uncovered_word_count, -(shortest if shortest is not None else 1 << 30))


def classify_node(
    graph: LabeledGraph,
    node: Node,
    examples: ExampleSet,
    *,
    max_length: int,
    banned: Optional[Set[Word]] = None,
    validated: Optional[Set[Word]] = None,
) -> NodeStatus:
    """Compute the :class:`NodeStatus` of ``node``.

    ``banned`` (words covered by negatives) and ``validated`` (validated
    positive words) can be precomputed by the caller when classifying many
    nodes against the same example set.
    """
    if banned is None:
        banned = covered_words(graph, examples.negative_nodes, max_length)
    if validated is None:
        validated = set(examples.validated_words().values())

    labeled = node in examples.labeled_nodes
    own_words = words_from(graph, node, max_length)
    uncovered = [word for word in own_words if word not in banned]
    implied_positive = not labeled and any(word in validated for word in own_words)
    implied_negative = not labeled and not implied_positive and not uncovered
    shortest = min((len(word) for word in uncovered), default=None)
    return NodeStatus(
        node=node,
        labeled=labeled,
        implied_positive=implied_positive,
        implied_negative=implied_negative,
        uncovered_word_count=len(uncovered),
        shortest_uncovered_length=shortest,
    )


def classify_all(
    graph: LabeledGraph,
    examples: ExampleSet,
    *,
    max_length: int,
    candidates: Optional[Iterable[Node]] = None,
) -> Dict[Node, NodeStatus]:
    """Classify every node (or just ``candidates``) in one pass."""
    banned = covered_words(graph, examples.negative_nodes, max_length)
    validated = set(examples.validated_words().values())
    pool = candidates if candidates is not None else graph.nodes()
    return {
        node: classify_node(
            graph, node, examples, max_length=max_length, banned=banned, validated=validated
        )
        for node in pool
    }


def informative_nodes(
    graph: LabeledGraph,
    examples: ExampleSet,
    *,
    max_length: int,
    candidates: Optional[Iterable[Node]] = None,
) -> List[Node]:
    """The informative nodes, sorted by decreasing informativeness score.

    Ties are broken by node identifier so the ordering is deterministic.
    """
    statuses = classify_all(graph, examples, max_length=max_length, candidates=candidates)
    ranked = [status for status in statuses.values() if status.informative]
    ranked.sort(key=lambda status: (status.score, str(status.node)), reverse=False)
    ranked.sort(key=lambda status: status.score, reverse=True)
    return [status.node for status in ranked]


def pruned_nodes(
    graph: LabeledGraph,
    examples: ExampleSet,
    *,
    max_length: int,
) -> FrozenSet[Node]:
    """Unlabelled nodes whose label is already implied (the pruned set).

    The size of this set after each interaction is the quantity tracked by
    experiment E2 (pruning effectiveness).
    """
    statuses = classify_all(graph, examples, max_length=max_length)
    return frozenset(
        node
        for node, status in statuses.items()
        if not status.labeled and (status.implied_positive or status.implied_negative)
    )


def pruning_fraction(
    graph: LabeledGraph,
    examples: ExampleSet,
    *,
    max_length: int,
) -> float:
    """Fraction of unlabelled nodes that are pruned (0.0 when all nodes are labelled)."""
    unlabeled = [node for node in graph.nodes() if node not in examples.labeled_nodes]
    if not unlabeled:
        return 0.0
    pruned = pruned_nodes(graph, examples, max_length=max_length)
    return len(pruned) / len(unlabeled)
