"""Bounded path-language index: interned words, bitset languages, merge oracle.

The interactive loop reasons about the *bounded path language* of every
node — the set of distinct label words of length at most ``max_length``
spellable from it — over and over: informativeness classification,
pruning, propagation, path selection and the RPNI compatibility check all
re-derive (unions of) these sets after every user answer.  The paper's
requirement that the system be "time-efficient between interactions"
makes this the hottest loop in the repository.

This module computes each language **once** per ``(graph.version,
max_length)`` pair and re-represents it so that everything downstream is
constant-factor bit arithmetic:

* :class:`PrefixIdArena` — a shared trie interning every word into a
  dense integer id; a word's id is created by extending its longest
  proper prefix's id by one label, so the arena *is* the prefix tree of
  the union of all node languages.
* :class:`LanguageIndex` — per-node languages and per-word speller sets
  as plain Python ints used as **bitsets** (bit ``i`` set ⇔ word id /
  node position ``i`` in the set).  Coverage ("is every word of this node
  covered by a negative?"), informativeness scoring and uncovered-word
  counting become ``&``/``|``/``popcount`` over machine words instead of
  set unions of label tuples.
* :class:`CompatibilityOracle` — the learner's "candidate hypothesis
  selects no negative node" predicate, answered by intersecting the
  candidate DFA with the arena trie restricted to the precompiled
  negative cover bitset (with an exact graph-product fallback for
  candidates that accept words longer than the bound), instead of one
  graph product walk per negative per merge attempt.

Indexes are value snapshots in the same sense as
:class:`repro.graph.labeled_graph.GraphLabelIndex`: they record the
graph :attr:`~repro.graph.labeled_graph.LabeledGraph.version` they were
built against and :meth:`repro.serving.workspace.GraphWorkspace.language_index`
rebuilds them lazily when the graph mutates, so callers can never
observe stale languages.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.automata.dfa import DFA
from repro.exceptions import NodeNotFoundError
from repro.graph.labeled_graph import Label, LabeledGraph, Node

Word = Tuple[Label, ...]

__all__ = [
    "PrefixIdArena",
    "LanguageIndex",
    "CompatibilityOracle",
    "popcount",
    "iter_bits",
]


def _popcount_native(bits: int) -> int:
    return bits.bit_count()


def _popcount_portable(bits: int) -> int:
    return bin(bits).count("1")


#: Number of set bits of a non-negative int (``int.bit_count`` needs 3.10).
popcount = _popcount_native if hasattr(int, "bit_count") else _popcount_portable


def iter_bits(bits: int) -> Iterator[int]:
    """Yield the positions of the set bits of ``bits`` in increasing order."""
    while bits:
        lowest = bits & -bits
        yield lowest.bit_length() - 1
        bits ^= lowest


class PrefixIdArena:
    """Interns bounded words into dense integer ids via prefix extension.

    Id ``0`` is the empty word; every other id is created by
    :meth:`extend`-ing its parent (the id of its longest proper prefix)
    with one label.  The arena therefore doubles as the prefix tree of
    every word it has interned, which is what lets a candidate DFA be
    intersected with a whole word set in one shared-prefix walk
    (:meth:`CompatibilityOracle.compatible`).
    """

    __slots__ = ("_ids", "_parents", "_labels", "_lengths", "_children", "_words")

    def __init__(self):
        self._ids: Dict[Tuple[int, Label], int] = {}
        self._parents: List[int] = [0]
        self._labels: List[Optional[Label]] = [None]
        self._lengths: List[int] = [0]
        self._children: List[List[Tuple[Label, int]]] = [[]]
        # decoded words, filled lazily by word_of
        self._words: List[Optional[Word]] = [()]

    def __len__(self) -> int:
        return len(self._parents)

    def extend(self, parent: int, label: Label) -> int:
        """The id of ``word_of(parent) + (label,)``, interning it if new."""
        key = (parent, label)
        word_id = self._ids.get(key)
        if word_id is None:
            word_id = len(self._parents)
            self._ids[key] = word_id
            self._parents.append(parent)
            self._labels.append(label)
            self._lengths.append(self._lengths[parent] + 1)
            self._children[parent].append((label, word_id))
            self._children.append([])
            self._words.append(None)
        return word_id

    def lookup(self, word: Iterable[Label]) -> Optional[int]:
        """The id of ``word``, or ``None`` when it was never interned."""
        word_id = 0
        for label in word:
            word_id = self._ids.get((word_id, label))
            if word_id is None:
                return None
        return word_id

    def length_of(self, word_id: int) -> int:
        """Length of the word with id ``word_id``."""
        return self._lengths[word_id]

    def children(self, word_id: int) -> List[Tuple[Label, int]]:
        """The one-label extensions of ``word_id`` present in the arena."""
        return self._children[word_id]

    def word_of(self, word_id: int) -> Word:
        """Decode ``word_id`` back into its label tuple (memoised)."""
        word = self._words[word_id]
        if word is None:
            labels: List[Label] = []
            current = word_id
            while current:
                labels.append(self._labels[current])
                current = self._parents[current]
            word = tuple(reversed(labels))
            self._words[word_id] = word
        return word


class LanguageIndex:
    """Bitset snapshot of every node's bounded path language.

    Built once per ``(graph.version, max_length)`` by one breadth-first
    sweep per node (the same distinct-word frontier walk as
    :func:`repro.graph.paths.words_from`, but interning into the shared
    arena instead of materialising tuples).  All word sets handed out are
    Python ints indexed by arena word id; all node sets are ints indexed
    by position in :attr:`nodes`.
    """

    __slots__ = (
        "version",
        "max_length",
        "arena",
        "nodes",
        "node_positions",
        "_languages",
        "_spellers",
        "_length_masks",
    )

    #: delta-refreshed (or dropped) by GraphWorkspace.refresh()/invalidate()
    __workspace_hook__ = "workspace.language_index"

    def __init__(self, graph: LabeledGraph, max_length: int):
        self.version: int = graph.version
        self.max_length: int = max_length
        self.arena = PrefixIdArena()
        self.nodes: Tuple[Node, ...] = tuple(graph.nodes())
        self.node_positions: Dict[Node, int] = {
            node: position for position, node in enumerate(self.nodes)
        }
        self._languages: Dict[Node, int] = {}
        #: word id -> bitset of node positions that can spell the word
        self._spellers: Dict[int, int] = {}
        self._length_masks: Optional[List[int]] = None

        arena = self.arena
        spellers = self._spellers
        for position, node in enumerate(self.nodes):
            node_bit = 1 << position
            language = 0
            # frontier: word id -> set of nodes reachable by spelling it
            frontier: Dict[int, Set[Node]] = {0: {node}}
            for _ in range(max_length):
                next_frontier: Dict[int, Set[Node]] = {}
                for word_id, ends in frontier.items():
                    for end in ends:
                        for label, target in graph.out_edges(end):
                            extended = arena.extend(word_id, label)
                            bucket = next_frontier.get(extended)
                            if bucket is None:
                                next_frontier[extended] = {target}
                            else:
                                bucket.add(target)
                if not next_frontier:
                    break
                for word_id in next_frontier:
                    language |= 1 << word_id
                    spellers[word_id] = spellers.get(word_id, 0) | node_bit
                frontier = next_frontier
            self._languages[node] = language

    # ------------------------------------------------------------------
    # languages and covers
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._languages

    def language(self, node: Node) -> int:
        """Bitset of word ids spellable from ``node`` (lengths 1..bound).

        Raises :class:`NodeNotFoundError` for nodes absent from the graph
        snapshot, consistent with :func:`repro.graph.paths.words_from`.
        """
        language = self._languages.get(node)
        if language is None:
            raise NodeNotFoundError(node)
        return language

    def cover(self, nodes: Iterable[Node]) -> int:
        """Union of the languages of ``nodes`` (the negative cover bitset).

        Raises :class:`NodeNotFoundError` when any node is absent — same
        contract as :func:`repro.learning.path_selection.covered_words`.
        """
        bits = 0
        for node in nodes:
            bits |= self.language(node)
        return bits

    def words_bitset(self, words: Iterable[Iterable[Label]]) -> int:
        """Bitset of the ids of ``words``; unknown words contribute nothing.

        A word missing from the arena is spellable by no node within the
        bound, so it can never intersect a node language — dropping it
        here is exactly equivalent to keeping it in a tuple set.
        """
        bits = 0
        lookup = self.arena.lookup
        for word in words:
            word_id = lookup(word)
            if word_id is not None:
                bits |= 1 << word_id
        return bits

    def spellers(self, word_id: int) -> int:
        """Bitset of node positions able to spell the word ``word_id``."""
        return self._spellers.get(word_id, 0)

    # ------------------------------------------------------------------
    # derived measures
    # ------------------------------------------------------------------
    def _masks_by_length(self) -> List[int]:
        masks = self._length_masks
        if masks is None:
            masks = [0] * (self.max_length + 1)
            lengths = self.arena._lengths
            for word_id in range(1, len(self.arena)):
                masks[lengths[word_id]] |= 1 << word_id
            self._length_masks = masks
        return masks

    def shortest_length(self, bits: int) -> Optional[int]:
        """Length of the shortest word in the bitset ``bits`` (None if empty)."""
        if not bits:
            return None
        for length, mask in enumerate(self._masks_by_length()):
            if length and bits & mask:
                return length
        return None

    def length_mask(self, length: int) -> int:
        """Bitset of every interned word id of exactly ``length`` labels."""
        masks = self._masks_by_length()
        if 0 <= length < len(masks):
            return masks[length]
        return 0

    def pick_word(self, bits: int, preferred_length: Optional[int] = None) -> Optional[Word]:
        """The canonical candidate word of the bitset ``bits``.

        Words of ``preferred_length`` win when present, otherwise the
        shortest; ties break lexicographically.  Only the ids at the
        winning length are decoded, which is what makes per-positive path
        selection constant-shaped instead of proportional to the node's
        whole uncovered language.
        """
        if not bits:
            return None
        if preferred_length is not None:
            at_preferred = bits & self.length_mask(preferred_length)
            if at_preferred:
                return min(self.decode(at_preferred))
        for length, mask in enumerate(self._masks_by_length()):
            if length:
                at_length = bits & mask
                if at_length:
                    return min(self.decode(at_length))
        return None

    def decode(self, bits: int) -> Set[Word]:
        """The bitset ``bits`` as a set of label tuples."""
        word_of = self.arena.word_of
        return {word_of(word_id) for word_id in iter_bits(bits)}

    def nodes_of(self, node_bits: int) -> List[Node]:
        """The node-position bitset ``node_bits`` as a list of nodes."""
        nodes = self.nodes
        return [nodes[position] for position in iter_bits(node_bits)]

    # ------------------------------------------------------------------
    # derived bounds
    # ------------------------------------------------------------------
    def restricted(self, max_length: int) -> "LanguageIndex":
        """A view of this index at a smaller ``max_length``.

        The words of length ≤ ``r`` at bound ``B ≥ r`` are exactly the
        words at bound ``r``, so the view only masks each node's language
        bitset — no graph traversal.  Arena, node table and speller sets
        are shared with the parent.
        """
        if max_length > self.max_length:
            raise ValueError(
                f"cannot restrict a bound-{self.max_length} index to {max_length}"
            )
        parent_masks = self._masks_by_length()
        keep = 0
        for length in range(1, max_length + 1):
            keep |= parent_masks[length]
        view = object.__new__(LanguageIndex)
        view.version = self.version
        view.max_length = max_length
        view.arena = self.arena
        view.nodes = self.nodes
        view.node_positions = self.node_positions
        view._languages = {
            node: language & keep for node, language in self._languages.items()
        }
        view._spellers = self._spellers
        view._length_masks = parent_masks[: max_length + 1]
        return view

    # ------------------------------------------------------------------
    # delta refresh
    # ------------------------------------------------------------------
    def refreshed(
        self,
        graph: LabeledGraph,
        deltas: Tuple,
        *,
        neighborhoods=None,
    ) -> Optional["LanguageIndex"]:
        """An index at ``graph.version`` rescoring only delta-reachable nodes.

        A node's bounded language can change only if the node reaches the
        source of a changed edge within ``max_length - 1`` forward hops —
        so only nodes in the backward BFS cone of the delta seeds (or,
        when ``neighborhoods`` has one cached at this index's version, in
        the undirected ball around a seed, a sound superset) get their
        frontier walk redone; every other node's bitset is carried over
        verbatim.  The shared :class:`PrefixIdArena` is append-only, so
        word ids stay stable and views of this index remain valid.

        Returns ``None`` when a delta changed the node set (languages and
        spellers are positional bitsets over the node table) or was
        recorded opaquely — the caller then rebuilds from scratch.
        """
        if graph.version == self.version:
            return self
        if not deltas:
            return None
        seeds: Set[Node] = set()
        for delta in deltas:
            if delta.nodes_changed or delta.opaque:
                return None
            for source, _, _ in delta.edges_added:
                seeds.add(source)
            for source, _, _ in delta.edges_removed:
                seeds.add(source)
        affected = _affected_nodes(
            graph,
            seeds,
            self.max_length,
            neighborhoods=neighborhoods,
            version_before=self.version,
        )
        fresh = object.__new__(LanguageIndex)
        fresh.version = graph.version
        fresh.max_length = self.max_length
        fresh.arena = self.arena  # append-only: existing word ids stay valid
        fresh.nodes = self.nodes
        fresh.node_positions = self.node_positions
        languages = dict(self._languages)
        spellers = dict(self._spellers)
        fresh._languages = languages
        fresh._spellers = spellers
        fresh._length_masks = None
        arena = fresh.arena
        node_positions = fresh.node_positions
        max_length = self.max_length
        for node in affected:
            position = node_positions.get(node)
            if position is None:
                continue
            node_bit = 1 << position
            language = 0
            frontier: Dict[int, Set[Node]] = {0: {node}}
            for _ in range(max_length):
                next_frontier: Dict[int, Set[Node]] = {}
                for word_id, ends in frontier.items():
                    for end in ends:
                        for label, target in graph.out_edges(end):
                            extended = arena.extend(word_id, label)
                            bucket = next_frontier.get(extended)
                            if bucket is None:
                                next_frontier[extended] = {target}
                            else:
                                bucket.add(target)
                if not next_frontier:
                    break
                for word_id in next_frontier:
                    language |= 1 << word_id
                frontier = next_frontier
            old_language = languages[node]
            for word_id in iter_bits(language & ~old_language):
                spellers[word_id] = spellers.get(word_id, 0) | node_bit
            for word_id in iter_bits(old_language & ~language):
                remaining = spellers.get(word_id, 0) & ~node_bit
                if remaining:
                    spellers[word_id] = remaining
                else:
                    spellers.pop(word_id, None)
            languages[node] = language
        return fresh

    def __repr__(self) -> str:
        return (
            f"<LanguageIndex v{self.version} bound={self.max_length} "
            f"{len(self.nodes)} nodes, {len(self.arena) - 1} words>"
        )


def _affected_nodes(
    graph: LabeledGraph,
    seeds: Set[Node],
    max_length: int,
    *,
    neighborhoods=None,
    version_before: Optional[int] = None,
) -> Set[Node]:
    """Every node whose bounded language a change at ``seeds`` can touch.

    Soundness: take any node ``u`` whose language differs between the old
    and new snapshots, and a witness word's path.  The path's *first*
    changed edge has some seed ``s`` as source, and the prefix ``u → s``
    uses only unchanged edges — edges present in both snapshots — of
    length ≤ ``max_length - 1``.  Hence ``u`` lies in the backward BFS
    cone of ``s`` on the new graph *and* in the undirected radius ball of
    ``s`` on the old graph; either containment yields a superset of the
    truly affected nodes.  Cached balls (from a
    :class:`~repro.graph.neighborhood.NeighborhoodIndex` still at
    ``version_before``) are preferred; remaining seeds share one
    multi-source backward BFS.
    """
    radius = max_length - 1
    affected: Set[Node] = set()
    pending: List[Node] = []
    for seed in seeds:
        if seed not in graph:
            continue
        ball = None
        if neighborhoods is not None and version_before is not None:
            ball = neighborhoods.cached_ball(seed, radius, version=version_before)
        if ball is not None:
            affected.add(seed)
            affected.update(ball)
        else:
            pending.append(seed)
    if pending:
        # the BFS keeps its own visited set: a node already absorbed from
        # a ball must still be *explored* when reached from another seed
        visited: Set[Node] = set(pending)
        frontier: List[Node] = pending
        pred = graph._pred
        for _ in range(radius):
            if not frontier:
                break
            next_frontier: List[Node] = []
            for node in frontier:
                for sources in pred[node].values():
                    for source in sources:
                        if source not in visited:
                            visited.add(source)
                            next_frontier.append(source)
            frontier = next_frontier
        affected |= visited
    return affected


def _workspace_index(graph: LabeledGraph, max_length: int) -> LanguageIndex:
    from repro.serving.workspace import default_workspace

    return default_workspace().language_index(graph, max_length)


# ----------------------------------------------------------------------
# Merge-aware compatibility
# ----------------------------------------------------------------------
class CompatibilityOracle:
    """Decides "candidate DFA selects no negative node" for one example set.

    The semantics are exactly those of the engine-based predicate the
    learner used previously (``not any(engine.selects(graph, dfa, n) for
    n in negatives)``, with *unbounded* path length), but the common
    cases are answered from the precompiled negative cover:

    1. the empty-word test — a hypothesis accepting the empty word
       selects every node, hence any negative;
    2. a shared-prefix walk of the arena trie in lockstep with the DFA —
       reaching an accepting DFA state on a covered word id is a
       *witness* that some negative node is selected (sound for any
       bound, and linear in the trie instead of per-negative);
    3. when the candidate's accepted words all fit within the bound
       (acyclic useful part with longest accepted word ≤ ``max_length``),
       the walk is also *complete*, so a missing witness proves
       compatibility outright;
    4. only candidates that accept words longer than the bound (merges
       that created loops) fall back to one **multi-source** forward
       product over the indexed graph — one pass for all negatives
       together, rather than one per negative.

    Instances are cheap (the cover is a few bit-ors over the shared
    index) and are created per ``learn()`` call; memoisation across merge
    attempts within one generalisation run happens in
    :func:`repro.automata.state_merging.generalize_pta`, keyed by the
    merge partition signature.
    """

    __slots__ = ("graph", "negatives", "index", "cover_bits", "max_length")

    def __init__(
        self,
        graph: LabeledGraph,
        negatives: Iterable[Node],
        *,
        max_length: int,
        index: Optional[LanguageIndex] = None,
    ):
        self.graph = graph
        self.negatives: Tuple[Node, ...] = tuple(sorted(negatives, key=str))
        self.max_length = max_length
        # callers holding a GraphWorkspace pass its index; the shim keeps
        # index-less construction working for legacy call sites
        if index is None or index.version != graph.version or index.max_length != max_length:
            index = _workspace_index(graph, max_length)
        self.index = index
        self.cover_bits = self.index.cover(self.negatives)

    def compatible(self, dfa: DFA) -> bool:
        """True when ``dfa`` selects no negative node of the graph."""
        if not self.negatives:
            return True
        if dfa.is_accepting(dfa.initial_state):
            return False  # accepts the empty word: selects every node
        if self._bounded_witness(dfa):
            return False
        longest = _longest_accepted_length(dfa)
        if longest is not None and longest <= self.max_length:
            return True  # every accepted word fits the bound: walk was complete
        return not self._selects_any_negative(dfa)

    # -- step 2: DFA × prefix-arena intersection ------------------------
    def _bounded_witness(self, dfa: DFA) -> bool:
        """Does ``dfa`` accept a word covered by some negative (≤ bound)?"""
        cover = self.cover_bits
        if not cover:
            return False
        children = self.index.arena.children
        transitions = dfa._transitions
        accepting = dfa._accepting
        # the arena is a tree and the DFA deterministic, so each trie node
        # is visited at most once — no visited set required
        stack: List[Tuple[int, object]] = [(0, dfa.initial_state)]
        while stack:
            word_id, state = stack.pop()
            moves = transitions[state]
            for label, child in children(word_id):
                target = moves.get(label)
                if target is None:
                    continue
                if target in accepting and (cover >> child) & 1:
                    return True
                stack.append((child, target))
        return False

    # -- step 4: exact fallback, all negatives in one product pass ------
    def _selects_any_negative(self, dfa: DFA) -> bool:
        index = self.graph.label_index()
        out_pairs = index.out_pairs
        node_positions = index.node_ids
        n = index.node_count
        transitions = dfa._transitions
        accepting = dfa._accepting
        initial = dfa.initial_state
        state_ids: Dict[object, int] = {initial: 0}
        seen: Set[int] = set()
        queue: deque = deque()
        for negative in self.negatives:
            node_id = node_positions[negative]
            if node_id not in seen:
                seen.add(node_id)  # state id 0 * n + node_id
                queue.append((node_id, initial))
        while queue:
            node_id, state = queue.popleft()
            moves = transitions[state]
            for label, target_id in out_pairs(node_id):
                target_state = moves.get(label)
                if target_state is None:
                    continue
                if target_state in accepting:
                    return True
                state_id = state_ids.setdefault(target_state, len(state_ids))
                encoded = state_id * n + target_id
                if encoded not in seen:
                    seen.add(encoded)
                    queue.append((target_id, target_state))
        return False


def _longest_accepted_length(dfa: DFA) -> Optional[int]:
    """Longest accepted word length, or ``None`` when unbounded / cyclic.

    Only the *useful* states (reachable and productive) matter: a cycle
    through states that can never reach acceptance does not make the
    accepted language infinite.
    """
    useful: FrozenSet = dfa.reachable_states() & dfa.productive_states()
    initial = dfa.initial_state
    if initial not in useful:
        return 0  # empty language: trivially bounded
    transitions = dfa._transitions
    accepting = dfa._accepting

    # iterative DFS with colors: detect cycles among useful states and
    # memoise the longest accepted-suffix length per state
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[object, int] = {state: WHITE for state in useful}
    longest: Dict[object, int] = {}
    stack: List[Tuple[object, bool]] = [(initial, False)]
    while stack:
        state, processed = stack.pop()
        if processed:
            best = 0 if state in accepting else -1
            for target in transitions[state].values():
                if target in useful and longest.get(target, -1) >= 0:
                    best = max(best, 1 + longest[target])
            longest[state] = best
            color[state] = BLACK
            continue
        if color[state] == BLACK:
            continue
        if color[state] == GRAY:
            return None  # revisiting an in-progress state: cycle
        color[state] = GRAY
        stack.append((state, True))
        for target in transitions[state].values():
            if target not in useful:
                continue
            if color[target] == GRAY:
                return None
            if color[target] == WHITE:
                stack.append((target, False))
    return longest.get(initial, 0)
