"""Angluin's L* — learning with membership and equivalence queries.

The interactive scenario of the paper "is inspired by the well-known
framework of learning with membership queries [Angluin 1988]".  This
module implements the classic L* algorithm as the reference point of that
framework: a learner that asks a *teacher*

* **membership queries** — "is this word in the goal language?", and
* **equivalence queries** — "is this hypothesis the goal language?
  If not, give me a counter-example word";

and is guaranteed to converge to the minimal DFA of the goal language.

Two teachers are provided:

* :class:`ExactTeacher` — answers from a known goal query / DFA
  (equivalence answered exactly, used in experiments and tests);
* :class:`SampleTeacher` — answers equivalence queries only up to a
  bounded word length (what a user inspecting query answers on a finite
  instance could realistically provide), which models the gap between the
  idealised framework and the paper's practical node-labelling protocol.

The module exists as an optional extension / baseline: it quantifies how
many *word-level* questions exact learning needs, compared with the
node-labelling interactions GPS uses (see
``benchmarks/bench_ablation_lstar.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Protocol, Sequence, Tuple, Union

from repro.automata.dfa import DFA
from repro.automata.equivalence import counterexample as dfa_counterexample
from repro.query.rpq import PathQuery
from repro.regex.ast import Regex

Word = Tuple[str, ...]


class Teacher(Protocol):
    """The oracle interface L* interacts with."""

    alphabet: Tuple[str, ...]

    def membership(self, word: Sequence[str]) -> bool:
        """Is ``word`` in the goal language?"""
        ...

    def equivalence(self, hypothesis: DFA) -> Optional[Word]:
        """``None`` when the hypothesis is correct, else a counter-example word."""
        ...


class ExactTeacher:
    """Teacher backed by a known goal query (answers both query types exactly)."""

    def __init__(self, goal: Union[str, Regex, PathQuery, DFA], alphabet: Optional[Iterable[str]] = None):
        if isinstance(goal, DFA):
            self._dfa = goal
            inferred = goal.alphabet()
        else:
            query = goal if isinstance(goal, PathQuery) else PathQuery(goal)
            self._dfa = query.dfa
            inferred = query.alphabet()
        self.alphabet = tuple(sorted(set(alphabet) if alphabet is not None else inferred))
        self.membership_queries = 0
        self.equivalence_queries = 0

    def membership(self, word: Sequence[str]) -> bool:
        self.membership_queries += 1
        return self._dfa.accepts(word)

    def equivalence(self, hypothesis: DFA) -> Optional[Word]:
        self.equivalence_queries += 1
        return dfa_counterexample(hypothesis, self._dfa)


class SampleTeacher(ExactTeacher):
    """Teacher whose equivalence answers only consider words up to a length bound.

    This models a user who can only inspect the answers of the hypothesis
    on a finite instance: hypotheses that differ from the goal only on
    words longer than ``max_length`` are declared "good enough".
    """

    def __init__(
        self,
        goal: Union[str, Regex, PathQuery, DFA],
        *,
        max_length: int = 4,
        alphabet: Optional[Iterable[str]] = None,
    ):
        super().__init__(goal, alphabet=alphabet)
        self.max_length = max_length

    def equivalence(self, hypothesis: DFA) -> Optional[Word]:
        self.equivalence_queries += 1
        witness = dfa_counterexample(hypothesis, self._dfa)
        if witness is None or len(witness) > self.max_length:
            return None
        return witness


@dataclass
class LStarResult:
    """Outcome of an L* run."""

    dfa: DFA
    query: PathQuery
    membership_queries: int
    equivalence_queries: int
    rounds: int


class _ObservationTable:
    """The classic (S, E, T) observation table."""

    def __init__(self, alphabet: Sequence[str], teacher: Teacher):
        self.alphabet = tuple(alphabet)
        self.teacher = teacher
        self.prefixes: List[Word] = [()]          # S, in insertion order
        self.suffixes: List[Word] = [()]          # E
        # repro-lint: disable=REP301 -- membership table of one L* run; words are immutable keys, no graph revision to witness
        self.entries: Dict[Word, bool] = {}       # T over (prefix + suffix)

    # -- bookkeeping ---------------------------------------------------
    def _lookup(self, word: Word) -> bool:
        if word not in self.entries:
            self.entries[word] = self.teacher.membership(word)
        return self.entries[word]

    def row(self, prefix: Word) -> Tuple[bool, ...]:
        return tuple(self._lookup(prefix + suffix) for suffix in self.suffixes)

    def _boundary(self) -> List[Word]:
        """S·Σ \\ S — the one-symbol extensions of the prefixes."""
        known = set(self.prefixes)
        extensions: List[Word] = []
        for prefix in self.prefixes:
            for symbol in self.alphabet:
                extended = prefix + (symbol,)
                if extended not in known:
                    extensions.append(extended)
        return extensions

    # -- closedness / consistency ---------------------------------------
    def close(self) -> None:
        """Add boundary rows that have no matching prefix row (until closed)."""
        changed = True
        while changed:
            changed = False
            prefix_rows = {self.row(prefix) for prefix in self.prefixes}
            for extension in self._boundary():
                if self.row(extension) not in prefix_rows:
                    self.prefixes.append(extension)
                    changed = True
                    break

    def make_consistent(self) -> bool:
        """Add a distinguishing suffix when two equal rows diverge after a symbol.

        Returns True when a suffix was added (the table must be re-closed).
        """
        for first_index, first in enumerate(self.prefixes):
            for second in self.prefixes[first_index + 1 :]:
                if self.row(first) != self.row(second):
                    continue
                for symbol in self.alphabet:
                    for suffix in self.suffixes:
                        left = self._lookup(first + (symbol,) + suffix)
                        right = self._lookup(second + (symbol,) + suffix)
                        if left != right:
                            self.suffixes.append((symbol,) + suffix)
                            return True
        return False

    # -- hypothesis construction ----------------------------------------
    def to_dfa(self) -> DFA:
        representatives: Dict[Tuple[bool, ...], Word] = {}
        for prefix in self.prefixes:
            representatives.setdefault(self.row(prefix), prefix)
        index_of = {row: index for index, row in enumerate(representatives)}

        dfa = DFA(index_of[self.row(())])
        dfa.declare_alphabet(self.alphabet)
        for index in index_of.values():
            dfa.add_state(index)
        dfa.set_initial(index_of[self.row(())])
        for row, representative in representatives.items():
            state = index_of[row]
            if self._lookup(representative):
                dfa.set_accepting(state)
            for symbol in self.alphabet:
                target_row = self.row(representative + (symbol,))
                if target_row in index_of:
                    dfa.add_transition(state, symbol, index_of[target_row])
        return dfa

    def add_counterexample(self, word: Word) -> None:
        """Add every prefix of the counter-example to S (Angluin's original rule)."""
        for cut in range(1, len(word) + 1):
            prefix = word[:cut]
            if prefix not in self.prefixes:
                self.prefixes.append(prefix)


def lstar(teacher: Teacher, *, max_rounds: int = 200) -> LStarResult:
    """Run L* against ``teacher`` and return the learned minimal DFA.

    ``max_rounds`` bounds the number of equivalence queries (a safety valve
    for bounded teachers that keep producing counter-examples).
    """
    if not teacher.alphabet:
        raise ValueError("the teacher must expose a non-empty alphabet")
    table = _ObservationTable(teacher.alphabet, teacher)
    rounds = 0
    while rounds < max_rounds:
        rounds += 1
        table.close()
        while table.make_consistent():
            table.close()
        hypothesis = table.to_dfa()
        witness = teacher.equivalence(hypothesis)
        if witness is None:
            membership = getattr(teacher, "membership_queries", len(table.entries))
            equivalence = getattr(teacher, "equivalence_queries", rounds)
            return LStarResult(
                dfa=hypothesis,
                query=PathQuery.from_dfa(hypothesis),
                membership_queries=membership,
                equivalence_queries=equivalence,
                rounds=rounds,
            )
        table.add_counterexample(tuple(witness))
    raise RuntimeError(f"L* did not converge within {max_rounds} equivalence queries")


def learn_with_membership_queries(
    goal: Union[str, Regex, PathQuery],
    *,
    alphabet: Optional[Iterable[str]] = None,
) -> LStarResult:
    """Convenience wrapper: learn ``goal`` exactly with an :class:`ExactTeacher`."""
    return lstar(ExactTeacher(goal, alphabet=alphabet))
