"""Learning engine: examples, consistency, path selection, the two-step learner."""

from repro.learning.examples import ExampleSet, LabeledExample
from repro.learning.consistency import ConsistencyReport, check_consistency, is_consistent
from repro.learning.path_selection import (
    candidate_prefix_tree,
    consistent_words_for,
    covered_words,
    select_path,
    validate_word,
)
from repro.learning.informativeness import (
    NodeStatus,
    SessionClassifier,
    classify_all,
    classify_all_scratch,
    classify_node,
    informative_nodes,
    pruned_nodes,
    pruning_fraction,
)
from repro.learning.language_index import (
    CompatibilityOracle,
    LanguageIndex,
    PrefixIdArena,
)
from repro.learning.propagation import PropagationResult, propagate_labels, propagate_to_fixpoint
from repro.learning.learner import (
    DEFAULT_MAX_PATH_LENGTH,
    LearningOutcome,
    PathQueryLearner,
    learn_query,
)
from repro.learning.angluin import (
    ExactTeacher,
    LStarResult,
    SampleTeacher,
    learn_with_membership_queries,
    lstar,
)

__all__ = [
    "ExampleSet",
    "LabeledExample",
    "ConsistencyReport",
    "check_consistency",
    "is_consistent",
    "candidate_prefix_tree",
    "consistent_words_for",
    "covered_words",
    "select_path",
    "validate_word",
    "NodeStatus",
    "SessionClassifier",
    "classify_all",
    "classify_all_scratch",
    "classify_node",
    "informative_nodes",
    "pruned_nodes",
    "pruning_fraction",
    "CompatibilityOracle",
    "LanguageIndex",
    "PrefixIdArena",
    "PropagationResult",
    "propagate_labels",
    "propagate_to_fixpoint",
    "DEFAULT_MAX_PATH_LENGTH",
    "LearningOutcome",
    "PathQueryLearner",
    "learn_query",
    "ExactTeacher",
    "LStarResult",
    "SampleTeacher",
    "learn_with_membership_queries",
    "lstar",
]
