"""Example sets: the positive / negative node labels provided by the user.

An :class:`ExampleSet` records

* the nodes the user labelled **positive** (she wants them in the answer),
* the nodes the user labelled **negative** (she does not),
* optionally, for each positive node, the **validated word** — the path of
  interest the user confirmed in the prefix-tree step (Figure 3(c)), and
* the nodes whose labels were *propagated* automatically (implied by the
  user-provided labels), kept separately so interaction counts only
  reflect genuine user effort.

The set is mutable (the session enriches it) but exposes immutable views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.exceptions import InconsistentExamplesError
from repro.graph.labeled_graph import Node

Word = Tuple[str, ...]


@dataclass(frozen=True)
class LabeledExample:
    """One labelling interaction: a node, its label, and an optional validated word."""

    node: Node
    positive: bool
    validated_word: Optional[Word] = None
    propagated: bool = False

    @property
    def sign(self) -> str:
        """``"+"`` or ``"-"`` (handy for rendering transcripts)."""
        return "+" if self.positive else "-"


class ExampleSet:
    """The evolving set of examples gathered during a session."""

    def __init__(self):
        self._positive: Dict[Node, Optional[Word]] = {}
        self._negative: set = set()
        self._propagated_positive: set = set()
        self._propagated_negative: set = set()
        self._history: list = []

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_positive(
        self,
        node: Node,
        *,
        validated_word: Optional[Iterable[str]] = None,
        propagated: bool = False,
    ) -> LabeledExample:
        """Record ``node`` as a positive example (optionally with its validated path)."""
        if node in self._negative or node in self._propagated_negative:
            raise InconsistentExamplesError(
                f"node {node!r} is already a negative example", conflicting=[node]
            )
        word = tuple(validated_word) if validated_word is not None else None
        previous = self._positive.get(node)
        if node in self._positive and word is None:
            word = previous
        self._positive[node] = word
        if propagated:
            self._propagated_positive.add(node)
        else:
            self._propagated_positive.discard(node)
        example = LabeledExample(node, True, word, propagated)
        self._history.append(example)
        return example

    def add_negative(self, node: Node, *, propagated: bool = False) -> LabeledExample:
        """Record ``node`` as a negative example."""
        if node in self._positive:
            raise InconsistentExamplesError(
                f"node {node!r} is already a positive example", conflicting=[node]
            )
        self._negative.add(node)
        if propagated:
            self._propagated_negative.add(node)
        example = LabeledExample(node, False, None, propagated)
        self._history.append(example)
        return example

    def set_validated_word(self, node: Node, word: Iterable[str]) -> None:
        """Attach (or replace) the validated word of an existing positive node."""
        if node not in self._positive:
            raise InconsistentExamplesError(
                f"cannot validate a path for {node!r}: it is not a positive example",
                conflicting=[node],
            )
        self._positive[node] = tuple(word)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def positive_nodes(self) -> FrozenSet[Node]:
        """All positive nodes (user-labelled and propagated)."""
        return frozenset(self._positive)

    @property
    def negative_nodes(self) -> FrozenSet[Node]:
        """All negative nodes (user-labelled and propagated)."""
        return frozenset(self._negative)

    @property
    def user_positive_nodes(self) -> FrozenSet[Node]:
        """Positive nodes explicitly labelled by the user."""
        return frozenset(node for node in self._positive if node not in self._propagated_positive)

    @property
    def user_negative_nodes(self) -> FrozenSet[Node]:
        """Negative nodes explicitly labelled by the user."""
        return frozenset(self._negative - self._propagated_negative)

    @property
    def labeled_nodes(self) -> FrozenSet[Node]:
        """Every node carrying a label of either sign."""
        return self.positive_nodes | self.negative_nodes

    def label_of(self, node: Node) -> Optional[bool]:
        """True / False / None for positive / negative / unlabelled."""
        if node in self._positive:
            return True
        if node in self._negative:
            return False
        return None

    def validated_word(self, node: Node) -> Optional[Word]:
        """The validated word of a positive node (``None`` when not validated)."""
        return self._positive.get(node)

    def validated_words(self) -> Dict[Node, Word]:
        """Mapping of every positive node that has a validated word."""
        return {node: word for node, word in self._positive.items() if word is not None}

    @property
    def history(self) -> Tuple[LabeledExample, ...]:
        """The full labelling history, in order."""
        return tuple(self._history)

    def interaction_count(self) -> int:
        """Number of *user* labelling actions (propagated labels excluded)."""
        return sum(1 for example in self._history if not example.propagated)

    def is_empty(self) -> bool:
        """True when no example has been provided yet."""
        return not self._positive and not self._negative

    def copy(self) -> "ExampleSet":
        """Independent copy (used by strategies doing what-if analysis)."""
        clone = ExampleSet()
        clone._positive = dict(self._positive)
        clone._negative = set(self._negative)
        clone._propagated_positive = set(self._propagated_positive)
        clone._propagated_negative = set(self._propagated_negative)
        clone._history = list(self._history)
        return clone

    def __repr__(self) -> str:
        return (
            f"<ExampleSet +{len(self._positive)} / -{len(self._negative)} "
            f"({self.interaction_count()} user interactions)>"
        )
