"""Label propagation ("propagate label for ν" in Figure 2).

After the user labels a node (and possibly validates a path), the system
propagates the consequences of that label to the rest of the graph:

* every unlabelled node that can spell a *validated* positive word is
  necessarily selected by any query consistent with the validated paths →
  it receives an implied **positive** label;
* every unlabelled node all of whose (bounded) words are covered by
  negative nodes can never be selected consistently → it receives an
  implied **negative** label.

Propagated labels are recorded in the example set with ``propagated=True``
so they never count as user interactions, and the pruning statistics of
experiment E2 report them separately.

Each pass classifies through :func:`repro.learning.informativeness.classify_all`,
which is served by the shared incremental
:class:`~repro.learning.informativeness.SessionClassifier`: the first
fixpoint round after a user answer pays only that answer's delta, and
every later round only the delta of the labels the previous round added.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

from typing import Optional

from repro.graph.labeled_graph import LabeledGraph, Node
from repro.learning.examples import ExampleSet
from repro.learning.informativeness import SessionClassifier, classify_all


@dataclass(frozen=True)
class PropagationResult:
    """Labels added by one propagation pass."""

    implied_positive: FrozenSet[Node]
    implied_negative: FrozenSet[Node]

    @property
    def total(self) -> int:
        """Number of labels propagated in this pass."""
        return len(self.implied_positive) + len(self.implied_negative)


def propagate_labels(
    graph: LabeledGraph,
    examples: ExampleSet,
    *,
    max_length: int,
    classifier: Optional[SessionClassifier] = None,
) -> PropagationResult:
    """Run one propagation pass, mutating ``examples`` in place.

    Returns the sets of nodes that received implied labels.  The pass is
    idempotent: running it twice in a row adds nothing the second time.
    A workspace-backed session passes its own ``classifier`` so the pass
    reuses the session's status table instead of the module registry.
    """
    statuses = classify_all(graph, examples, max_length=max_length, classifier=classifier)
    implied_positive = set()
    implied_negative = set()
    for node, status in statuses.items():
        if status.labeled:
            continue
        if status.implied_positive:
            examples.add_positive(node, propagated=True)
            implied_positive.add(node)
        elif status.implied_negative:
            examples.add_negative(node, propagated=True)
            implied_negative.add(node)
    return PropagationResult(frozenset(implied_positive), frozenset(implied_negative))


def propagate_to_fixpoint(
    graph: LabeledGraph,
    examples: ExampleSet,
    *,
    max_length: int,
    max_rounds: int = 10,
    classifier: Optional[SessionClassifier] = None,
) -> Tuple[PropagationResult, ...]:
    """Repeat propagation until nothing changes (or ``max_rounds`` is hit).

    Adding implied negatives can cover new words, which can imply further
    negatives; in practice the fixpoint is reached in one or two rounds.
    """
    rounds = []
    for _ in range(max_rounds):
        result = propagate_labels(graph, examples, max_length=max_length, classifier=classifier)
        rounds.append(result)
        if result.total == 0:
            break
    return tuple(rounds)
