"""Tests for the bounded path-language index and the incremental classifier.

The heart of this file is the property-style session replay: random
graphs × random example sequences, asserting after *every* step that the
incremental :class:`SessionClassifier` matches the from-scratch
:func:`classify_all_scratch` oracle exactly, and that indexes rebuilt on
``graph.version`` bumps never serve stale languages.
"""

import random

import pytest

from repro.exceptions import InconsistentExamplesError, NodeNotFoundError
from repro.graph.generators import random_graph
from repro.graph.paths import words_from
from repro.learning.examples import ExampleSet
from repro.learning.informativeness import (
    SessionClassifier,
    classify_all,
    classify_all_scratch,
    informative_nodes,
)
from repro.learning.language_index import (
    CompatibilityOracle,
    LanguageIndex,
    PrefixIdArena,
    iter_bits,
    popcount,
)
from repro.learning.learner import PathQueryLearner
from repro.query.engine import QueryEngine
from repro.serving.workspace import default_workspace


def language_index_for(graph, max_length):
    """Workspace-backed index accessor (the module-level shim now warns)."""
    return default_workspace().language_index(graph, max_length)


def session_classifier(graph, examples, *, max_length):
    """Workspace-backed classifier accessor (the module-level shim now warns)."""
    return default_workspace().classifier(graph, examples, max_length=max_length)


# ----------------------------------------------------------------------
# arena
# ----------------------------------------------------------------------
class TestPrefixIdArena:
    def test_root_is_empty_word(self):
        arena = PrefixIdArena()
        assert arena.word_of(0) == ()
        assert arena.lookup(()) == 0
        assert arena.length_of(0) == 0

    def test_extend_interns_once(self):
        arena = PrefixIdArena()
        first = arena.extend(0, "a")
        again = arena.extend(0, "a")
        assert first == again
        assert arena.word_of(first) == ("a",)

    def test_round_trip_and_lengths(self):
        arena = PrefixIdArena()
        ab = arena.extend(arena.extend(0, "a"), "b")
        assert arena.word_of(ab) == ("a", "b")
        assert arena.length_of(ab) == 2
        assert arena.lookup(("a", "b")) == ab
        assert arena.lookup(("b",)) is None

    def test_children_reflect_extensions(self):
        arena = PrefixIdArena()
        a = arena.extend(0, "a")
        b = arena.extend(0, "b")
        assert dict(arena.children(0)) == {"a": a, "b": b}


# ----------------------------------------------------------------------
# language index
# ----------------------------------------------------------------------
class TestLanguageIndex:
    def test_languages_match_words_from(self, figure1_graph):
        index = language_index_for(figure1_graph, 3)
        for node in figure1_graph.nodes():
            decoded = index.decode(index.language(node))
            assert decoded == words_from(figure1_graph, node, 3)

    def test_cover_matches_union(self, figure1_graph):
        index = language_index_for(figure1_graph, 2)
        bits = index.cover(["N5", "N4"])
        expected = words_from(figure1_graph, "N5", 2) | words_from(figure1_graph, "N4", 2)
        assert index.decode(bits) == expected

    def test_unknown_node_raises(self, figure1_graph):
        index = language_index_for(figure1_graph, 2)
        with pytest.raises(NodeNotFoundError):
            index.language("ghost")
        with pytest.raises(NodeNotFoundError):
            index.cover(["N5", "ghost"])

    def test_shortest_length_and_popcount(self, figure1_graph):
        index = language_index_for(figure1_graph, 3)
        bits = index.language("N2")
        words = index.decode(bits)
        assert popcount(bits) == len(words)
        assert index.shortest_length(bits) == min(len(word) for word in words)
        assert index.shortest_length(0) is None

    def test_spellers_transpose_languages(self, figure1_graph):
        index = language_index_for(figure1_graph, 2)
        for node in figure1_graph.nodes():
            position = index.node_positions[node]
            for word_id in iter_bits(index.language(node)):
                assert (index.spellers(word_id) >> position) & 1

    def test_shared_and_rebuilt_on_version_bump(self, figure1_graph):
        first = language_index_for(figure1_graph, 3)
        assert language_index_for(figure1_graph, 3) is first
        figure1_graph.add_edge("N2", "ferry", "N6")
        second = language_index_for(figure1_graph, 3)
        assert second is not first
        assert second.version == figure1_graph.version
        assert ("ferry",) in second.decode(second.language("N2"))

    def test_distinct_bounds_are_distinct_indexes(self, figure1_graph):
        assert language_index_for(figure1_graph, 2) is not language_index_for(figure1_graph, 3)

    def test_restricted_view_equals_fresh_index(self, figure1_graph):
        parent = language_index_for(figure1_graph, 4)
        view = parent.restricted(2)
        fresh = LanguageIndex(figure1_graph, 2)
        assert view.arena is parent.arena
        for node in figure1_graph.nodes():
            assert view.decode(view.language(node)) == fresh.decode(fresh.language(node))
            uncovered = view.language(node)
            assert view.shortest_length(uncovered) == fresh.shortest_length(
                fresh.language(node)
            )
            assert view.pick_word(uncovered) == fresh.pick_word(fresh.language(node))

    def test_restricted_rejects_larger_bound(self, figure1_graph):
        with pytest.raises(ValueError):
            language_index_for(figure1_graph, 2).restricted(3)

    def test_smaller_bound_served_from_larger_cached_index(self, figure1_graph):
        larger = language_index_for(figure1_graph, 4)
        smaller = language_index_for(figure1_graph, 3)
        assert smaller.arena is larger.arena  # restricted view, not a rebuild
        assert smaller.max_length == 3
        for node in figure1_graph.nodes():
            assert smaller.decode(smaller.language(node)) == words_from(
                figure1_graph, node, 3
            )

    def test_iter_bits(self):
        assert list(iter_bits(0b101001)) == [0, 3, 5]
        assert list(iter_bits(0)) == []


# ----------------------------------------------------------------------
# incremental == from-scratch (the tentpole invariant)
# ----------------------------------------------------------------------
def _random_step(rng, graph, examples, max_length):
    """Apply one random labelling action; returns False when saturated."""
    unlabeled = sorted(
        (node for node in graph.nodes() if node not in examples.labeled_nodes), key=str
    )
    if not unlabeled:
        return False
    node = rng.choice(unlabeled)
    if rng.random() < 0.5:
        examples.add_negative(node)
    else:
        words = sorted(words_from(graph, node, max_length), key=lambda w: (len(w), w))
        validated = words[0] if words and rng.random() < 0.6 else None
        examples.add_positive(node, validated_word=validated)
    return True


class TestSessionClassifierMatchesScratch:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_graphs_random_sequences(self, seed):
        rng = random.Random(seed)
        graph = random_graph(
            rng.randint(8, 30), rng.randint(20, 90), ("a", "b", "c"), seed=seed
        )
        max_length = rng.choice((2, 3, 4))
        examples = ExampleSet()
        classifier = SessionClassifier(graph, examples, max_length=max_length)
        assert classifier.statuses() == classify_all_scratch(
            graph, examples, max_length=max_length
        )
        for _ in range(14):
            if not _random_step(rng, graph, examples, max_length):
                break
            incremental = classifier.statuses()
            scratch = classify_all_scratch(graph, examples, max_length=max_length)
            assert incremental == scratch

    def test_informative_ranking_matches_scratch_order(self, figure1_graph):
        examples = ExampleSet()
        examples.add_negative("N5")
        ranked = informative_nodes(figure1_graph, examples, max_length=3)
        statuses = classify_all_scratch(figure1_graph, examples, max_length=3)
        expected = [status for status in statuses.values() if status.informative]
        expected.sort(key=lambda status: (status.score, str(status.node)))
        expected.sort(key=lambda status: status.score, reverse=True)
        assert ranked == [status.node for status in expected]

    def test_graph_mutation_invalidates_classifier(self, figure1_graph):
        examples = ExampleSet()
        examples.add_negative("N5")
        classifier = SessionClassifier(figure1_graph, examples, max_length=3)
        classifier.statuses()
        figure1_graph.add_edge("N4", "tram", "N2")
        assert classifier.statuses() == classify_all_scratch(
            figure1_graph, examples, max_length=3
        )
        assert classifier.index.version == figure1_graph.version

    def test_replaced_validated_word_triggers_rebuild(self, figure1_graph):
        examples = ExampleSet()
        examples.add_positive("N2", validated_word=("bus",))
        classifier = SessionClassifier(figure1_graph, examples, max_length=3)
        classifier.statuses()
        examples.set_validated_word("N2", ("bus", "bus", "cinema"))
        assert classifier.statuses() == classify_all_scratch(
            figure1_graph, examples, max_length=3
        )

    def test_shared_classifier_identity(self, figure1_graph):
        examples = ExampleSet()
        first = session_classifier(figure1_graph, examples, max_length=3)
        assert session_classifier(figure1_graph, examples, max_length=3) is first
        assert session_classifier(figure1_graph, examples, max_length=2) is not first

    def test_registry_releases_dead_example_sets(self, figure1_graph):
        # the classifier must not strongly reference its example set, or
        # the weak-keyed registry pins one classifier (statuses + graph +
        # language index) per session for the life of the process
        import gc
        import weakref

        from repro.serving.workspace import default_workspace

        registry = default_workspace()._classifiers
        gc.collect()
        before = len(registry)
        refs = []
        for _ in range(3):
            examples = ExampleSet()
            examples.add_negative("N5")
            session_classifier(figure1_graph, examples, max_length=3).statuses()
            refs.append(weakref.ref(examples))
            del examples
        gc.collect()
        assert all(ref() is None for ref in refs)
        assert len(registry) == before

    def test_classifier_examples_property_after_collection(self, figure1_graph):
        import gc

        examples = ExampleSet()
        classifier = SessionClassifier(figure1_graph, examples, max_length=2)
        del examples
        gc.collect()
        with pytest.raises(RuntimeError):
            classifier.refresh()

    def test_classify_all_unknown_candidate_raises(self, figure1_graph):
        with pytest.raises(NodeNotFoundError):
            classify_all(figure1_graph, ExampleSet(), max_length=2, candidates=["ghost"])

    def test_labeled_node_outside_graph_matches_scratch(self, figure1_graph):
        # a labelled node absent from the graph (e.g. examples recorded
        # against a larger graph) classifies nothing; both delta branches
        # of refresh must tolerate it like classify_all_scratch does
        examples = ExampleSet()
        classifier = SessionClassifier(figure1_graph, examples, max_length=3)
        classifier.statuses()
        examples.add_positive("ghost")  # label-only delta, no cover growth
        assert classifier.statuses() == classify_all_scratch(
            figure1_graph, examples, max_length=3
        )
        examples.add_negative("N5")  # cover-delta branch with ghost still labelled
        assert classifier.statuses() == classify_all_scratch(
            figure1_graph, examples, max_length=3
        )


# ----------------------------------------------------------------------
# score satellite: no magic sentinel
# ----------------------------------------------------------------------
class TestOptionalAwareScore:
    def test_no_uncovered_sorts_below_any_uncovered(self, figure1_graph):
        examples = ExampleSet()
        examples.add_negative("N6")
        statuses = classify_all(figure1_graph, examples, max_length=2)
        exhausted = [s for s in statuses.values() if s.shortest_uncovered_length is None]
        alive = [s for s in statuses.values() if s.shortest_uncovered_length is not None]
        assert exhausted and alive
        assert max(s.score for s in exhausted) < min(s.score for s in alive)

    def test_score_is_self_describing(self, figure1_graph):
        examples = ExampleSet()
        statuses = classify_all(figure1_graph, examples, max_length=3)
        for status in statuses.values():
            count, has_uncovered, negated = status.score
            assert count == status.uncovered_word_count
            assert has_uncovered == (status.shortest_uncovered_length is not None)
            if has_uncovered:
                assert negated == -status.shortest_uncovered_length
            else:
                assert negated == 0


# ----------------------------------------------------------------------
# merge-aware compatibility
# ----------------------------------------------------------------------
class TestCompatibilityOracle:
    def test_no_negatives_everything_compatible(self, figure1_graph):
        from repro.automata.prefix_tree import build_pta

        oracle = CompatibilityOracle(figure1_graph, [], max_length=3)
        assert oracle.compatible(build_pta([("tram",)]))

    def test_empty_word_acceptance_is_incompatible(self, figure1_graph):
        from repro.automata.dfa import DFA

        dfa = DFA(0)
        dfa.set_accepting(0)
        oracle = CompatibilityOracle(figure1_graph, ["N5"], max_length=3)
        assert not oracle.compatible(dfa)

    def test_matches_engine_predicate_on_random_candidates(self):
        # quotients of random PTAs vs the engine's per-negative check
        engine = QueryEngine()
        for seed in range(8):
            rng = random.Random(seed)
            graph = random_graph(20, 60, ("a", "b", "c"), seed=seed + 50)
            nodes = sorted(graph.nodes(), key=str)
            negatives = rng.sample(nodes, 4)
            oracle = CompatibilityOracle(graph, negatives, max_length=3)
            from repro.automata.prefix_tree import build_pta
            from repro.automata.state_merging import _Partition, _merge_and_fold, _quotient

            words = [
                tuple(rng.choice("abc") for _ in range(rng.randint(1, 4)))
                for _ in range(rng.randint(2, 5))
            ]
            pta = build_pta(words)
            candidates = [pta]
            states = sorted(pta.states)
            for _ in range(6):
                partition = _Partition(pta.states)
                folded = _merge_and_fold(
                    pta, partition, rng.choice(states), rng.choice(states)
                )
                if folded is not None:
                    candidates.append(_quotient(pta, folded))
            for candidate in candidates:
                expected = not any(
                    engine.selects(graph, candidate, node) for node in negatives
                )
                assert oracle.compatible(candidate) == expected

    def test_learner_modes_learn_identical_queries(self):
        for seed in range(6):
            rng = random.Random(seed)
            graph = random_graph(25, 75, ("a", "b", "c", "d"), seed=seed + 200)
            examples = ExampleSet()
            nodes = sorted(graph.nodes(), key=str)
            rng.shuffle(nodes)
            for node in nodes[:8]:
                if rng.random() < 0.5:
                    examples.add_negative(node)
                else:
                    examples.add_positive(node)
            indexed = PathQueryLearner(
                graph, max_path_length=4, compatibility="indexed", engine=QueryEngine()
            )
            via_engine = PathQueryLearner(
                graph, max_path_length=4, compatibility="engine", engine=QueryEngine()
            )
            try:
                learned_indexed = indexed.learn(examples)
            except InconsistentExamplesError:
                with pytest.raises(InconsistentExamplesError):
                    via_engine.learn(examples)
                continue
            learned_engine = via_engine.learn(examples)
            assert str(learned_indexed.query) == str(learned_engine.query)
            assert learned_indexed.dfa.states == learned_engine.dfa.states

    def test_unknown_compatibility_mode_rejected(self, figure1_graph):
        with pytest.raises(ValueError):
            PathQueryLearner(figure1_graph, compatibility="psychic")


class TestIndexIsASnapshot:
    def test_index_results_invalidated_on_version_bump(self):
        graph = random_graph(12, 30, ("a", "b"), seed=3)
        index = language_index_for(graph, 3)
        node = sorted(graph.nodes(), key=str)[0]
        before = index.decode(index.language(node))
        assert before == words_from(graph, node, 3)
        target = sorted(graph.nodes(), key=str)[-1]
        graph.add_edge(node, "z", target)
        rebuilt = language_index_for(graph, 3)
        assert rebuilt is not index
        assert rebuilt.decode(rebuilt.language(node)) == words_from(graph, node, 3)
        assert isinstance(rebuilt, LanguageIndex)
