"""Unit tests for the consistency checker."""

from repro.learning.consistency import check_consistency, examples_admit_query, is_consistent
from repro.learning.examples import ExampleSet
from repro.query.rpq import PathQuery


def paper_examples() -> ExampleSet:
    examples = ExampleSet()
    examples.add_positive("N2")
    examples.add_positive("N6")
    examples.add_negative("N5")
    return examples


class TestCheckConsistency:
    def test_goal_query_is_consistent_with_paper_examples(self, figure1_graph):
        report = check_consistency(figure1_graph, "(tram + bus)* . cinema", paper_examples())
        assert report.consistent
        assert report.missed_positives == frozenset()
        assert report.covered_negatives == frozenset()
        assert "consistent" in report.explain()

    def test_bus_query_also_consistent_without_validation(self, figure1_graph):
        """Section 3: `bus` is consistent with {+N2, +N6, -N5} but is not the goal."""
        assert is_consistent(figure1_graph, "bus", paper_examples())

    def test_missed_positive_detected(self, figure1_graph):
        report = check_consistency(figure1_graph, "cinema", paper_examples())
        assert not report.consistent
        assert "N2" in report.missed_positives
        assert "misses" in report.explain()

    def test_covered_negative_detected(self, figure1_graph):
        examples = paper_examples()
        report = check_consistency(figure1_graph, "restaurant", examples)
        assert not report.consistent
        assert "N5" in report.covered_negatives
        assert "selects negative" in report.explain()

    def test_validated_word_must_be_accepted(self, figure1_graph):
        examples = ExampleSet()
        examples.add_positive("N2", validated_word=("bus", "tram", "cinema"))
        examples.add_negative("N5")
        # bus* . cinema selects N2 but rejects the validated tram word
        report = check_consistency(figure1_graph, "bus* . cinema", examples)
        assert not report.consistent
        assert ("bus", "tram", "cinema") in report.rejected_words
        # the goal query accepts it
        assert is_consistent(figure1_graph, "(tram + bus)* . cinema", examples)

    def test_accepts_query_and_dfa_inputs(self, figure1_graph):
        query = PathQuery("(tram + bus)* . cinema")
        assert check_consistency(figure1_graph, query, paper_examples()).consistent
        assert check_consistency(figure1_graph, query.dfa, paper_examples()).consistent

    def test_empty_example_set_always_consistent(self, figure1_graph):
        assert is_consistent(figure1_graph, "anything-at-all*", ExampleSet())


class TestExamplesAdmitQuery:
    def test_admissible(self, figure1_graph):
        assert examples_admit_query(figure1_graph, paper_examples(), max_path_length=4)

    def test_positive_with_all_paths_covered_is_inadmissible(self, figure1_graph):
        examples = ExampleSet()
        # C1 has no outgoing edge at all: only the empty word, which every
        # node shares — so once any negative exists, C1 cannot be positive.
        examples.add_positive("C1")
        examples.add_negative("C2")
        assert not examples_admit_query(figure1_graph, examples, max_path_length=4)

    def test_positive_sink_alone_is_admissible(self, figure1_graph):
        # with no negatives, even a sink node admits the query eps (select-all)
        examples = ExampleSet()
        examples.add_positive("C1")
        assert examples_admit_query(figure1_graph, examples, max_path_length=4)

    def test_identical_path_languages_conflict(self, figure1_graph):
        # N4 and N6 both have a 'cinema' word, but N6 also has bus/tram words;
        # labelling N4 positive and N6 negative leaves no uncovered word for N4
        examples = ExampleSet()
        examples.add_positive("N4")
        examples.add_negative("N6")
        assert not examples_admit_query(figure1_graph, examples, max_path_length=3)
