"""Tests for the L* learner (the paper's membership-query framework)."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.automata.determinize import regex_to_dfa
from repro.automata.equivalence import equivalent
from repro.automata.minimize import minimize
from repro.learning.angluin import (
    ExactTeacher,
    SampleTeacher,
    learn_with_membership_queries,
    lstar,
)
from repro.query.rpq import PathQuery


class TestExactLearning:
    @pytest.mark.parametrize(
        "expression",
        [
            "a",
            "a . b",
            "a + b",
            "a*",
            "(a + b)* . c",
            "a . (b + c)* . a",
            "(tram + bus)* . cinema",
            "a+ . b?",
        ],
    )
    def test_learns_exact_language(self, expression):
        result = learn_with_membership_queries(expression)
        assert equivalent(result.dfa, regex_to_dfa(expression))

    def test_learned_dfa_is_minimal(self):
        # L* returns the complete minimal DFA (rejecting sink included); after
        # trimming it matches our canonical minimal form exactly
        result = learn_with_membership_queries("(a + b)* . c")
        goal_minimal = minimize(regex_to_dfa("(a + b)* . c"))
        assert minimize(result.dfa).state_count() == goal_minimal.state_count()
        # and never more than minimal + 1 (the sink) before trimming
        assert result.dfa.state_count() <= goal_minimal.state_count() + 1

    def test_query_counters_reported(self):
        result = learn_with_membership_queries("(a + b)* . c")
        assert result.membership_queries > 0
        assert result.equivalence_queries >= 1
        assert result.rounds == result.equivalence_queries

    def test_alphabet_can_be_widened(self):
        # learning 'a' over alphabet {a, b}: the hypothesis must reject b-words
        result = lstar(ExactTeacher("a", alphabet=["a", "b"]))
        assert result.dfa.accepts(("a",))
        assert not result.dfa.accepts(("b",))

    def test_empty_alphabet_rejected(self):
        with pytest.raises(ValueError):
            lstar(ExactTeacher("eps", alphabet=[]))

    def test_learns_from_path_query_object(self):
        result = learn_with_membership_queries(PathQuery("bus . cinema"))
        assert result.query.same_language("bus . cinema")


class TestSampleTeacher:
    def test_bounded_teacher_accepts_close_enough_hypotheses(self):
        teacher = SampleTeacher("(a + b)* . c", max_length=3)
        result = lstar(teacher)
        # the learned language agrees with the goal on every word up to the bound
        goal = regex_to_dfa("(a + b)* . c")
        for word in goal.accepted_words(3):
            assert result.dfa.accepts(word)

    def test_more_patient_teacher_gives_better_hypotheses(self):
        lazy = lstar(SampleTeacher("(a . b)+", max_length=2))
        patient = lstar(SampleTeacher("(a . b)+", max_length=6))
        goal = regex_to_dfa("(a . b)+")
        lazy_errors = sum(
            1 for word in goal.accepted_words(6) if not lazy.dfa.accepts(word)
        )
        patient_errors = sum(
            1 for word in goal.accepted_words(6) if not patient.dfa.accepts(word)
        )
        assert patient_errors <= lazy_errors


_atoms = st.sampled_from(["a", "b", "c"])
_goal_expressions = st.recursive(
    _atoms,
    lambda children: st.one_of(
        st.tuples(children, children).map(lambda pair: f"({pair[0]} + {pair[1]})"),
        st.tuples(children, children).map(lambda pair: f"({pair[0]} . {pair[1]})"),
        children.map(lambda inner: f"({inner})*"),
    ),
    max_leaves=3,
)


class TestLStarProperties:
    @given(_goal_expressions)
    @settings(max_examples=40, deadline=None)
    def test_always_converges_to_goal_language(self, expression):
        result = learn_with_membership_queries(expression)
        assert equivalent(result.dfa, regex_to_dfa(expression))

    @given(_goal_expressions)
    @settings(max_examples=25, deadline=None)
    def test_query_count_polynomial_sanity(self, expression):
        """Membership queries stay far below brute-force enumeration."""
        result = learn_with_membership_queries(expression)
        states = max(result.dfa.state_count(), 1)
        alphabet = max(len(result.dfa.alphabet()), 1)
        # generous polynomial envelope (n^2 * |Σ| * counterexample length bound)
        assert result.membership_queries <= 200 * states * states * alphabet
