"""Unit tests for label propagation."""

from repro.learning.examples import ExampleSet
from repro.learning.propagation import propagate_labels, propagate_to_fixpoint


class TestPropagateLabels:
    def test_implied_negative_propagated(self, figure1_graph):
        examples = ExampleSet()
        examples.add_negative("N6")
        result = propagate_labels(figure1_graph, examples, max_length=2)
        # sinks (C1, C2, R1, R2) and N3 (all words covered by N6 at bound 2)
        assert "N3" in result.implied_negative
        assert "C1" in result.implied_negative
        assert examples.label_of("N3") is False

    def test_implied_positive_propagated(self, figure1_graph):
        examples = ExampleSet()
        examples.add_positive("N6", validated_word=("cinema",))
        result = propagate_labels(figure1_graph, examples, max_length=3)
        assert "N4" in result.implied_positive
        assert examples.label_of("N4") is True

    def test_propagated_labels_do_not_count_as_interactions(self, figure1_graph):
        examples = ExampleSet()
        examples.add_positive("N6", validated_word=("cinema",))
        propagate_labels(figure1_graph, examples, max_length=3)
        assert examples.interaction_count() == 1

    def test_idempotent(self, figure1_graph):
        examples = ExampleSet()
        examples.add_negative("N6")
        propagate_labels(figure1_graph, examples, max_length=2)
        second = propagate_labels(figure1_graph, examples, max_length=2)
        assert second.total == 0

    def test_no_examples_prunes_only_sinks(self, figure1_graph):
        examples = ExampleSet()
        result = propagate_labels(figure1_graph, examples, max_length=3)
        assert result.implied_positive == frozenset()
        assert result.implied_negative == {"C1", "C2", "R1", "R2"}

    def test_total_counts_both_signs(self, figure1_graph):
        examples = ExampleSet()
        examples.add_positive("N6", validated_word=("cinema",))
        examples.add_negative("N5")
        result = propagate_labels(figure1_graph, examples, max_length=3)
        assert result.total == len(result.implied_positive) + len(result.implied_negative)
        assert result.total > 0


class TestPropagateToFixpoint:
    def test_reaches_fixpoint(self, figure1_graph):
        examples = ExampleSet()
        examples.add_negative("N6")
        rounds = propagate_to_fixpoint(figure1_graph, examples, max_length=2)
        assert rounds[-1].total == 0
        # a second fixpoint run adds nothing
        more = propagate_to_fixpoint(figure1_graph, examples, max_length=2)
        assert all(round_.total == 0 for round_ in more)

    def test_cascading_negatives(self, small_transit_graph):
        # adding one negative may cover another node's whole language, which
        # in turn covers more; the fixpoint must be stable and consistent
        examples = ExampleSet()
        some_node = sorted(small_transit_graph.nodes(), key=str)[0]
        examples.add_negative(some_node)
        propagate_to_fixpoint(small_transit_graph, examples, max_length=2)
        # no node may be both positive and negative
        assert not (examples.positive_nodes & examples.negative_nodes)

    def test_max_rounds_respected(self, figure1_graph):
        examples = ExampleSet()
        examples.add_negative("N6")
        rounds = propagate_to_fixpoint(figure1_graph, examples, max_length=2, max_rounds=1)
        assert len(rounds) == 1
